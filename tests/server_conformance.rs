//! Service-level conformance suite (ISSUE 7, satellite): answers served
//! from the resident `kadabra-server` estimate cache must agree — within
//! the accuracies both sides report — with a from-scratch driver run and
//! with exact Brandes, and the whole service history must be
//! bit-reproducible from its seed under the determinism-matrix discipline
//! (same fixture seed ⇒ same frozen stages, same frontier, same rankings,
//! regardless of query traffic).

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::core::{kadabra_mpi_flat, KadabraConfig};
use kadabra_mpi::server::testkit::{boot, corpus_graph, TENANT};
use kadabra_mpi::server::{Client, QueryScratch, Server};

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Refines the fixture tenant through its full schedule and returns the
/// client plus a scratch for it.
fn refine_to_floor(server: &Server) -> (Client, QueryScratch) {
    let c = server.client();
    let sc = c.scratch(TENANT).expect("fixture tenant");
    let floor = server.tenant(TENANT).expect("fixture tenant").floor_eps();
    c.refine(TENANT, floor, 256).expect("floor is reachable");
    (c, sc)
}

/// Every frozen stage the service hands out must honor the accuracy it
/// reports against exact Brandes, and agree with a from-scratch driver run
/// of the same sampling algorithm within the *sum* of the two reported
/// accuracies (the triangle bound — the two runs draw different paths).
#[test]
fn cached_answers_match_a_from_scratch_driver_run_within_eps() {
    let seed = 11;
    let g = corpus_graph(seed);
    let exact = brandes(&g);

    let server = boot(seed);
    let (c, mut sc) = refine_to_floor(&server);
    let schedule = server.tenant(TENANT).expect("tenant").schedule();

    // The independent driver run: same graph, fresh sampling from scratch.
    let driver_eps = 0.08;
    let cfg = KadabraConfig {
        epsilon: driver_eps,
        delta: 0.1,
        seed: seed ^ 0x5eed,
        ..Default::default()
    };
    let driver = kadabra_mpi_flat(&g, &cfg, 3);
    assert!(max_abs_diff(&driver.scores, &exact) <= driver_eps, "driver run out of spec");

    let mut scores = Vec::new();
    for &eps in &schedule {
        let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage frozen");
        assert!(meta.eps <= eps, "stage froze above its target: {} > {eps}", meta.eps);
        let vs_exact = max_abs_diff(&scores, &exact);
        assert!(vs_exact <= meta.eps, "stage ε={eps}: err {vs_exact} > reported {}", meta.eps);
        let vs_driver = max_abs_diff(&scores, &driver.scores);
        assert!(
            vs_driver <= meta.eps + driver_eps,
            "stage ε={eps}: cache vs driver {vs_driver} > {} + {driver_eps}",
            meta.eps
        );
    }
}

/// Per-vertex reads: the point estimate must sit inside its own confidence
/// interval, the interval must bracket exact Brandes (the Bernstein bounds
/// are conservative, so this holds deterministically at the fixture seeds),
/// and its half-width is capped by the reported ε.
#[test]
fn vertex_confidence_intervals_bracket_the_exact_value() {
    for seed in [5u64, 11, 29] {
        let g = corpus_graph(seed);
        let exact = brandes(&g);
        let server = boot(seed);
        let (c, _) = refine_to_floor(&server);
        for (v, &b) in exact.iter().enumerate() {
            let est = c.vertex(TENANT, v as u32).expect("frontier published");
            assert!(est.lower <= est.estimate && est.estimate <= est.upper);
            assert!(
                est.lower <= b && b <= est.upper,
                "seed {seed} v{v}: CI [{}, {}] misses exact {b}",
                est.lower,
                est.upper
            );
            assert!((est.estimate - b).abs() <= est.eps);
        }
    }
}

/// The served top-k must agree with the oracle on what the heavy vertices
/// are: every served top-k estimate is within ε of its vertex's exact
/// score, and every vertex the oracle puts clearly above the served
/// cut (by > 2ε) is in the served set.
#[test]
fn topk_rankings_agree_with_the_oracle_up_to_eps() {
    let seed = 17;
    let g = corpus_graph(seed);
    let exact = brandes(&g);
    let server = boot(seed);
    let (c, mut sc) = refine_to_floor(&server);

    let k = 8;
    let mut top = Vec::new();
    let meta = c.topk_into(TENANT, k, &mut sc, &mut top).expect("frontier published");
    assert_eq!(top.len(), k);
    for &(v, score) in &top {
        assert!(
            (score - exact[v as usize]).abs() <= meta.eps,
            "top-k vertex {v}: served {score} vs exact {} > ε {}",
            exact[v as usize],
            meta.eps
        );
    }
    let served: Vec<u32> = top.iter().map(|&(v, _)| v).collect();
    let cut = top.last().expect("k > 0").1;
    for (v, &b) in exact.iter().enumerate() {
        if b > cut + 2.0 * meta.eps {
            assert!(
                served.contains(&(v as u32)),
                "oracle-heavy vertex {v} (exact {b}) missing from served top-{k} (cut {cut})"
            );
        }
    }
}

/// Determinism-matrix discipline for the service: two servers booted at the
/// same seed and refined through the schedule must expose bit-identical
/// frozen stages, an identical frontier `(counts, τ, round)`, identical
/// top-k rankings, and bit-identical per-vertex estimates. Run over a seed
/// matrix so a nondeterminism regression names the seed that broke.
#[test]
fn service_history_is_bit_reproducible_from_its_seed() {
    for seed in [3u64, 11, 23] {
        let a = boot(seed);
        let b = boot(seed);
        let (ca, mut sa) = refine_to_floor(&a);
        let (cb, mut sb) = refine_to_floor(&b);
        let schedule = a.tenant(TENANT).expect("tenant").schedule();

        let (mut va, mut vb) = (Vec::new(), Vec::new());
        for &eps in &schedule {
            let ma = ca.estimate_into(TENANT, eps, &mut sa, &mut va).expect("stage frozen");
            let mb = cb.estimate_into(TENANT, eps, &mut sb, &mut vb).expect("stage frozen");
            let bits_a: Vec<u64> = va.iter().map(|s| s.to_bits()).collect();
            let bits_b: Vec<u64> = vb.iter().map(|s| s.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "seed {seed} stage ε={eps}: frozen bits diverged");
            assert_eq!((ma.eps, ma.tau, ma.round), (mb.eps, mb.tau, mb.round));
        }

        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        let ma = ca.topk_into(TENANT, 10, &mut sa, &mut ta).expect("frontier");
        let mb = cb.topk_into(TENANT, 10, &mut sb, &mut tb).expect("frontier");
        assert_eq!(ta, tb, "seed {seed}: top-k diverged");
        assert_eq!((ma.tau, ma.round), (mb.tau, mb.round), "seed {seed}: frontier meta diverged");

        let n = a.tenant(TENANT).expect("tenant").num_vertices();
        for v in 0..n as u32 {
            let ea = ca.vertex(TENANT, v).expect("frontier");
            let eb = cb.vertex(TENANT, v).expect("frontier");
            assert_eq!(ea.estimate.to_bits(), eb.estimate.to_bits(), "seed {seed} v{v}");
            assert_eq!((ea.tau, ea.round), (eb.tau, eb.round));
        }
    }
}
