//! End-to-end pipeline tests: generator → IO round-trip → LCC extraction →
//! diameter → KADABRA → ranking, exercising the public facade crate the way
//! a downstream user would.

use kadabra_mpi::baselines::{brandes, rk_betweenness, RkConfig};
use kadabra_mpi::core::{kadabra_sequential, KadabraConfig};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::diameter::diameter;
use kadabra_mpi::graph::generators::{gnm, rmat, GnmConfig, RmatConfig};
use kadabra_mpi::graph::io::{read_binary, read_edge_list, write_binary, write_edge_list};

#[test]
fn full_pipeline_rmat() {
    // Generate.
    let g = rmat(RmatConfig::graph500(10, 6, 2024));
    // Serialize + reload through both formats.
    let mut text = Vec::new();
    write_edge_list(&g, &mut text).unwrap();
    let g2 = read_edge_list(&text[..]).unwrap();
    let mut bin = Vec::new();
    write_binary(&g2, &mut bin).unwrap();
    let g3 = read_binary(&bin[..]).unwrap();
    assert_eq!(g2, g3);

    // LCC, diameter, approximate betweenness.
    let (lcc, mapping) = largest_component(&g3);
    assert!(!mapping.is_empty());
    let d = diameter(&lcc, 0, 0);
    let cfg = KadabraConfig::new(0.03, 0.1);
    let r = kadabra_sequential(&lcc, &cfg);
    assert!(r.vertex_diameter >= d.exact());

    // Ranking sanity: top vertex should have above-average degree on a
    // power-law graph.
    let (top, score) = r.top_k(1)[0];
    assert!(score > 0.0);
    let avg_deg = 2.0 * lcc.num_edges() as f64 / lcc.num_nodes() as f64;
    assert!(
        lcc.degree(top) as f64 > avg_deg,
        "top betweenness vertex should be a hub: degree {} vs avg {avg_deg}",
        lcc.degree(top)
    );
}

#[test]
fn kadabra_beats_rk_sample_count_on_flat_graphs() {
    // Adaptivity pays when no single vertex dominates: with all betweenness
    // estimates small, the per-vertex deviation bounds shrink well before the
    // static VC-dimension cap, so KADABRA stops with strictly fewer samples
    // than the non-adaptive RK bound. (On hub-dominated graphs — e.g.
    // hyperbolic with a vertex of b̃ > 0.5 — the hub's Bernstein bound alone
    // needs τ ≈ ω, and ω exceeds RK's r by (c/ε²)·ln 2 by construction, so no
    // adaptive win is possible there; G(n, m) is the regime the claim is
    // about.)
    let g = gnm(GnmConfig { n: 3_000, m: 15_000, seed: 5 });
    let (lcc, _) = largest_component(&g);
    let cfg = KadabraConfig::new(0.02, 0.1);
    let kad = kadabra_sequential(&lcc, &cfg);
    let rk_cfg =
        RkConfig { epsilon: 0.02, delta: 0.1, vertex_diameter: kad.vertex_diameter, seed: 5 };
    let rk = rk_betweenness(&lcc, rk_cfg);
    assert!(
        kad.samples < rk.samples,
        "adaptive {} should beat fixed-size {}",
        kad.samples,
        rk.samples
    );
    // And both satisfy the guarantee.
    let exact = brandes(&lcc);
    for (scores, name) in [(&kad.scores, "kadabra"), (&rk.scores, "rk")] {
        let worst = scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= 0.02, "{name}: {worst}");
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes all six subsystems.
    let _ = kadabra_mpi::VERSION;
    let g = kadabra_mpi::graph::csr::graph_from_edges(3, &[(0, 1), (1, 2)]);
    assert_eq!(g.num_edges(), 2);
    let fw = kadabra_mpi::epoch::EpochFramework::new(4, 1);
    assert_eq!(fw.num_threads(), 1);
    let out = kadabra_mpi::mpisim::Universe::run(2, |c| c.rank());
    assert_eq!(out, vec![0, 1]);
    let spec = kadabra_mpi::cluster::ClusterSpec::default();
    assert_eq!(spec.cores_per_node(), 24);
}
