//! Integration tests for the extension features: directed/weighted KADABRA
//! (sequential and epoch-parallel), adaptive top-k, SumSweep, and the
//! Barabási–Albert generator — exercised through the public facade.

use kadabra_mpi::baselines::{brandes, brandes_directed, brandes_weighted};
use kadabra_mpi::core::{
    kadabra_directed, kadabra_sequential, kadabra_shared_directed, kadabra_shared_weighted,
    kadabra_topk, kadabra_weighted, KadabraConfig,
};
use kadabra_mpi::graph::digraph::DiGraph;
use kadabra_mpi::graph::generators::{barabasi_albert, BaConfig};
use kadabra_mpi::graph::sumsweep::sum_sweep;
use kadabra_mpi::graph::weighted::WeightedGraph;

fn max_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn directed_sequential_and_parallel_agree_with_exact() {
    // A directed "citation-style" graph: BA edges oriented old -> new plus
    // some back arcs.
    let base = barabasi_albert(BaConfig { n: 80, m: 2, seed: 3 });
    let mut arcs: Vec<(u32, u32)> = base.edges().map(|(u, v)| (v, u)).collect();
    arcs.extend(base.edges().filter(|&(u, v)| (u + v) % 3 == 0));
    let g = DiGraph::from_arcs(80, &arcs);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 11, ..Default::default() };
    let exact = brandes_directed(&g);
    let seq = kadabra_directed(&g, &cfg);
    let par = kadabra_shared_directed(&g, &cfg, 3);
    assert!(max_err(&seq.scores, &exact) <= cfg.epsilon);
    assert!(max_err(&par.scores, &exact) <= cfg.epsilon);
}

#[test]
fn weighted_sequential_and_parallel_agree_with_exact() {
    let base = barabasi_albert(BaConfig { n: 70, m: 2, seed: 4 });
    let edges: Vec<(u32, u32, u32)> =
        base.edges().map(|(u, v)| (u, v, 1 + (u + 2 * v) % 5)).collect();
    let g = WeightedGraph::from_edges(70, &edges);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 12, ..Default::default() };
    let exact = brandes_weighted(&g);
    let seq = kadabra_weighted(&g, &cfg);
    let par = kadabra_shared_weighted(&g, &cfg, 3);
    assert!(max_err(&seq.scores, &exact) <= cfg.epsilon);
    assert!(max_err(&par.scores, &exact) <= cfg.epsilon);
}

#[test]
fn topk_confirms_true_top_vertex_on_hub_graph() {
    let g = barabasi_albert(BaConfig { n: 250, m: 2, seed: 5 });
    let cfg = KadabraConfig { epsilon: 0.02, delta: 0.1, seed: 13, ..Default::default() };
    let exact = brandes(&g);
    let truth =
        exact.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0 as u32;
    let topk = kadabra_topk(&g, 1, &cfg);
    if topk.separated {
        assert_eq!(topk.confirmed[0].vertex, truth, "confirmed top-1 must be the true top-1");
        // Separation must not have cost more than the full run would.
        let full = kadabra_sequential(&g, &cfg);
        assert!(topk.result.samples <= full.samples);
    } else {
        // Statistically possible on a flat instance; the fallback still ran.
        assert!(topk.result.samples > 0);
    }
}

#[test]
fn sumsweep_brackets_ifub_on_ba_graphs() {
    for seed in 0..5 {
        let g = barabasi_albert(BaConfig { n: 150, m: 3, seed });
        let exact = kadabra_mpi::graph::diameter::diameter(&g, 0, 0).exact();
        let ss = sum_sweep(&g, 0, 6);
        assert!(ss.lower <= exact && exact <= ss.upper, "seed {seed}");
        assert_eq!(ss.lower, exact, "SumSweep lower bound is exact on BA (seed {seed})");
    }
}
