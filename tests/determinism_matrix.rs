//! Seed-matrix determinism regression: `kadabra_epoch_mpi` (Algorithm 2)
//! run through the observed driver must produce **bit-identical** scores
//! across repeated runs for every `(P, T, seed)` cell of a small grid.
//!
//! This is the regression fence for the logical-clock property the fault
//! layer introduces: under a plan, overlap sample counts are a pure
//! function of `(plan, seed)`, never of OS scheduling. If a future change
//! lets wall-clock time leak back into the sampling schedule, a cell here
//! diverges between its two runs and names the exact `(shape, seed)` that
//! broke.

use kadabra_mpi::core::{
    kadabra_epoch_mpi_observed, kadabra_mpi_flat_elastic, kadabra_mpi_flat_observed, ChaosOptions,
    ClusterShape, ElasticOptions, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};
use kadabra_mpi::mpisim::FaultPlan;

#[test]
fn epoch_mpi_is_bit_identical_across_runs_over_the_seed_matrix() {
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    let shapes = [
        ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 1 },
        ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
        ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 },
        ClusterShape { ranks: 3, ranks_per_node: 1, threads_per_rank: 2 },
    ];
    for shape in shapes {
        for seed in [1u64, 9, 42] {
            let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed, ..Default::default() };
            // The plan seed is deliberately tied to the sampling seed so the
            // matrix also varies the injected schedule, not just the RNG.
            let opts = ChaosOptions {
                plan: FaultPlan::from_seed(seed),
                probe: false,
                conservation: false,
                telemetry: false,
            };
            let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
            let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
            assert_eq!(
                a.result.scores, b.result.scores,
                "P={} T={} seed={seed}: scores diverged [{}]",
                shape.ranks, shape.threads_per_rank, a.plan_summary
            );
            assert_eq!(
                a.result.samples, b.result.samples,
                "P={} T={} seed={seed}: sample totals diverged [{}]",
                shape.ranks, shape.threads_per_rank, a.plan_summary
            );
        }
    }
}

#[test]
fn telemetry_tracing_does_not_perturb_chaos_runs() {
    // Recording a full event trace must be a pure observer: scores, sample
    // totals and epoch counts stay bit-identical to a trace-free run of the
    // same plan, for both MPI drivers.
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: 9, ..Default::default() };

    let off = ChaosOptions::all(FaultPlan::from_seed(9));
    let on = off.clone().with_telemetry();

    let a = kadabra_mpi_flat_observed(&g, &cfg, 3, &off);
    let b = kadabra_mpi_flat_observed(&g, &cfg, 3, &on);
    assert_eq!(a.result.scores, b.result.scores, "flat: telemetry perturbed scores");
    assert_eq!(a.result.samples, b.result.samples);
    assert_eq!(a.result.stats.epochs, b.result.stats.epochs);
    // The traced run's phase breakdown carries real content…
    assert!(b.phases.counter(kadabra_mpi::telemetry::CounterId::Samples) > 0);
    // …and is itself reproducible: same plan, same breakdown.
    let c = kadabra_mpi_flat_observed(&g, &cfg, 3, &on);
    assert_eq!(b.phases, c.phases, "traced phase breakdown diverged between reruns");

    let shape = ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 };
    let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &off);
    let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &on);
    assert_eq!(a.result.scores, b.result.scores, "epoch: telemetry perturbed scores");
    assert_eq!(a.result.samples, b.result.samples);
}

#[test]
fn crash_recovery_runs_are_bit_identical_with_telemetry_on_and_off() {
    // Shrink-and-continue recovery must be just as deterministic as a
    // healthy run: a plan that kills a rank mid-adaptive-phase produces
    // bit-identical scores whether or not a full event trace is recorded,
    // and the recovery path itself (ranks lost, shrink count) reproduces.
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: 9, ..Default::default() };

    // Flat driver: rank 1 dies instead of joining its round-0 reduction
    // (joins 0–1 are the setup broadcast and calibration all-reduce).
    let off = ChaosOptions::all(FaultPlan::ideal(21).with_crash_at_collective(1, 2));
    let on = off.clone().with_telemetry();
    let a = kadabra_mpi_flat_observed(&g, &cfg, 3, &off);
    let b = kadabra_mpi_flat_observed(&g, &cfg, 3, &on);
    assert!(a.recoveries >= 1, "crash never fired [{}]", a.plan_summary);
    assert_eq!(a.result.scores, b.result.scores, "flat: telemetry perturbed a crash run");
    assert_eq!(a.result.samples, b.result.samples);
    assert_eq!((a.ranks_lost, a.recoveries), (b.ranks_lost, b.recoveries));
    // The traced recovery is itself reproducible, phase breakdown included.
    let c = kadabra_mpi_flat_observed(&g, &cfg, 3, &on);
    assert_eq!(b.result.scores, c.result.scores);
    assert_eq!(b.phases, c.phases, "traced crash-run phase breakdown diverged");

    // Epoch driver: rank 3 dies instead of joining its first adaptive
    // collective (joins 0–3 are the two hierarchy splits, the diameter
    // broadcast, and the calibration all-reduce).
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    let off = ChaosOptions::all(FaultPlan::ideal(33).with_crash_at_collective(3, 4));
    let on = off.clone().with_telemetry();
    let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &off);
    let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &on);
    assert!(a.recoveries >= 1, "crash never fired [{}]", a.plan_summary);
    assert_eq!(a.result.scores, b.result.scores, "epoch: telemetry perturbed a crash run");
    assert_eq!(a.result.samples, b.result.samples);
    assert_eq!((a.ranks_lost, a.recoveries), (b.ranks_lost, b.recoveries));
}

#[test]
fn mid_run_join_is_bit_identical_with_telemetry_on_and_off() {
    // Elastic grows must be just as deterministic as crashes: a plan that
    // admits standby ranks mid-adaptive-phase produces bit-identical scores
    // whether or not a full event trace is recorded, the steal/rebalance
    // bookkeeping reproduces, and the traced run's phase breakdown is
    // itself stable across reruns.
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    // ε tight enough that the adaptive phase runs past the join round.
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 9, ..Default::default() };

    let off = ElasticOptions::all(FaultPlan::ideal(17).with_join(1, 2).with_straggler(1, 4));
    let on = off.clone().with_telemetry();
    let a = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &off);
    let b = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &on);
    assert_eq!(a.ranks_joined, 2, "join never fired [{}]", a.plan_summary);
    assert_eq!(a.result.scores, b.result.scores, "telemetry perturbed a grown run");
    assert_eq!(a.result.samples, b.result.samples);
    assert_eq!((a.ranks_joined, a.samples_stolen), (b.ranks_joined, b.samples_stolen));
    // The traced grow carries real content and reproduces exactly.
    assert!(b.phases.counter(kadabra_mpi::telemetry::CounterId::RanksJoined) > 0);
    let c = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &on);
    assert_eq!(b.result.scores, c.result.scores);
    assert_eq!(b.phases, c.phases, "traced grow phase breakdown diverged between reruns");
}

#[test]
fn flat_mpi_is_bit_identical_across_runs_over_the_seed_matrix() {
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    for ranks in [1usize, 2, 4] {
        for seed in [5u64, 23] {
            let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed, ..Default::default() };
            let opts = ChaosOptions {
                plan: FaultPlan::from_seed(seed),
                probe: false,
                conservation: false,
                telemetry: false,
            };
            let a = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
            let b = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
            assert_eq!(
                a.result.scores, b.result.scores,
                "P={ranks} seed={seed}: scores diverged [{}]",
                a.plan_summary
            );
        }
    }
}
