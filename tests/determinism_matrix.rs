//! Seed-matrix determinism regression: `kadabra_epoch_mpi` (Algorithm 2)
//! run through the observed driver must produce **bit-identical** scores
//! across repeated runs for every `(P, T, seed)` cell of a small grid.
//!
//! This is the regression fence for the logical-clock property the fault
//! layer introduces: under a plan, overlap sample counts are a pure
//! function of `(plan, seed)`, never of OS scheduling. If a future change
//! lets wall-clock time leak back into the sampling schedule, a cell here
//! diverges between its two runs and names the exact `(shape, seed)` that
//! broke.

use kadabra_mpi::core::{
    kadabra_epoch_mpi_observed, kadabra_mpi_flat_observed, ChaosOptions, ClusterShape,
    KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};
use kadabra_mpi::mpisim::FaultPlan;

#[test]
fn epoch_mpi_is_bit_identical_across_runs_over_the_seed_matrix() {
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    let shapes = [
        ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 1 },
        ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
        ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 },
        ClusterShape { ranks: 3, ranks_per_node: 1, threads_per_rank: 2 },
    ];
    for shape in shapes {
        for seed in [1u64, 9, 42] {
            let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed, ..Default::default() };
            // The plan seed is deliberately tied to the sampling seed so the
            // matrix also varies the injected schedule, not just the RNG.
            let opts = ChaosOptions {
                plan: FaultPlan::from_seed(seed),
                probe: false,
                conservation: false,
            };
            let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
            let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
            assert_eq!(
                a.result.scores, b.result.scores,
                "P={} T={} seed={seed}: scores diverged [{}]",
                shape.ranks, shape.threads_per_rank, a.plan_summary
            );
            assert_eq!(
                a.result.samples, b.result.samples,
                "P={} T={} seed={seed}: sample totals diverged [{}]",
                shape.ranks, shape.threads_per_rank, a.plan_summary
            );
        }
    }
}

#[test]
fn flat_mpi_is_bit_identical_across_runs_over_the_seed_matrix() {
    let (g, _) = largest_component(&gnm(GnmConfig { n: 50, m: 130, seed: 3 }));
    for ranks in [1usize, 2, 4] {
        for seed in [5u64, 23] {
            let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed, ..Default::default() };
            let opts = ChaosOptions {
                plan: FaultPlan::from_seed(seed),
                probe: false,
                conservation: false,
            };
            let a = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
            let b = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
            assert_eq!(
                a.result.scores, b.result.scores,
                "P={ranks} seed={seed}: scores diverged [{}]",
                a.plan_summary
            );
        }
    }
}
