//! Streaming-update conformance (DESIGN.md §14): drive a [`DynamicEngine`]
//! through a sequence of random insert/delete batches and, after every
//! batch, hold the maintained estimate to the acceptance bar —
//!
//! * within ε of the exact Brandes oracle on the mutated graph,
//! * within ε of a from-scratch adaptive run over the same mutated graph
//!   (the pipeline an update would otherwise re-execute), and
//! * a pure function of `(graph, updates, config, seed)`: every cell of a
//!   small `(P, T, seed)` matrix replays bit-identically, frame for frame,
//!   including the classification tallies and the deterministic work
//!   counter.
//!
//! The companion `tests/dynamic_chaos.rs` covers the same trajectory under
//! injected rank crashes; `bench_dynamic` gates the work ratio.

use std::collections::BTreeSet;

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::core::phases::{
    calibration_samples_for_thread, diameter_phase, scores_from_counts,
};
use kadabra_mpi::core::sampler::ThreadSampler;
use kadabra_mpi::core::{bounds, Calibration, KadabraConfig};
use kadabra_mpi::dynamic::{DynamicEngine, UpdateBatch};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::csr::graph_from_edges;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};
use kadabra_mpi::graph::{Graph, GraphView, NodeId};
use kadabra_mpi::mpisim::FaultPlan;
use kadabra_mpi::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Accuracy both runs converge to and the oracle bar they are held to.
const EPS: f64 = 0.1;

/// Length of the random update sequence in the tracking test.
const BATCHES: u64 = 3;

fn corpus(seed: u64) -> Graph {
    let (g, _) = largest_component(&gnm(GnmConfig { n: 90, m: 240, seed: 3 ^ seed }));
    g
}

/// Replays the diameter + calibration phases at a `ranks × threads` pool's
/// streams, exactly as the resident service provisions an engine.
fn setup(
    g: &Graph,
    seed: u64,
    ranks: usize,
    threads: usize,
) -> (KadabraConfig, u64, u32, Calibration) {
    let kcfg = KadabraConfig { epsilon: EPS, delta: 0.1, seed, ..Default::default() };
    let (vd, _) = diameter_phase(g, &kcfg);
    let omega = bounds::omega(kcfg.c, kcfg.epsilon, kcfg.delta, vd);
    let n = g.num_nodes();
    let total_threads = ranks * threads;
    let mut total = vec![0u64; n + 1];
    for r in 0..ranks {
        for t in 0..threads {
            let mut sampler = ThreadSampler::new(n, seed, r, t);
            let mut counts = vec![0u64; n + 1];
            let taken = calibration_samples_for_thread(
                g,
                &mut sampler,
                &mut counts[..n],
                &kcfg,
                omega,
                total_threads,
            );
            counts[n] = taken;
            for (a, &x) in total.iter_mut().zip(&counts) {
                *a += x;
            }
        }
    }
    let calibration = Calibration::from_counts(&total[..n], total[n], &kcfg);
    (kcfg, omega, vd, calibration)
}

fn engine_for(g: &Graph, seed: u64, ranks: usize, threads: usize) -> (DynamicEngine, Calibration) {
    let (kcfg, omega, vd, calibration) = setup(g, seed, ranks, threads);
    let eng =
        DynamicEngine::new(g.clone(), kcfg, omega, vd, ranks, threads, 4, FaultPlan::ideal(seed));
    (eng, calibration)
}

/// Draws a small random batch against the engine's **current** view: two
/// deletions of live edges plus two insertions of fresh non-edges, all from
/// a per-`(seed, step)` stream so the sequence is deterministic.
fn random_batch(eng: &DynamicEngine, seed: u64, step: u64) -> UpdateBatch {
    let view = eng.view();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    view.for_each_edge(|u, v| edges.push((u, v)));
    let n = view.base().num_nodes() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut picked = BTreeSet::new();
    let mut deletes = Vec::new();
    while deletes.len() < 2 {
        let e = edges[rng.gen_range(0..edges.len())];
        if picked.insert(e) {
            deletes.push(e);
        }
    }
    let mut inserts = Vec::new();
    while inserts.len() < 2 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if !view.has_edge(e.0, e.1) && picked.insert(e) {
            inserts.push(e);
        }
    }
    UpdateBatch::new(inserts, deletes).expect("batch drawn against the live view")
}

/// Rebuilds the engine's current view as a plain CSR (for the oracle and
/// the from-scratch run).
fn materialize(eng: &DynamicEngine) -> Graph {
    let mut edges = Vec::new();
    eng.view().for_each_edge(|u, v| edges.push((u, v)));
    graph_from_edges(eng.view().base().num_nodes(), &edges)
}

fn max_gap(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn maintained_estimate_tracks_a_from_scratch_run_across_random_batches() {
    let seed = 7u64;
    let g = corpus(seed);
    let tel = Telemetry::stats_only();
    let (mut eng, calibration) = engine_for(&g, seed, 2, 2);
    eng.refine_until(EPS, 256, &calibration, &tel);

    for step in 1..=BATCHES {
        let batch = random_batch(&eng, seed, step);
        let tau_before = eng.last_tau();
        let up = eng.apply_update(&batch, &calibration, &tel).expect("batch applies");
        assert_eq!(up.seq, step, "batch sequencing drifted");
        assert_eq!(
            up.invalidated + up.retained,
            tau_before,
            "step {step}: classification lost samples"
        );
        let rep = eng.refine_until(EPS, 256, &calibration, &tel);
        assert!(
            rep.achieved <= EPS || rep.tau >= eng.omega(),
            "step {step}: re-convergence stalled at ε = {:.4}",
            rep.achieved
        );

        // Oracle bar: the maintained estimate vs exact Brandes on the
        // mutated graph.
        let mutated = materialize(&eng);
        let maintained = scores_from_counts(&rep.global[..mutated.num_nodes()], rep.tau);
        let exact = brandes(&mutated);
        let gap = max_gap(&maintained, &exact);
        assert!(gap <= EPS, "step {step}: maintained estimate {gap:.4} from the oracle (ε {EPS})");

        // From-scratch bar: a fresh pipeline over the mutated graph
        // (diameter, calibration, adaptive run) lands within ε too, and the
        // two estimates agree to within ε of each other.
        let (mut scratch, scratch_cal) = engine_for(&mutated, seed, 2, 2);
        let srep = scratch.refine_until(EPS, 256, &scratch_cal, &tel);
        let scratch_scores = scores_from_counts(&srep.global[..mutated.num_nodes()], srep.tau);
        let sgap = max_gap(&scratch_scores, &exact);
        assert!(sgap <= EPS, "step {step}: from-scratch run {sgap:.4} from the oracle");
        let agree = max_gap(&maintained, &scratch_scores);
        assert!(
            agree <= EPS,
            "step {step}: maintained and from-scratch estimates disagree by {agree:.4}"
        );
    }
}

#[test]
fn the_update_trajectory_is_bit_identical_over_the_determinism_matrix() {
    // The maintained estimate is a pure function of
    // (graph, updates, config, seed) for a fixed pool shape: every cell of
    // the (P, T, seed) grid replays its full trajectory bit-identically —
    // converge, two update batches, re-converge — down to the
    // classification tallies and the deterministic work counter.
    for (ranks, threads) in [(1usize, 1usize), (2, 2), (3, 2)] {
        for seed in [1u64, 9] {
            let g = corpus(seed);
            let tel = Telemetry::stats_only();
            let run = || {
                let (mut eng, calibration) = engine_for(&g, seed, ranks, threads);
                let r0 = eng.refine_until(EPS, 256, &calibration, &tel);
                let mut trace = vec![(r0.global.clone(), r0.tau, 0u64, 0u64)];
                for step in 1..=2u64 {
                    let batch = random_batch(&eng, seed, step);
                    let up = eng.apply_update(&batch, &calibration, &tel).expect("applies");
                    let rep = eng.refine_until(EPS, 256, &calibration, &tel);
                    trace.push((rep.global.clone(), rep.tau, up.invalidated, up.retained));
                }
                (trace, eng.work_edges(), eng.omega())
            };
            let a = run();
            let b = run();
            assert_eq!(
                a, b,
                "P={ranks} T={threads} seed={seed}: update trajectory diverged between reruns"
            );
        }
    }
}
