//! Chaos conformance suite: Algorithms 1 and 2 executed under deterministic
//! fault plans must still honor the paper's (ε, δ) guarantee against exact
//! Brandes, conserve every aggregated sample through the reduction chain,
//! and keep the cross-process epoch gap ≤ 1 past every completed reduction.
//!
//! Every test here prints-by-panic a plan summary on failure; feeding the
//! same `(plan, seed)` back into the observed driver replays the run
//! bit-for-bit (see `DESIGN.md`, §8).

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::core::{
    kadabra_epoch_mpi_observed, kadabra_mpi_flat_elastic, kadabra_mpi_flat_observed, ChaosOptions,
    ClusterShape, ElasticOptions, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};
use kadabra_mpi::graph::Graph;
use kadabra_mpi::mpisim::FaultPlan;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

fn test_graph() -> Graph {
    let (lcc, _) = largest_component(&gnm(GnmConfig { n: 60, m: 160, seed: 14 }));
    lcc
}

/// How many corpus plans the differential sweeps cover. The CI chaos job
/// raises this via `KADABRA_CHAOS_PLANS`; the default keeps `cargo test`
/// fast.
fn corpus_size() -> u64 {
    std::env::var("KADABRA_CHAOS_PLANS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// How many crash-corpus plans the rank-failure sweeps cover. The CI chaos
/// job raises this via `KADABRA_CHAOS_CRASHES` (`cargo xtask chaos
/// --crashes N`).
fn crash_corpus_size() -> u64 {
    std::env::var("KADABRA_CHAOS_CRASHES").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// How many grow-corpus plans the elastic sweeps cover. The CI
/// chaos-elastic job raises this via `KADABRA_CHAOS_GROWS` (`cargo xtask
/// chaos --grows N`).
fn grow_corpus_size() -> u64 {
    std::env::var("KADABRA_CHAOS_GROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// The acceptance scenario from the issue, verbatim: one straggler rank plus
/// reordered p2p delivery, Algorithm 2 on P=4 ranks × T=2 threads. Scores
/// must land within ε of Brandes, the epoch-gap probe must never see a
/// cross-process gap > 1 after the first completed reduction, and the same
/// `(plan, seed)` must reproduce identical scores on a second run.
#[test]
fn straggler_and_reordered_p2p_meet_guarantee_and_reproduce() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 2020, ..Default::default() };
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    let plan =
        FaultPlan::ideal(77).with_straggler(2, 8).with_p2p_jitter(3).with_collective_delay(1, 25);
    let opts = ChaosOptions::all(plan);

    let first = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
    first.assert_invariants();
    assert!(first.probe_observations > 0, "probe saw no completed reductions");
    assert!(first.conservation_rounds > 0, "conservation check never ran");
    let err = max_abs_diff(&first.result.scores, &exact);
    assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", first.plan_summary);

    let second = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
    assert_eq!(
        first.result.scores, second.result.scores,
        "same (plan, seed) must reproduce bit-identical scores [{}]",
        first.plan_summary
    );
    assert_eq!(first.result.samples, second.result.samples);
}

/// Differential corpus sweep over Algorithm 1: every generated plan must
/// leave the ε guarantee intact and keep the conservation ledger balanced.
#[test]
fn flat_corpus_respects_epsilon_and_conserves_samples() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 501, ..Default::default() };
    for seed in 0..corpus_size() {
        let opts = ChaosOptions::all(FaultPlan::from_seed(seed));
        let report = kadabra_mpi_flat_observed(&g, &cfg, 3, &opts);
        report.assert_invariants();
        assert!(report.conservation_rounds > 0, "[{}]", report.plan_summary);
        let err = max_abs_diff(&report.result.scores, &exact);
        assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", report.plan_summary);
    }
}

/// Differential corpus sweep over Algorithm 2 on a hierarchical shape.
#[test]
fn epoch_corpus_respects_epsilon_and_gap_invariant() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 502, ..Default::default() };
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    for seed in 0..corpus_size() {
        let opts = ChaosOptions::all(FaultPlan::from_seed(seed));
        let report = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        report.assert_invariants();
        assert!(report.probe_observations > 0, "[{}]", report.plan_summary);
        let err = max_abs_diff(&report.result.scores, &exact);
        assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", report.plan_summary);
    }
}

/// The rank-crash acceptance scenario from the issue: Algorithm 2 on P=4
/// ranks × T=2 threads with one rank killed mid-adaptive-phase. The
/// survivors must shrink the communicator, resume from the checkpointed
/// sample ledger, terminate, and still land within ε of Brandes — and the
/// whole recovery must replay bit-for-bit from the same `(plan, seed)`.
#[test]
fn crash_mid_adaptive_shrinks_resumes_and_meets_guarantee() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 2021, ..Default::default() };
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    // Join 4 is rank 3's first adaptive-phase collective (after the two
    // hierarchy splits, the diameter broadcast, and the calibration
    // all-reduce), so the crash lands squarely in the sampling loop.
    let plan = FaultPlan::ideal(41).with_crash_at_collective(3, 4);
    let opts = ChaosOptions::all(plan);

    let first = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
    first.assert_invariants();
    assert!(first.recoveries >= 1, "crash never triggered recovery [{}]", first.plan_summary);
    assert_eq!(first.ranks_lost, 1, "[{}]", first.plan_summary);
    assert!(first.conservation_rounds > 0, "[{}]", first.plan_summary);
    let err = max_abs_diff(&first.result.scores, &exact);
    assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", first.plan_summary);

    let second = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
    assert_eq!(
        first.result.scores, second.result.scores,
        "same (plan, seed) must reproduce the recovery bit-for-bit [{}]",
        first.plan_summary
    );
    assert_eq!(first.result.samples, second.result.samples);
    assert_eq!(first.ranks_lost, second.ranks_lost);
}

/// The crash-during-reduction case: injected completion delays make the
/// victim poll its in-flight `Ireduce` request, and the plan kills it on a
/// cumulative poll count — so it dies with a reduction half-joined. The
/// survivors' ledger-based recovery must discard the torn round everywhere
/// and still meet the guarantee, reproducibly.
#[test]
fn crash_during_reduction_recovers_and_meets_guarantee() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 2022, ..Default::default() };
    // Delay ≥ 2 guarantees the victim polls its round-0 `Ireduce` at least
    // twice, so the poll-2 fuse provably fires with that reduction in
    // flight (blocking setup collectives never tick the fuse).
    let plan = FaultPlan::ideal(53).with_collective_delay(2, 8).with_crash_after_polls(2, 2);
    let opts = ChaosOptions::all(plan);

    let first = kadabra_mpi_flat_observed(&g, &cfg, 4, &opts);
    first.assert_invariants();
    assert!(first.recoveries >= 1, "crash never triggered recovery [{}]", first.plan_summary);
    assert_eq!(first.ranks_lost, 1, "[{}]", first.plan_summary);
    let err = max_abs_diff(&first.result.scores, &exact);
    assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", first.plan_summary);

    let second = kadabra_mpi_flat_observed(&g, &cfg, 4, &opts);
    assert_eq!(
        first.result.scores, second.result.scores,
        "same (plan, seed) must reproduce the recovery bit-for-bit [{}]",
        first.plan_summary
    );
    assert_eq!(first.recoveries, second.recoveries);
}

/// Crash-corpus sweep over Algorithm 1: every generated plan schedules one
/// rank crash on top of randomized delays. Whether or not the crash fires
/// before termination, the ε guarantee and both conservation invariants
/// must hold.
#[test]
fn flat_crash_corpus_respects_epsilon_and_conserves_samples() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 601, ..Default::default() };
    for seed in 0..crash_corpus_size() {
        let opts = ChaosOptions::all(FaultPlan::from_seed_with_crashes(seed, 4));
        let report = kadabra_mpi_flat_observed(&g, &cfg, 4, &opts);
        report.assert_invariants();
        assert!(report.conservation_rounds > 0, "[{}]", report.plan_summary);
        let err = max_abs_diff(&report.result.scores, &exact);
        assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", report.plan_summary);
    }
}

/// Crash-corpus sweep over Algorithm 2 on the hierarchical shape.
#[test]
fn epoch_crash_corpus_respects_epsilon_and_gap_invariant() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 602, ..Default::default() };
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    for seed in 0..crash_corpus_size() {
        let opts = ChaosOptions::all(FaultPlan::from_seed_with_crashes(seed, 4));
        let report = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        report.assert_invariants();
        assert!(report.probe_observations > 0, "[{}]", report.plan_summary);
        let err = max_abs_diff(&report.result.scores, &exact);
        assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", report.plan_summary);
    }
}

/// The elastic acceptance scenario from the issue: adding 2 standby ranks
/// mid-adaptive-phase to a P=4 world. The grown run must finish, land
/// within ε of Brandes, conserve `[Σc̃, τ]` across the membership change
/// (asserted inside the driver's grow block), and replay bit-for-bit from
/// the same `(plan, seed)`.
#[test]
fn grow_mid_adaptive_meets_guarantee_and_reproduces() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 2023, ..Default::default() };
    let plan = FaultPlan::ideal(85).with_join(1, 2);
    let opts = ElasticOptions::all(plan);

    let first = kadabra_mpi_flat_elastic(&g, &cfg, 4, 2, &opts);
    first.assert_invariants();
    assert_eq!(first.ranks_joined, 2, "join never admitted [{}]", first.plan_summary);
    assert!(first.conservation_rounds > 0, "[{}]", first.plan_summary);
    let err = max_abs_diff(&first.result.scores, &exact);
    assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", first.plan_summary);

    let second = kadabra_mpi_flat_elastic(&g, &cfg, 4, 2, &opts);
    assert_eq!(
        first.result.scores, second.result.scores,
        "same (plan, seed) must reproduce the grown run bit-for-bit [{}]",
        first.plan_summary
    );
    assert_eq!(first.result.samples, second.result.samples);
    assert_eq!(first.ranks_joined, second.ranks_joined);
}

/// Grow-corpus sweep: every generated plan schedules one mid-phase join on
/// top of randomized delays. Whether or not the run survives long enough
/// for the join to fire, the ε guarantee and the conservation invariants
/// must hold, and admission is all-or-nothing per plan.
#[test]
fn grow_corpus_respects_epsilon_and_conserves_samples() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 701, ..Default::default() };
    for seed in 0..grow_corpus_size() {
        let plan = FaultPlan::from_seed_with_grows(seed, 2);
        let expected = plan.total_joiners() as u64;
        let opts = ElasticOptions::all(plan);
        let report = kadabra_mpi_flat_elastic(&g, &cfg, 3, 2, &opts);
        report.assert_invariants();
        assert!(report.conservation_rounds > 0, "[{}]", report.plan_summary);
        assert!(
            report.ranks_joined == 0 || report.ranks_joined == expected,
            "partial admission: {} of {} [{}]",
            report.ranks_joined,
            expected,
            report.plan_summary
        );
        let err = max_abs_diff(&report.result.scores, &exact);
        assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", report.plan_summary);
    }
}

/// The straggler-steal scenario: a plan-marked straggler sheds most of its
/// round quota to the fast ranks. The redistribution must preserve the ε
/// guarantee and per-round conservation, move a deterministic number of
/// samples, and replay bit-for-bit.
#[test]
fn straggler_steal_redistributes_and_meets_guarantee() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 2024, ..Default::default() };
    let plan = FaultPlan::ideal(91).with_straggler(1, 8);
    let opts = ElasticOptions::all(plan);

    let first = kadabra_mpi_flat_elastic(&g, &cfg, 4, 0, &opts);
    first.assert_invariants();
    assert!(first.samples_stolen > 0, "steal never fired [{}]", first.plan_summary);
    assert!(first.conservation_rounds > 0, "[{}]", first.plan_summary);
    let err = max_abs_diff(&first.result.scores, &exact);
    assert!(err <= cfg.epsilon, "max error {err} > eps [{}]", first.plan_summary);

    let second = kadabra_mpi_flat_elastic(&g, &cfg, 4, 0, &opts);
    assert_eq!(first.result.scores, second.result.scores, "[{}]", first.plan_summary);
    assert_eq!(first.samples_stolen, second.samples_stolen);
}

/// An unperturbed (ideal) plan is itself part of the corpus: the observed
/// driver with everything-zero injection must satisfy the same invariants,
/// proving the probes do not rely on faults to stay quiet.
#[test]
fn ideal_plan_is_a_clean_baseline() {
    let g = test_graph();
    let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: 77, ..Default::default() };
    let report = kadabra_mpi_flat_observed(&g, &cfg, 2, &ChaosOptions::all(FaultPlan::ideal(0)));
    report.assert_invariants();
    assert!(report.probe_observations > 0);
}
