//! Cross-crate integration: every execution mode (sequential, naive
//! parallel, epoch shared-memory, Algorithm 1, Algorithm 2, DES) must honor
//! the same ε guarantee against exact Brandes on the same inputs, and all
//! modes must agree with one another within 2ε.

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::cluster::{simulate, ClusterSpec, CostModel, ReduceStrategy, SimConfig};
use kadabra_mpi::core::{
    kadabra_epoch_mpi, kadabra_mpi_flat, kadabra_naive_parallel, kadabra_sequential,
    kadabra_shared, prepare, ClusterShape, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, grid, GnmConfig, GridConfig};
use kadabra_mpi::graph::Graph;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

fn test_graph() -> Graph {
    let (lcc, _) = largest_component(&gnm(GnmConfig { n: 120, m: 420, seed: 9 }));
    lcc
}

#[test]
fn all_modes_within_epsilon_of_exact() {
    let g = test_graph();
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 4242, ..Default::default() };

    let runs: Vec<(&str, Vec<f64>)> = vec![
        ("sequential", kadabra_sequential(&g, &cfg).scores),
        ("naive-T3", kadabra_naive_parallel(&g, &cfg, 3).scores),
        ("shared-T3", kadabra_shared(&g, &cfg, 3).scores),
        ("mpi-flat-P3", kadabra_mpi_flat(&g, &cfg, 3).scores),
        (
            "epoch-mpi-P4T2",
            kadabra_epoch_mpi(
                &g,
                &cfg,
                ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 },
            )
            .scores,
        ),
    ];
    for (name, scores) in &runs {
        let err = max_abs_diff(scores, &exact);
        assert!(err <= cfg.epsilon, "{name}: max error {err} > eps");
    }
    // Pairwise agreement within 2*eps.
    for i in 0..runs.len() {
        for j in (i + 1)..runs.len() {
            let d = max_abs_diff(&runs[i].1, &runs[j].1);
            assert!(d <= 2.0 * cfg.epsilon, "{} vs {}: disagreement {d}", runs[i].0, runs[j].0);
        }
    }
}

#[test]
fn des_matches_guarantee_on_road_like_graph() {
    let g = grid(GridConfig { rows: 10, cols: 10, diagonal_prob: 0.0, seed: 0 });
    let exact = brandes(&g);
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 7, ..Default::default() };
    let prepared = prepare(&g, &cfg);
    let cost = CostModel::synthetic(50_000);
    for strategy in [
        ReduceStrategy::IbarrierThenBlockingReduce,
        ReduceStrategy::Ireduce,
        ReduceStrategy::FullyBlocking,
    ] {
        let sim = SimConfig {
            shape: ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 3 },
            strategy,
            numa_penalty: false,
            steal: false,
        };
        let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        let err = max_abs_diff(&r.scores, &exact);
        assert!(err <= cfg.epsilon, "{strategy:?}: max error {err}");
    }
}

#[test]
fn determinism_across_repeated_runs_per_mode() {
    let g = test_graph();
    let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: 99, ..Default::default() };
    let a = kadabra_sequential(&g, &cfg);
    let b = kadabra_sequential(&g, &cfg);
    assert_eq!(a.scores, b.scores);
    assert_eq!(a.samples, b.samples);

    let na = kadabra_naive_parallel(&g, &cfg, 2);
    let nb = kadabra_naive_parallel(&g, &cfg, 2);
    assert_eq!(na.scores, nb.scores);

    // The DES is deterministic even for "parallel" runs.
    let prepared = prepare(&g, &cfg);
    let cost = CostModel::synthetic(10_000);
    let sim = SimConfig {
        shape: ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: false,
        steal: false,
    };
    let da = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
    let db = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
    assert_eq!(da.scores, db.scores);
    assert_eq!(da.ads_ns, db.ads_ns);
}

#[test]
fn omega_cap_is_respected_by_every_mode() {
    // On a star graph the hub's estimate is ~1, so the Bernstein bounds
    // cannot reach a tight epsilon before the cap: the run must stop at ω
    // (plus at most one epoch of overshoot). A loose epsilon on the same
    // graph stops far earlier — the adaptive advantage.
    let edges: Vec<(u32, u32)> = (1..60).map(|v| (0, v)).collect();
    let g = kadabra_mpi::graph::csr::graph_from_edges(60, &edges);
    let tight = KadabraConfig {
        epsilon: 0.01,
        delta: 0.1,
        seed: 5,
        calibration_samples: Some(200),
        ..Default::default()
    };
    let r = kadabra_sequential(&g, &tight);
    assert!(r.samples >= r.omega, "must run to the cap for tight eps");
    assert!(r.samples <= r.omega + tight.n0(1), "overshoot bounded by one epoch");

    // On a graph whose betweenness mass is spread out, a moderate epsilon
    // stops adaptively, well before the cap (the star hub above cannot:
    // its estimate ~1 keeps the Bernstein bounds wide all the way to ω).
    let spread = test_graph();
    let loose = KadabraConfig { epsilon: 0.02, ..tight };
    let r2 = kadabra_sequential(&spread, &loose);
    assert!(
        r2.samples < r2.omega,
        "moderate eps must stop adaptively: {} vs {}",
        r2.samples,
        r2.omega
    );
}
