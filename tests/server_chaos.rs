//! Chaos acceptance for the resident service (ISSUE 7): crash a sampler
//! rank mid-refine via a `FaultPlan` and the service must keep answering
//! queries within the last checkpointed accuracy, keep refining on the
//! shrunken pool all the way to the floor, and replay the entire recovery
//! bit-for-bit from the same `(plan, seed)`.

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::mpisim::FaultPlan;
use kadabra_mpi::server::testkit::{boot_with_plan, corpus_graph, tenant_config, TENANT};
use kadabra_mpi::server::{QueryError, Server};

const SEED: u64 = 19;

/// Rank 2 of the 3-rank sampler pool dies at its second collective join —
/// inside the warmup round's sampling loop, with a reduction in flight.
fn crash_plan() -> FaultPlan {
    FaultPlan::ideal(SEED).with_crash_at_collective(2, 2)
}

fn boot_chaos() -> Server {
    boot_with_plan(SEED, crash_plan())
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// The crash fires mid-refine, the pool shrinks, and every query the
/// service answers afterwards — vertex, estimate, top-k — is still within
/// the accuracy it reports, measured against exact Brandes.
#[test]
fn crash_mid_refine_keeps_answers_within_checkpointed_eps() {
    let exact = brandes(&corpus_graph(SEED));
    let server = boot_chaos();
    let c = server.client();
    let t = server.tenant(TENANT).expect("fixture tenant");
    let mut sc = c.scratch(TENANT).expect("fixture tenant");

    // The crash fires during the warmup refine (round 0); the first
    // refinement request afterwards runs on the survivors and publishes the
    // frontier the service checkpoints from.
    let out = c.refine(TENANT, 0.5, 256).expect("first stage reachable on the shrunken pool");
    assert_eq!(out.live, 2, "exactly one sampler rank must have died");
    let checkpointed = t.achieved_eps();
    assert!(checkpointed <= 0.5, "no usable frontier after the crash: ε = {checkpointed}");

    let mut scores = Vec::new();
    for v in 0..t.num_vertices() as u32 {
        let est = c.vertex(TENANT, v).expect("frontier published");
        assert!(
            (est.estimate - exact[v as usize]).abs() <= est.eps,
            "v{v}: err beyond the checkpointed ε {}",
            est.eps
        );
        assert!(est.eps <= checkpointed + f64::EPSILON);
    }

    // Refinement continues on the survivors down to the floor.
    let floor = t.floor_eps();
    let out = c.refine(TENANT, floor, 256).expect("floor reachable on the shrunken pool");
    assert_eq!(out.live, 2, "the pool must not shrink further");
    assert!(out.achieved <= floor, "survivors stalled at ε = {}", out.achieved);

    for &eps in &t.schedule() {
        let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage frozen");
        let err = max_abs_diff(&scores, &exact);
        assert!(err <= meta.eps, "stage ε={eps}: err {err} > reported {}", meta.eps);
    }
    let mut top = Vec::new();
    let meta = c.topk_into(TENANT, 5, &mut sc, &mut top).expect("frontier");
    for &(v, score) in &top {
        assert!((score - exact[v as usize]).abs() <= meta.eps);
    }
}

/// Queries issued from other threads *while* the crash-and-recover refine
/// is running must always see a coherent snapshot: monotone rounds, CI
/// containing the estimate, error within the reported ε of the oracle.
#[test]
// The collect is load-bearing: all readers must be running before the
// refine starts; joining lazily would serialize them after it.
#[allow(clippy::needless_collect)]
fn concurrent_queries_stay_coherent_through_the_crash() {
    let exact = std::sync::Arc::new(brandes(&corpus_graph(SEED)));
    let server = boot_chaos();
    let floor = server.tenant(TENANT).expect("tenant").floor_eps();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|r| {
            let c = server.client();
            let exact = std::sync::Arc::clone(&exact);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let n = exact.len() as u32;
                let mut last_round = 0u64;
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let v = (r * 31 + reads as usize * 7) as u32 % n;
                    match c.vertex(TENANT, v) {
                        Ok(est) => {
                            assert!(est.lower <= est.estimate && est.estimate <= est.upper);
                            assert!(
                                (est.estimate - exact[v as usize]).abs() <= est.eps,
                                "v{v} strayed beyond its reported ε mid-recovery"
                            );
                            assert!(est.round >= last_round, "cache round went backwards");
                            last_round = est.round;
                            reads += 1;
                        }
                        Err(QueryError::Overloaded) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected error mid-recovery: {e}"),
                    }
                }
                reads
            })
        })
        .collect();

    let c = server.client();
    let out = c.refine(TENANT, floor, 256).expect("floor reachable");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    assert_eq!(out.live, 2, "the planned crash must have fired");
    assert!(total > 0, "readers never got a successful answer in");
}

/// The whole chaos scenario is a pure function of `(plan, seed)`: two runs
/// must produce bit-identical frozen stages, identical frontier metadata,
/// identical survivor counts, and identical checkpoints.
#[test]
fn chaos_recovery_replays_bit_for_bit() {
    let run = || {
        let server = boot_chaos();
        let c = server.client();
        let t = server.tenant(TENANT).expect("tenant");
        let floor = t.floor_eps();
        let out = c.refine(TENANT, floor, 256).expect("floor reachable");
        let mut sc = c.scratch(TENANT).expect("tenant");
        let mut scores = Vec::new();
        let mut stages = Vec::new();
        for &eps in &t.schedule() {
            let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("frozen");
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            stages.push((meta.eps.to_bits(), meta.tau, meta.round, bits));
        }
        let ckpt = server.checkpoint(TENANT).expect("tenant");
        (out.live, out.tau, out.rounds_run, stages, ckpt.images, ckpt.round)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "survivor count diverged");
    assert_eq!((a.1, a.2), (b.1, b.2), "(τ, rounds) diverged");
    assert_eq!(a.3, b.3, "frozen stages diverged between replays");
    assert_eq!(a.4, b.4, "checkpoint images diverged between replays");
    assert_eq!(a.5, b.5);
}

/// Sanity for the fixture itself: the same scenario with the crash removed
/// keeps all three ranks — proving the shrink observed above is the plan's
/// doing, not an artifact of the pool.
#[test]
fn ideal_plan_keeps_the_full_pool() {
    let server = boot_with_plan(SEED, FaultPlan::ideal(SEED));
    let cfg = tenant_config(SEED);
    let c = server.client();
    let floor = server.tenant(TENANT).expect("tenant").floor_eps();
    let out = c.refine(TENANT, floor, 256).expect("floor reachable");
    assert_eq!(out.live, cfg.pool_ranks, "a rank died under the ideal plan");
    assert!(out.achieved <= floor);
}
