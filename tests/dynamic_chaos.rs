//! Chaos acceptance for streaming updates (ISSUE 8): a sampler rank dies
//! **mid-update-batch** — after its local classify-and-redraw transaction,
//! instead of joining the batch's ledger all-reduce — and the service must
//! recover on the survivors via the checkpointed ledgers, never serve an
//! answer that mixes the pre- and post-update graph generations, and
//! replay the whole scenario bit-for-bit from the same `(plan, seed)`.
//!
//! The engine's fault-plan salt policy routes the plan's crash schedule to
//! the *first update batch* (refinement rounds run under crash-free
//! reseeded salts), so `with_crash_at_collective(2, 0)` fires exactly at
//! the hardest point for the recovery protocol: the batch collective.

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::graph::csr::graph_from_edges;
use kadabra_mpi::graph::{Graph, NodeId};
use kadabra_mpi::mpisim::FaultPlan;
use kadabra_mpi::server::testkit::{boot_dynamic_with_plan, corpus_graph, tenant_config, TENANT};
use kadabra_mpi::server::{QueryError, Server};

const SEED: u64 = 23;

/// Rank 2 of the 3-rank pool dies instead of joining its first collective.
/// Refinement rounds are crash-free by the salt policy, so this is the
/// update batch's post-transaction ledger all-reduce.
fn crash_plan() -> FaultPlan {
    FaultPlan::ideal(SEED).with_crash_at_collective(2, 0)
}

fn boot_chaos() -> Server {
    boot_dynamic_with_plan(SEED, crash_plan())
}

type EdgeList = Vec<(NodeId, NodeId)>;

/// A deterministic update batch in original vertex ids: two deletions of
/// corpus edges plus one insertion of the first non-edge.
fn fixture_batch(g: &Graph) -> (EdgeList, EdgeList) {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let deletes = vec![edges[0], edges[edges.len() / 2]];
    let n = g.num_nodes() as NodeId;
    let mut inserts = Vec::new();
    'outer: for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                inserts.push((u, v));
                break 'outer;
            }
        }
    }
    (inserts, deletes)
}

/// The corpus graph after the fixture batch, for the post-update oracle.
fn mutated_graph(g: &Graph) -> Graph {
    let (inserts, deletes) = fixture_batch(g);
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().filter(|e| !deletes.contains(e)).collect();
    edges.extend(inserts);
    graph_from_edges(g.num_nodes(), &edges)
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// The crash fires inside the update batch: the pool shrinks from 3 to 2,
/// the survivors' checkpointed ledgers carry the post-update frame, and
/// every answer afterwards tracks the *mutated* graph within the reported
/// accuracy.
#[test]
fn crash_mid_update_batch_recovers_on_the_survivors() {
    let corpus = corpus_graph(SEED);
    let exact_new = brandes(&mutated_graph(&corpus));
    let server = boot_chaos();
    let c = server.client();
    let t = server.tenant(TENANT).expect("fixture tenant");

    // Refinement before the update runs crash-free on the full pool —
    // proving the shrink observed below is the batch collective's doing.
    let out = c.refine(TENANT, 0.3, 256).expect("refine on the full pool");
    assert_eq!(out.live, 3, "a rank died during a refine round");
    let tau_before = out.tau;

    let (inserts, deletes) = fixture_batch(&corpus);
    let up = c.update(TENANT, &inserts, &deletes, 0).expect("batch applies through the crash");
    assert_eq!(up.seq, 1);
    assert_eq!(up.live, 2, "exactly one rank must have died mid-batch");
    assert_eq!(up.generation, 1, "the batch must retire the old graph's generation");
    assert!(up.invalidated > 0, "the batch crossed no retained sample");
    assert!(up.retained > 0, "classification invalidated everything");
    assert!(
        up.invalidated + up.retained < tau_before,
        "the dead rank's mass must be gone from the survivor tallies"
    );
    assert_eq!(
        up.tau,
        up.invalidated + up.retained,
        "post-crash τ must be exactly the survivors' post-transaction mass"
    );

    // The survivors' frontier answers about the mutated graph, within the
    // accuracy it reports.
    for v in 0..t.num_vertices() as u32 {
        let est = c.vertex(TENANT, v).expect("post-update frontier published");
        assert!(est.lower <= est.estimate && est.estimate <= est.upper);
        assert!(
            (est.estimate - exact_new[v as usize]).abs() <= est.eps,
            "v{v}: strayed beyond the reported ε {} after recovery",
            est.eps
        );
    }

    // Refinement continues on the shrunken pool down to the floor.
    let floor = t.floor_eps();
    let out = c.refine(TENANT, floor, 256).expect("floor reachable on the survivors");
    assert_eq!(out.live, 2, "the pool must not shrink further");
    assert!(out.achieved <= floor, "survivors stalled at ε = {}", out.achieved);
    let mut sc = c.scratch(TENANT).expect("tenant");
    let mut scores = Vec::new();
    for &eps in &t.schedule() {
        let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage frozen");
        let err = max_abs_diff(&scores, &exact_new);
        assert!(
            err <= meta.eps,
            "stage ε={eps}: err {err} > reported {} on the new graph",
            meta.eps
        );
    }
}

/// Generation fencing across the crash: the update retires every frozen
/// stage of the old graph (they come back `NotReady`, never stale), and the
/// stages re-frozen afterwards carry *new-graph* answers.
#[test]
fn the_cache_never_serves_a_mixed_generation_answer() {
    let corpus = corpus_graph(SEED);
    let exact_new = brandes(&mutated_graph(&corpus));
    let server = boot_chaos();
    let c = server.client();
    let t = server.tenant(TENANT).expect("fixture tenant");
    let floor = t.floor_eps();

    // Freeze every stage under generation 0 (old graph) and record its
    // exact bits.
    c.refine(TENANT, floor, 256).expect("floor reachable pre-update");
    let mut sc = c.scratch(TENANT).expect("tenant");
    let mut scores = Vec::new();
    let mut old_bits = Vec::new();
    for &eps in &t.schedule() {
        c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage frozen pre-update");
        old_bits.push(scores.iter().map(|s| s.to_bits()).collect::<Vec<u64>>());
    }

    // The update (with the mid-batch crash) bumps the generation without
    // any follow-up refinement. Every old-graph stage is fenced off: a
    // full-vector query either reports `NotReady` (the stage has not
    // re-frozen yet) or serves a vector re-frozen from the post-update
    // frame — never the old generation's bits, never a blend outside the
    // new graph's ε.
    let (inserts, deletes) = fixture_batch(&corpus);
    let up = c.update(TENANT, &inserts, &deletes, 0).expect("batch applies");
    assert_eq!(up.generation, 1);
    for (i, &eps) in t.schedule().iter().enumerate() {
        match c.estimate_into(TENANT, eps, &mut sc, &mut scores) {
            Err(QueryError::NotReady { .. }) => {}
            Ok(meta) => {
                let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
                assert_ne!(
                    bits, old_bits[i],
                    "stage ε={eps} served the old generation's vector after the bump"
                );
                let err = max_abs_diff(&scores, &exact_new);
                assert!(
                    err <= meta.eps,
                    "stage ε={eps} served a blend {err} off the new oracle after the bump"
                );
            }
            Err(e) => panic!("stage ε={eps}: unexpected error across the bump: {e}"),
        }
    }
    // The per-vertex frontier, republished under the new generation inside
    // the same engine-lock critical section, answers the new graph.
    let v0 = c.vertex(TENANT, 0).expect("post-update frontier");
    assert!((v0.estimate - exact_new[0]).abs() <= v0.eps);

    // Refinement re-freezes the schedule under the new generation; every
    // stage now matches the new oracle within its ε.
    c.refine(TENANT, floor, 256).expect("floor reachable after the update");
    for &eps in &t.schedule() {
        let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage re-frozen");
        let err = max_abs_diff(&scores, &exact_new);
        assert!(err <= meta.eps, "stage ε={eps}: re-frozen stage off the new oracle by {err}");
    }
}

/// Readers racing the crashing update always see a coherent snapshot: a
/// well-formed confidence interval around an estimate that matches either
/// the old graph or the new one within the reported ε — never a blend
/// outside both.
#[test]
// The collect is load-bearing: all readers must be running before the
// update starts; joining lazily would serialize them after it.
#[allow(clippy::needless_collect)]
fn concurrent_readers_stay_coherent_through_the_crashing_update() {
    let corpus = corpus_graph(SEED);
    let exact_old = std::sync::Arc::new(brandes(&corpus));
    let exact_new = std::sync::Arc::new(brandes(&mutated_graph(&corpus)));
    let server = boot_chaos();
    let c = server.client();
    c.refine(TENANT, 0.3, 256).expect("warm frontier");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|r| {
            let c = server.client();
            let exact_old = std::sync::Arc::clone(&exact_old);
            let exact_new = std::sync::Arc::clone(&exact_new);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let n = exact_old.len() as u32;
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let v = (r * 31 + reads as usize * 7) as u32 % n;
                    match c.vertex(TENANT, v) {
                        Ok(est) => {
                            assert!(est.lower <= est.estimate && est.estimate <= est.upper);
                            let old_ok = (est.estimate - exact_old[v as usize]).abs() <= est.eps;
                            let new_ok = (est.estimate - exact_new[v as usize]).abs() <= est.eps;
                            assert!(
                                old_ok || new_ok,
                                "v{v} matches neither graph generation within ε {}",
                                est.eps
                            );
                            reads += 1;
                        }
                        Err(QueryError::Overloaded) => std::thread::yield_now(),
                        Err(e) => panic!("unexpected error mid-update: {e}"),
                    }
                }
                reads
            })
        })
        .collect();

    let (inserts, deletes) = fixture_batch(&corpus);
    let up = c.update(TENANT, &inserts, &deletes, 64).expect("batch applies");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    assert_eq!(up.live, 2, "the planned crash must have fired");
    assert!(total > 0, "readers never got a successful answer in");
}

/// The whole chaos scenario is a pure function of `(plan, seed)`: two runs
/// produce bit-identical update outcomes, frozen stages, and checkpointed
/// ledger images.
#[test]
fn the_crashing_update_replays_bit_for_bit() {
    let corpus = corpus_graph(SEED);
    let run = || {
        let server = boot_chaos();
        let c = server.client();
        let t = server.tenant(TENANT).expect("tenant");
        let floor = t.floor_eps();
        c.refine(TENANT, 0.3, 256).expect("pre-update refine");
        let (inserts, deletes) = fixture_batch(&corpus);
        let up = c.update(TENANT, &inserts, &deletes, 0).expect("batch applies");
        let out = c.refine(TENANT, floor, 256).expect("floor reachable");
        let mut sc = c.scratch(TENANT).expect("tenant");
        let mut scores = Vec::new();
        let mut stages = Vec::new();
        for &eps in &t.schedule() {
            let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("frozen");
            let bits: Vec<u64> = scores.iter().map(|s| s.to_bits()).collect();
            stages.push((meta.eps.to_bits(), meta.tau, meta.round, bits));
        }
        let ckpt = server.checkpoint(TENANT).expect("tenant");
        (
            (up.seq, up.invalidated, up.retained, up.tau, up.generation, up.live),
            (out.live, out.tau, out.rounds_run),
            stages,
            ckpt.images,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "update outcome diverged between replays");
    assert_eq!(a.1, b.1, "(live, τ, rounds) diverged");
    assert_eq!(a.2, b.2, "frozen stages diverged between replays");
    assert_eq!(a.3, b.3, "checkpointed ledger images diverged between replays");
}

/// Sanity for the fixture: the same scenario under an ideal plan keeps all
/// three ranks through the update — the shrink above is the plan's doing.
#[test]
fn an_ideal_plan_keeps_the_full_pool_through_the_update() {
    let corpus = corpus_graph(SEED);
    let server = boot_dynamic_with_plan(SEED, FaultPlan::ideal(SEED));
    let cfg = tenant_config(SEED);
    let c = server.client();
    let (inserts, deletes) = fixture_batch(&corpus);
    let tau_before = {
        let out = c.refine(TENANT, 0.3, 256).expect("refine");
        out.tau
    };
    let up = c.update(TENANT, &inserts, &deletes, 0).expect("batch applies");
    assert_eq!(up.live, cfg.pool_ranks, "a rank died under the ideal plan");
    assert_eq!(
        up.invalidated + up.retained,
        tau_before,
        "classification must conserve the full pool's τ"
    );
}
