//! Model-checked verification of the epoch protocol's memory orderings.
//!
//! Run with `cargo test -p kadabra-epoch --features loom`. Each scenario
//! executes under `loom::model`, which explores every thread interleaving
//! (bounded by a small preemption budget) *and* every stale value a
//! `Relaxed` load may legally return, so a missing `Release`/`Acquire` pair
//! in the protocol shows up as an assertion failure on some schedule instead
//! of a once-a-month heisenbug.
//!
//! What each scenario proves (referring to Section IV-B of the paper and
//! the crate docs' memory-ordering argument):
//!
//! * [`epoch_publication_two_threads`] — all `Relaxed` state-frame writes a
//!   worker performs before joining a transition are visible to the
//!   aggregator after `transition_done` observes the worker's `Release`
//!   epoch store (no lost samples at the epoch boundary).
//! * [`frame_recycling_two_epochs`] — across two full
//!   transition/aggregation cycles the two-frames-per-thread parity scheme
//!   neither loses nor double-counts samples (the "no thread accesses state
//!   frames of epoch e−2" invariant).
//! * [`transition_conservation_three_threads`] — same conservation with two
//!   workers joining one commanded transition in any order.
//! * [`termination_flag_publishes_results`] — data written before
//!   `signal_termination`'s `Release` store is visible to a thread that
//!   observes the flag via `should_terminate`'s `Acquire` load.
//! * [`relaxed_epoch_publication_is_caught`] — **negative control**: the
//!   same publication pattern with the `Release` store deliberately
//!   downgraded to `Relaxed` is *rejected* by the checker. This is the test
//!   that proves the model can actually see stale reads; without it, the
//!   green scenarios above would be unfalsifiable.

#![cfg(feature = "loom")]

use kadabra_epoch::EpochFramework;
use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use loom::sync::Arc;

/// Small preemption budget: the protocol's failure modes (stale frame
/// reads, lost publication) all need at most two involuntary switches.
fn model(f: impl Fn() + Send + Sync + 'static) {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(2);
    b.check(f);
}

#[test]
fn epoch_publication_two_threads() {
    model(|| {
        let fw = Arc::new(EpochFramework::new(1, 2));
        let worker = {
            let fw = Arc::clone(&fw);
            loom::thread::spawn(move || {
                let mut h = fw.handle(1);
                // One sample in epoch 0, then join the commanded transition.
                h.record_sample(&[0]);
                while !fw.check_transition(&mut h) {
                    loom::thread::yield_now();
                }
            })
        };
        let mut h0 = fw.handle(0);
        h0.record_sample(&[0]);
        fw.force_transition(&mut h0, 0);
        while !fw.transition_done(0) {
            loom::thread::yield_now();
        }
        let mut acc = vec![0u64; 1];
        let tau = fw.aggregate_epoch(0, &mut acc);
        // Both samples of epoch 0 must be aggregated: the worker's Relaxed
        // frame writes happen-before its Release epoch store, which the
        // aggregator acquired through transition_done.
        assert_eq!(tau, 2, "lost or phantom samples at the epoch boundary");
        assert_eq!(acc[0], 2, "counts and tau disagree after aggregation");
        worker.join().expect("worker");
    });
}

#[test]
fn frame_recycling_two_epochs() {
    model(|| {
        let fw = Arc::new(EpochFramework::new(1, 2));
        let worker = {
            let fw = Arc::clone(&fw);
            loom::thread::spawn(move || {
                let mut h = fw.handle(1);
                // One sample per epoch, for epochs 0 and 1.
                for _ in 0..2u32 {
                    h.record_sample(&[0]);
                    while !fw.check_transition(&mut h) {
                        loom::thread::yield_now();
                    }
                }
            })
        };
        let mut h0 = fw.handle(0);
        let mut total = 0u64;
        let mut acc = vec![0u64; 1];
        for e in 0..2u32 {
            h0.record_sample(&[0]);
            fw.force_transition(&mut h0, e);
            while !fw.transition_done(e) {
                loom::thread::yield_now();
            }
            // Epoch e's parity frame is recycled for epoch e+2 only after
            // this drain zeroed it; double counting or a lost zeroing would
            // break the running total below.
            total += fw.aggregate_epoch(e, &mut acc);
        }
        assert_eq!(total, 4, "conservation across recycled frames");
        assert_eq!(acc[0], 4, "counts and tau disagree across epochs");
        worker.join().expect("worker");
    });
}

#[test]
fn transition_conservation_three_threads() {
    // Three threads explode the schedule space; one involuntary switch is
    // enough here because a lost sample needs only a single badly-timed
    // preemption between a worker's frame write and its epoch store — the
    // rest of the exploration comes from stale-value choices, which the
    // preemption bound does not limit.
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(1);
    b.check(|| {
        let fw = Arc::new(EpochFramework::new(1, 3));
        let spawn_worker = |t: usize| {
            let fw = Arc::clone(&fw);
            loom::thread::spawn(move || {
                let mut h = fw.handle(t);
                h.record_sample(&[0]);
                while !fw.check_transition(&mut h) {
                    loom::thread::yield_now();
                }
            })
        };
        let w1 = spawn_worker(1);
        let w2 = spawn_worker(2);
        let mut h0 = fw.handle(0);
        fw.force_transition(&mut h0, 0);
        while !fw.transition_done(0) {
            loom::thread::yield_now();
        }
        let mut acc = vec![0u64; 1];
        let tau = fw.aggregate_epoch(0, &mut acc);
        assert_eq!(tau, 2, "each worker's sample must be aggregated exactly once");
        assert_eq!(acc[0], 2);
        w1.join().expect("w1");
        w2.join().expect("w2");
    });
}

#[test]
fn termination_flag_publishes_results() {
    model(|| {
        let fw = Arc::new(EpochFramework::new(1, 1));
        // Stand-in for the final aggregated result the coordinator publishes
        // before raising the termination flag (Algorithm 2 line 29).
        let result = Arc::new(AtomicU64::new(0));
        let reader = {
            let fw = Arc::clone(&fw);
            let result = Arc::clone(&result);
            loom::thread::spawn(move || {
                while !fw.should_terminate() {
                    loom::thread::yield_now();
                }
                // The Acquire load of the flag must make the Relaxed result
                // write visible.
                assert_eq!(
                    result.load(Ordering::Relaxed),
                    42,
                    "termination observed before the published result"
                );
            })
        };
        result.store(42, Ordering::Relaxed);
        fw.signal_termination();
        reader.join().expect("reader");
    });
}

/// Negative control: downgrading the publication store from `Release` to
/// `Relaxed` (the exact bug class the protocol's ordering argument rules
/// out) must be caught by the checker as a stale read.
#[test]
fn relaxed_epoch_publication_is_caught() {
    let failed = std::panic::catch_unwind(|| {
        model(|| {
            // Minimal replica of record_sample + epoch publication, with the
            // worker's Release store deliberately weakened.
            let count = Arc::new(AtomicU32::new(0));
            let epoch = Arc::new(AtomicU32::new(0));
            let worker = {
                let count = Arc::clone(&count);
                let epoch = Arc::clone(&epoch);
                loom::thread::spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                    // BUG: must be Ordering::Release to publish the count.
                    epoch.store(1, Ordering::Relaxed);
                })
            };
            while epoch.load(Ordering::Acquire) == 0 {
                loom::thread::yield_now();
            }
            // Without a release/acquire edge there is a schedule where the
            // count increment is still invisible here.
            assert_eq!(count.load(Ordering::Relaxed), 1);
            worker.join().expect("worker");
        });
    });
    assert!(
        failed.is_err(),
        "the model checker failed to catch a Release->Relaxed downgrade; \
         the positive scenarios in this file are not trustworthy"
    );
}
