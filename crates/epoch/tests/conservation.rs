//! Property test: **sample conservation** of the epoch framework under
//! randomly generated interleavings of the protocol's operations.
//!
//! The paper's Section IV-B relies on one invariant above all others: no
//! sample a worker records is ever lost or double-counted, regardless of how
//! recording, epoch transitions, and aggregation interleave. The loom tests
//! (`tests/loom.rs`) prove this exhaustively for tiny schedules with real
//! concurrency; this test complements them with *large random schedules* —
//! hundreds of operations, up to four threads, many epochs — executed as a
//! deterministic single-threaded simulation where the generated script *is*
//! the interleaving. Every script must satisfy:
//!
//! ```text
//! Σ aggregated counts == per-vertex samples produced
//! Σ aggregated τ      == total samples recorded
//! ```
//!
//! after a final flush that drains all in-flight epochs.

use kadabra_epoch::{EpochFramework, SamplerHandle};
use proptest::prelude::*;

/// One step of a generated schedule, decoded from `(op, arg)` pairs.
///
/// * `op % 8 ∈ {0..=4}` — record a sample (two interior vertices from `arg`)
///   on the thread `arg >> 12` selects; variant 4 routes thread 0's sample
///   through `record_sample_next_epoch`, the overlap path of Algorithm 2.
/// * `op % 8 ∈ {5, 6}` — thread 0 control step: start a transition if none
///   is pending, otherwise aggregate once every thread has joined.
/// * `op % 8 = 7` — a non-zero thread polls `check_transition`.
struct Sim<'a> {
    fw: &'a EpochFramework,
    handles: Vec<SamplerHandle<'a>>,
    /// Next epoch to aggregate.
    epoch: u32,
    /// A `force_transition(epoch)` has been issued but not yet aggregated.
    pending: bool,
    /// Ground truth: per-vertex increments issued via `record_sample*`.
    produced: Vec<u64>,
    /// Ground truth: total samples recorded.
    recorded: u64,
    /// Aggregated counts (accumulated across epochs).
    acc: Vec<u64>,
    /// Aggregated τ (accumulated across epochs).
    tau: u64,
}

impl<'a> Sim<'a> {
    fn new(fw: &'a EpochFramework, threads: usize, n: usize) -> Self {
        Sim {
            fw,
            handles: (0..threads).map(|t| fw.handle(t)).collect(),
            epoch: 0,
            pending: false,
            produced: vec![0u64; n],
            recorded: 0,
            acc: vec![0u64; n],
            tau: 0,
        }
    }

    fn step(&mut self, op: u8, arg: u16) {
        let threads = self.handles.len();
        let n = self.produced.len();
        match op % 8 {
            sel @ 0..=4 => {
                let t = (arg >> 12) as usize % threads;
                let v1 = (arg as usize) % n;
                let v2 = (arg as usize >> 6) % n;
                let interior = [v1 as u32, v2 as u32];
                if sel == 4 && t == 0 {
                    // Thread 0's overlapped sampling while a transition or
                    // aggregation is in flight (Algorithm 2 lines 15/21/27).
                    self.handles[0].record_sample_next_epoch(&interior);
                } else {
                    self.handles[t].record_sample(&interior);
                }
                self.produced[v1] += 1;
                self.produced[v2] += 1;
                self.recorded += 1;
            }
            5 | 6 => {
                if !self.pending {
                    self.fw.force_transition(&mut self.handles[0], self.epoch);
                    self.pending = true;
                } else if self.fw.transition_done(self.epoch) {
                    self.tau += self.fw.aggregate_epoch(self.epoch, &mut self.acc);
                    self.epoch += 1;
                    self.pending = false;
                }
            }
            _ => {
                if threads > 1 {
                    let t = 1 + (arg as usize % (threads - 1));
                    self.fw.check_transition(&mut self.handles[t]);
                }
            }
        }
    }

    /// Drains every in-flight epoch. Three forced rounds suffice: at flush
    /// time no thread is past `epoch + 1`, and `record_sample_next_epoch`
    /// may have written at most one epoch beyond that, so aggregating
    /// `epoch`, `epoch + 1`, and `epoch + 2` empties both frame parities.
    fn flush(&mut self) {
        for _ in 0..3 {
            if !self.pending {
                self.fw.force_transition(&mut self.handles[0], self.epoch);
            }
            for h in self.handles.iter_mut().skip(1) {
                while h.epoch() <= self.epoch {
                    assert!(self.fw.check_transition(h), "commanded epoch must be ahead");
                }
            }
            assert!(self.fw.transition_done(self.epoch));
            self.tau += self.fw.aggregate_epoch(self.epoch, &mut self.acc);
            self.epoch += 1;
            self.pending = false;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For every generated interleaving, the sum of aggregated per-vertex
    /// counts equals the counts produced, and the aggregated τ equals the
    /// number of samples recorded — nothing lost, nothing double-counted.
    #[test]
    fn conservation_under_random_interleavings(
        threads in 1usize..=4,
        n in 1usize..=16,
        script in collection::vec((0u8..=255, 0u16..=u16::MAX), 1..400),
    ) {
        let fw = EpochFramework::new(n, threads);
        let mut sim = Sim::new(&fw, threads, n);
        for &(op, arg) in &script {
            sim.step(op, arg);
        }
        sim.flush();
        prop_assert_eq!(sim.tau, sim.recorded, "τ must equal samples recorded");
        prop_assert_eq!(&sim.acc, &sim.produced, "per-vertex counts must be conserved");
    }

    /// Degenerate schedules — no transitions at all, or transitions with no
    /// samples — conserve trivially (the flush drains everything).
    #[test]
    fn conservation_of_pure_recording(
        threads in 1usize..=4,
        n in 1usize..=8,
        samples in collection::vec((0u8..=4, 0u16..=u16::MAX), 0..64),
    ) {
        let fw = EpochFramework::new(n, threads);
        let mut sim = Sim::new(&fw, threads, n);
        for &(op, arg) in &samples {
            sim.step(op, arg); // op ∈ 0..=4: records only
        }
        sim.flush();
        prop_assert_eq!(sim.tau, sim.recorded);
        prop_assert_eq!(&sim.acc, &sim.produced);
    }
}
