//! The **epoch-based framework** for aggregating adaptive-sampling state
//! from multiple threads with almost no synchronization.
//!
//! This crate reproduces the concurrent data structure of van der Grinten,
//! Angriman & Meyerhenke, *"Parallel adaptive sampling with almost no
//! synchronization"* (Euro-Par 2019) — Ref. [24] of the IPDPS 2020 paper —
//! in the functional formulation of the paper's Section IV-B:
//!
//! * Sampling progress is divided into discrete **epochs**; epochs are *not*
//!   synchronized between threads.
//! * Each thread writes samples into its own **state frame** (SF) for the
//!   current epoch. A state frame is the pair `(τ, c̃)`: a sample counter and
//!   a per-vertex count vector.
//! * Thread 0 initiates epoch transitions via [`EpochFramework::force_transition`]
//!   (non-blocking; completion is monitored with
//!   [`EpochFramework::transition_done`]); other threads join via
//!   [`EpochFramework::check_transition`] between samples.
//! * Once all threads have advanced past epoch `e`, the SFs of epoch `e` are
//!   immutable and thread 0 may aggregate them soundly
//!   ([`EpochFramework::aggregate_epoch`]).
//!
//! The mechanism is **wait-free for sampling threads**: recording a sample is
//! a handful of `Relaxed` atomic increments; checking for a transition is a
//! single `Acquire` load plus, at most, one `Release` store. No
//! compare-and-swap is used anywhere, matching the "lightweight memory
//! fences" claim of Ref. [24].
//!
//! Memory-ordering argument (the paper defers this to Ref. [24]):
//! a sampling thread finishes all `Relaxed` frame writes *before* it
//! publishes its new epoch with a `Release` store; the aggregator reads the
//! epoch with an `Acquire` load before touching the frame, so all frame
//! writes *happen-before* the aggregation reads. Conversely the aggregator
//! zeroes a frame before publishing the next `commanded` epoch (`Release`),
//! and the owner re-acquires it only after observing that command
//! (`Acquire`), so recycled frames are seen zeroed. Exactly two frames per
//! thread are needed because a thread in epoch `e+1` can only be commanded
//! into `e+2` after the aggregation of `e` completed — the paper's
//! "no thread accesses state frames of epoch e−2" guarantee.

use crossbeam::utils::CachePadded;
pub mod probe;
pub mod sync;

pub use probe::CrossEpochProbe;

use crate::sync::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// A state frame: per-vertex sample counts `c̃` plus the sample counter `τ`.
///
/// Owned by one thread for one epoch at a time; written with `Relaxed`
/// ordering (publication happens via the owner's epoch counter).
pub struct StateFrame {
    counts: Vec<AtomicU32>,
    tau: AtomicU64,
}

impl StateFrame {
    fn new(n: usize) -> Self {
        let mut counts = Vec::with_capacity(n);
        counts.resize_with(n, || AtomicU32::new(0));
        StateFrame { counts, tau: AtomicU64::new(0) }
    }

    /// Records one sample: increments `τ` and the count of every vertex in
    /// `interior` (the interior vertices of the sampled shortest path; an
    /// empty slice is a valid sample of an adjacent pair).
    #[inline]
    fn record(&self, interior: &[u32]) {
        for &v in interior {
            self.counts[v as usize].fetch_add(1, Ordering::Relaxed);
        }
        self.tau.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads τ.
    pub fn tau(&self) -> u64 {
        self.tau.load(Ordering::Relaxed)
    }

    /// Drains this frame into `acc` (u64 accumulation), zeroing it for reuse.
    fn drain_into(&self, acc: &mut [u64]) -> u64 {
        debug_assert_eq!(acc.len(), self.counts.len());
        for (a, c) in acc.iter_mut().zip(&self.counts) {
            let v = c.load(Ordering::Relaxed);
            if v != 0 {
                *a += v as u64;
                c.store(0, Ordering::Relaxed);
            }
        }
        self.tau.swap(0, Ordering::Relaxed)
    }
}

/// Shared coordination state for `T` sampling threads over an `n`-vertex
/// graph. See the crate docs for the protocol.
pub struct EpochFramework {
    n: usize,
    num_threads: usize,
    /// The epoch every thread is commanded to reach (written by thread 0).
    commanded: CachePadded<AtomicU32>,
    /// Per-thread current epoch; written only by the owning thread.
    thread_epochs: Vec<CachePadded<AtomicU32>>,
    /// Two frames per thread, indexed by epoch parity.
    frames: Vec<[StateFrame; 2]>,
    /// Global termination flag (the `d` flag of Algorithm 2).
    terminate: CachePadded<AtomicBool>,
}

impl EpochFramework {
    /// Creates the framework for `num_threads` sampling threads over `n`
    /// vertices. All threads start in epoch 0.
    pub fn new(n: usize, num_threads: usize) -> Self {
        assert!(num_threads >= 1, "at least one thread required");
        let mut thread_epochs = Vec::with_capacity(num_threads);
        thread_epochs.resize_with(num_threads, || CachePadded::new(AtomicU32::new(0)));
        let mut frames = Vec::with_capacity(num_threads);
        frames.resize_with(num_threads, || [StateFrame::new(n), StateFrame::new(n)]);
        EpochFramework {
            n,
            num_threads,
            commanded: CachePadded::new(AtomicU32::new(0)),
            thread_epochs,
            frames,
            terminate: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Number of vertices each state frame covers.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of participating threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Creates the handle for thread `t`. Each `t` must be used by exactly
    /// one thread at a time (enforced dynamically by epoch ownership, not by
    /// the type system, because handles only borrow the shared framework).
    pub fn handle(&self, t: usize) -> SamplerHandle<'_> {
        assert!(t < self.num_threads, "thread index out of range");
        // xtask: allow(atomic-protocol) — own-thread read: slot `t` is only
        // ever stored by thread `t` itself, so program order already orders
        // this load (the cross-thread paths are loom-checked in
        // `epoch_publication_two_threads`).
        SamplerHandle { fw: self, t, epoch: self.thread_epochs[t].load(Ordering::Relaxed) }
    }

    /// `FORCETRANSITION(e)` — thread 0 only: commands every thread to advance
    /// to epoch `e + 1` and advances thread 0 itself. O(1), non-blocking.
    ///
    /// # Panics
    /// Panics if `e` is not thread 0's current epoch (protocol misuse).
    pub fn force_transition(&self, handle: &mut SamplerHandle<'_>, e: u32) {
        assert_eq!(handle.t, 0, "force_transition must be called by thread 0");
        assert!(
            // xtask: allow(atomic-protocol) — own-thread read: only thread 0
            // stores slot 0, and this function asserts it runs on thread 0.
            handle.epoch == e && self.thread_epochs[0].load(Ordering::Relaxed) == e,
            "force_transition from a stale epoch"
        );
        // Thread 0's writes to its own frame for epoch e are published by
        // this Release store (its epoch counter); the commanded counter tells
        // the other threads to follow.
        self.thread_epochs[0].store(e + 1, Ordering::Release);
        self.commanded.store(e + 1, Ordering::Release);
        handle.epoch = e + 1;
    }

    /// Monitors a transition started with [`Self::force_transition`]:
    /// returns `true` once every thread has reached an epoch `> e`.
    /// O(T) per call, non-blocking.
    pub fn transition_done(&self, e: u32) -> bool {
        // Indexed so the receiver field is `thread_epochs` in the source
        // (the lint's per-field ordering inventory pairs this Acquire with
        // the Release stores above), not an opaque closure binding.
        (0..self.num_threads).all(|t| self.thread_epochs[t].load(Ordering::Acquire) > e)
    }

    /// Observability hook: the epoch thread `t` has published (`Acquire`, so
    /// a caller that acts on the value also sees that thread's frame writes).
    /// Invariant probes and tests use this to watch epoch skew from outside
    /// the protocol; it grants no frame access.
    pub fn thread_epoch(&self, t: usize) -> u32 {
        self.thread_epochs[t].load(Ordering::Acquire)
    }

    /// Observability hook: the epoch all threads are currently commanded to
    /// reach. With [`Self::thread_epoch`] this exposes the two-sided bound
    /// the protocol maintains: `commanded - 1 <= thread_epoch(t) <= commanded`
    /// for every `t` once a transition is in flight.
    pub fn commanded_epoch(&self) -> u32 {
        self.commanded.load(Ordering::Acquire)
    }

    /// `CHECKTRANSITION(e)` — threads `t != 0`: joins a pending transition if
    /// one was initiated. Returns `true` (and advances the handle's epoch)
    /// if the thread transitioned. O(1).
    pub fn check_transition(&self, handle: &mut SamplerHandle<'_>) -> bool {
        debug_assert_ne!(handle.t, 0, "thread 0 uses force_transition");
        let commanded = self.commanded.load(Ordering::Acquire);
        if commanded > handle.epoch {
            // Publish all frame writes of the finished epoch.
            handle.epoch += 1;
            self.thread_epochs[handle.t].store(handle.epoch, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Aggregates (and drains) every thread's state frame of epoch `e` into
    /// `acc`, returning the total number of samples drained. Must only be
    /// called by thread 0 after [`Self::transition_done`]`(e)` returned
    /// `true`; this is asserted.
    pub fn aggregate_epoch(&self, e: u32, acc: &mut [u64]) -> u64 {
        assert!(self.transition_done(e), "aggregating a live epoch");
        assert_eq!(acc.len(), self.n);
        let parity = (e & 1) as usize;
        let mut tau = 0;
        for tf in &self.frames {
            tau += tf[parity].drain_into(acc);
        }
        tau
    }

    /// Sets the global termination flag (Algorithm 2 line 29).
    pub fn signal_termination(&self) {
        self.terminate.store(true, Ordering::Release);
    }

    /// Reads the termination flag (Algorithm 2 line 6).
    pub fn should_terminate(&self) -> bool {
        self.terminate.load(Ordering::Acquire)
    }

    /// Bytes of one state frame (the unit of aggregation traffic); the
    /// cluster simulator uses this for communication-volume accounting.
    pub fn frame_bytes(&self) -> usize {
        self.n * std::mem::size_of::<u32>() + std::mem::size_of::<u64>()
    }
}

/// Per-thread handle: tracks the thread's current epoch and routes samples
/// into the right state frame.
pub struct SamplerHandle<'a> {
    fw: &'a EpochFramework,
    t: usize,
    epoch: u32,
}

impl<'a> SamplerHandle<'a> {
    /// The thread index this handle samples for.
    pub fn thread_index(&self) -> usize {
        self.t
    }

    /// The thread's current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Records one sample into the current epoch's state frame.
    #[inline]
    pub fn record_sample(&self, interior: &[u32]) {
        let parity = (self.epoch & 1) as usize;
        self.fw.frames[self.t][parity].record(interior);
    }

    /// Records one sample into the *next* epoch's state frame. Thread 0 uses
    /// this while a transition/aggregation of the current epoch is still in
    /// flight (Algorithm 2 lines 15, 21, 27).
    #[inline]
    pub fn record_sample_next_epoch(&self, interior: &[u32]) {
        let parity = ((self.epoch + 1) & 1) as usize;
        self.fw.frames[self.t][parity].record(interior);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    #[test]
    fn single_thread_protocol() {
        let fw = EpochFramework::new(4, 1);
        let mut h = fw.handle(0);
        h.record_sample(&[1, 2]);
        h.record_sample(&[2]);
        assert_eq!(h.epoch(), 0);
        fw.force_transition(&mut h, 0);
        assert!(fw.transition_done(0));
        let mut acc = vec![0u64; 4];
        let tau = fw.aggregate_epoch(0, &mut acc);
        assert_eq!(tau, 2);
        assert_eq!(acc, vec![0, 1, 2, 0]);
    }

    #[test]
    fn frames_are_zeroed_after_drain() {
        let fw = EpochFramework::new(3, 1);
        let mut h = fw.handle(0);
        h.record_sample(&[0]);
        fw.force_transition(&mut h, 0);
        let mut acc = vec![0u64; 3];
        assert_eq!(fw.aggregate_epoch(0, &mut acc), 1);
        // Epoch 2 reuses the parity-0 frame; it must start clean.
        h.record_sample(&[1]); // epoch 1 frame
        fw.force_transition(&mut h, 1);
        let mut acc2 = vec![0u64; 3];
        assert_eq!(fw.aggregate_epoch(1, &mut acc2), 1);
        assert_eq!(acc2, vec![0, 1, 0]);
        h.record_sample(&[2]); // epoch 2, parity 0 again
        fw.force_transition(&mut h, 2);
        let mut acc3 = vec![0u64; 3];
        assert_eq!(fw.aggregate_epoch(2, &mut acc3), 1);
        assert_eq!(acc3, vec![0, 0, 1]);
    }

    #[test]
    fn two_thread_transition_requires_participation() {
        let fw = EpochFramework::new(2, 2);
        let mut h0 = fw.handle(0);
        let mut h1 = fw.handle(1);
        fw.force_transition(&mut h0, 0);
        assert!(!fw.transition_done(0), "t=1 has not joined yet");
        assert!(fw.check_transition(&mut h1));
        assert!(fw.transition_done(0));
        assert_eq!(h1.epoch(), 1);
    }

    #[test]
    fn check_transition_without_pending_command_is_noop() {
        let fw = EpochFramework::new(2, 2);
        let mut h1 = fw.handle(1);
        assert!(!fw.check_transition(&mut h1));
        assert_eq!(h1.epoch(), 0);
    }

    #[test]
    fn next_epoch_samples_land_in_next_frame() {
        let fw = EpochFramework::new(2, 1);
        let mut h = fw.handle(0);
        h.record_sample(&[0]);
        // Overlapped samples during transition go to the next epoch.
        fw.force_transition(&mut h, 0);
        h.record_sample(&[1]); // now IN epoch 1 after force
        let mut acc = vec![0u64; 2];
        assert_eq!(fw.aggregate_epoch(0, &mut acc), 1);
        assert_eq!(acc, vec![1, 0]);
        fw.force_transition(&mut h, 1);
        let mut acc = vec![0u64; 2];
        assert_eq!(fw.aggregate_epoch(1, &mut acc), 1);
        assert_eq!(acc, vec![0, 1]);
    }

    #[test]
    fn record_sample_next_epoch_is_visible_one_epoch_later() {
        let fw = EpochFramework::new(2, 1);
        let mut h = fw.handle(0);
        h.record_sample_next_epoch(&[1]);
        fw.force_transition(&mut h, 0);
        let mut acc = vec![0u64; 2];
        assert_eq!(fw.aggregate_epoch(0, &mut acc), 0, "sample belongs to epoch 1");
        fw.force_transition(&mut h, 1);
        let mut acc = vec![0u64; 2];
        assert_eq!(fw.aggregate_epoch(1, &mut acc), 1);
        assert_eq!(acc, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "aggregating a live epoch")]
    fn aggregate_before_transition_done_panics() {
        let fw = EpochFramework::new(2, 2);
        let mut h0 = fw.handle(0);
        fw.force_transition(&mut h0, 0);
        let mut acc = vec![0u64; 2];
        fw.aggregate_epoch(0, &mut acc); // t=1 never joined
    }

    #[test]
    #[should_panic(expected = "stale epoch")]
    fn force_transition_from_stale_epoch_panics() {
        let fw = EpochFramework::new(2, 1);
        let mut h = fw.handle(0);
        fw.force_transition(&mut h, 0);
        // Manually rebuild a stale handle.
        let mut stale = SamplerHandle { fw: &fw, t: 0, epoch: 0 };
        fw.force_transition(&mut stale, 0);
        let _ = &mut h;
    }

    #[test]
    fn termination_flag_roundtrip() {
        let fw = EpochFramework::new(1, 1);
        assert!(!fw.should_terminate());
        fw.signal_termination();
        assert!(fw.should_terminate());
    }

    #[test]
    fn frame_bytes_accounting() {
        let fw = EpochFramework::new(1000, 2);
        assert_eq!(fw.frame_bytes(), 1000 * 4 + 8);
    }

    /// The conservation stress test: with T threads sampling concurrently
    /// over many epochs, no sample may be lost or double-counted.
    #[test]
    fn concurrent_conservation() {
        const N: usize = 64;
        const THREADS: usize = 4;
        const SAMPLES_PER_THREAD: usize = 5_000;
        let fw = EpochFramework::new(N, THREADS);
        let produced: Vec<StdAtomicU64> = (0..N).map(|_| StdAtomicU64::new(0)).collect();

        let mut total_acc = vec![0u64; N];
        let mut total_tau = 0u64;
        crossbeam::scope(|s| {
            for t in 1..THREADS {
                let fw = &fw;
                let produced = &produced;
                s.spawn(move |_| {
                    let mut h = fw.handle(t);
                    let mut rng = StdRng::seed_from_u64(t as u64);
                    for _ in 0..SAMPLES_PER_THREAD {
                        let a = rng.gen_range(0..N as u32);
                        let b = rng.gen_range(0..N as u32);
                        h.record_sample(&[a, b]);
                        produced[a as usize].fetch_add(1, Ordering::Relaxed);
                        produced[b as usize].fetch_add(1, Ordering::Relaxed);
                        fw.check_transition(&mut h);
                    }
                    // Drain any pending transitions until termination so the
                    // aggregator never stalls.
                    while !fw.should_terminate() {
                        fw.check_transition(&mut h);
                        std::hint::spin_loop();
                    }
                });
            }
            // Thread 0: sample a little, run the epoch machinery.
            let mut h = fw.handle(0);
            let mut rng = StdRng::seed_from_u64(0);
            let mut my_samples = 0usize;
            let mut epoch = 0u32;
            loop {
                for _ in 0..100 {
                    if my_samples < SAMPLES_PER_THREAD {
                        let a = rng.gen_range(0..N as u32);
                        h.record_sample(&[a]);
                        produced[a as usize].fetch_add(1, Ordering::Relaxed);
                        my_samples += 1;
                    }
                }
                fw.force_transition(&mut h, epoch);
                while !fw.transition_done(epoch) {
                    if my_samples < SAMPLES_PER_THREAD {
                        let a = rng.gen_range(0..N as u32);
                        h.record_sample(&[a]); // lands in epoch e+1: h already advanced
                        produced[a as usize].fetch_add(1, Ordering::Relaxed);
                        my_samples += 1;
                    }
                    std::hint::spin_loop();
                }
                total_tau += fw.aggregate_epoch(epoch, &mut total_acc);
                epoch += 1;
                // Stop once every producer thread has taken all its samples:
                // drain two more epochs to flush stragglers.
                if total_tau >= (THREADS * SAMPLES_PER_THREAD) as u64 {
                    fw.signal_termination();
                    break;
                }
            }
        })
        .unwrap();

        // All threads have joined (the scope ended), so both frame parities
        // can be drained directly; they should already be empty because the
        // aggregator only stopped once every sample was accounted for.
        for tf in &fw.frames {
            for frame in tf.iter() {
                total_tau += frame.drain_into(&mut total_acc);
            }
        }

        assert_eq!(total_tau, (THREADS * SAMPLES_PER_THREAD) as u64);
        for v in 0..N {
            assert_eq!(
                total_acc[v],
                produced[v].load(Ordering::Relaxed),
                "count mismatch at vertex {v}"
            );
        }
    }
}
