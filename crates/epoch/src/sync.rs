//! Atomic primitives behind a swap point for model checking.
//!
//! With the default feature set these are exactly `std::sync::atomic`; with
//! `--features loom` they resolve to the loom model checker's atomics so the
//! tests in `tests/loom.rs` can exhaustively explore interleavings and
//! memory orderings of the epoch protocol. Loom's atomics fall back to plain
//! `std` behaviour outside a `loom::model` closure, so the ordinary test
//! suite still runs (and passes) under `--features loom`.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
