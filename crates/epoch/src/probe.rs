//! Cross-process epoch-distance invariant probe.
//!
//! The IPDPS 2020 paper's central soundness argument for Algorithm 2
//! (Section IV-C) is that the non-blocking MPI reduction acts as a barrier:
//! "the epoch numbers in different processes cannot differ by more than
//! one". [`CrossEpochProbe`] turns that sentence into a runtime check that
//! the chaos conformance suite threads through `kadabra-core`'s MPI drivers:
//! each simulated rank reports when it *begins* and when it *completes* a
//! global round, and every completion event audits all ranks' current
//! rounds against the gap-≤-1 bound.
//!
//! Why the check is sound (no false positives from racy reads): a rank
//! completes round `e` only after every rank has joined round `e`'s
//! collective, and each rank stores its "current round" *before* joining.
//! The collective engine orders the join of each rank before any rank's
//! completion observation (both run under the engine's lock), so by
//! happens-before the observer reads every rank's current round as at least
//! `e` — and no rank can have passed `e + 1`, because completing `e + 1`
//! would require the observer itself to have joined round `e + 1` already.
//! Observed rounds outside `{e, e + 1}` therefore indicate a real protocol
//! violation, not a stale read.

use crate::sync::{AtomicU32, AtomicU64, Ordering};
use crossbeam::utils::CachePadded;

/// Sentinel marking a retired (crashed) rank in `current`; retired ranks
/// are excluded from the gap audit.
const RETIRED: u32 = u32::MAX;

/// Shared probe auditing the cross-process epoch gap at every completed
/// reduction point. One instance is shared (via `Arc`) by all simulated
/// ranks of a run; all methods are safe to call concurrently.
pub struct CrossEpochProbe {
    /// Per-rank current round, stored as `round + 1` (`0` = not started,
    /// [`RETIRED`] = excluded after a crash).
    current: Vec<CachePadded<AtomicU32>>,
    /// Largest gap any completion event observed.
    max_gap: AtomicU32,
    /// Completion events audited.
    observations: AtomicU64,
    /// Completion events whose observed gap exceeded 1.
    violations: AtomicU64,
}

impl CrossEpochProbe {
    /// A probe for `num_ranks` simulated processes, all unstarted.
    pub fn new(num_ranks: usize) -> Self {
        assert!(num_ranks >= 1, "probe needs at least one rank");
        let mut current = Vec::with_capacity(num_ranks);
        current.resize_with(num_ranks, || CachePadded::new(AtomicU32::new(0)));
        CrossEpochProbe {
            current,
            max_gap: AtomicU32::new(0),
            observations: AtomicU64::new(0),
            violations: AtomicU64::new(0),
        }
    }

    /// A probe for an elastic world: ranks `0..active` start unstarted and
    /// audited, ranks `active..num_ranks` (the standby pool) start excluded
    /// exactly as if retired — their counters stay frozen until a grow
    /// [`CrossEpochProbe::admit`]s them mid-run.
    pub fn with_standbys(num_ranks: usize, active: usize) -> Self {
        assert!(active >= 1 && active <= num_ranks, "active ranks out of range");
        let p = CrossEpochProbe::new(num_ranks);
        for r in active..num_ranks {
            p.retire(r);
        }
        p
    }

    /// Admits `rank` into the audit at global round `round` — the elastic
    /// grow's inverse of [`CrossEpochProbe::retire`]. The newcomer enters
    /// already *in* the round the survivors hand it (the post-grow round
    /// handoff), so the gap invariant holds across the membership change
    /// without a grace period. Idempotent per (rank, round): any number of
    /// survivors may report the same admission.
    pub fn admit(&self, rank: usize, round: u32) {
        // Release, like `begin_round`: the store is published to observers
        // by the collective join that follows the admission.
        self.current[rank].store(round + 1, Ordering::Release);
    }

    /// Number of ranks the probe watches.
    pub fn num_ranks(&self) -> usize {
        self.current.len()
    }

    /// Rank `rank` begins global round `round`. Must be called before the
    /// rank joins the round's first collective (the happens-before argument
    /// in the module docs relies on this ordering).
    pub fn begin_round(&self, rank: usize, round: u32) {
        // Release: the store must be ordered before the rank's subsequent
        // collective join, whose lock hand-off publishes it to observers.
        self.current[rank].store(round + 1, Ordering::Release);
    }

    /// Permanently excludes `rank` from the gap audit: its round counter
    /// froze when it crashed, which is not a protocol violation by the
    /// survivors. Called by each survivor after a communicator shrink for
    /// every member the shrink excluded (idempotent — any number of
    /// survivors may report the same loss). The invariant then continues to
    /// be enforced over the surviving ranks only.
    pub fn retire(&self, rank: usize) {
        self.current[rank].store(RETIRED, Ordering::Release);
    }

    /// Rank `rank` observed completion of global round `round` (its
    /// reduction/broadcast chain fully resolved). Audits every started,
    /// non-retired rank's current round against `{round, round + 1}` and
    /// returns the observed gap (max − min of current rounds).
    pub fn complete_round(&self, rank: usize, round: u32) -> u32 {
        debug_assert!(
            // xtask: allow(atomic-protocol) — own-rank read in a debug
            // assertion: `begin_round(rank, …)` stored this slot on the same
            // thread, so program order suffices.
            self.current[rank].load(Ordering::Relaxed) > round,
            "rank {rank} completed round {round} it never began"
        );
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        // Indexed so the receiver field is `current` in the source: the
        // lint's ordering inventory pairs this Acquire with the Release
        // stores in `begin_round`/`retire`.
        for i in 0..self.current.len() {
            let c = self.current[i].load(Ordering::Acquire);
            if c == RETIRED {
                continue;
            }
            if c == 0 {
                // A rank that never began a round while another completes
                // one is itself a gap violation past round 0; treat it as
                // round 0 so the gap computation reflects it.
                lo = 0;
                continue;
            }
            let r = c - 1;
            lo = lo.min(r);
            hi = hi.max(r);
        }
        let gap = hi.saturating_sub(lo);
        self.observations.fetch_add(1, Ordering::Relaxed);
        if gap > 1 || lo < round || hi > round + 1 {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        // The loom shim has no fetch_max; a CAS loop is equivalent.
        let mut seen = self.max_gap.load(Ordering::Relaxed);
        while gap > seen {
            match self.max_gap.compare_exchange(seen, gap, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
        gap
    }

    /// Largest cross-rank round gap observed at any completion point.
    pub fn max_gap(&self) -> u32 {
        self.max_gap.load(Ordering::Relaxed)
    }

    /// Number of completion events audited so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// Number of audits that violated the epoch-distance invariant.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Panics (with `context`, e.g. a fault-plan summary for reproduction)
    /// unless the probe audited at least one completion and saw no
    /// violation — the assertion the chaos suite runs after every
    /// perturbed execution.
    pub fn assert_clean(&self, context: &str) {
        let obs = self.observations();
        assert!(obs > 0, "epoch probe never observed a completed reduction [{context}]");
        assert_eq!(
            self.violations(),
            0,
            "epoch-distance invariant violated: max cross-process gap {} over {obs} \
             observations [{context}]",
            self.max_gap()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_rounds_keep_gap_zero() {
        let p = CrossEpochProbe::new(4);
        for round in 0..5 {
            for r in 0..4 {
                p.begin_round(r, round);
            }
            for r in 0..4 {
                assert_eq!(p.complete_round(r, round), 0);
            }
        }
        assert_eq!(p.max_gap(), 0);
        assert_eq!(p.observations(), 20);
        p.assert_clean("lockstep");
    }

    #[test]
    fn one_round_skew_is_within_the_invariant() {
        let p = CrossEpochProbe::new(3);
        for r in 0..3 {
            p.begin_round(r, 0);
        }
        // Rank 0 finishes round 0 and moves on while 1 and 2 lag in it —
        // exactly the skew the non-blocking reduction permits.
        assert_eq!(p.complete_round(0, 0), 0);
        p.begin_round(0, 1);
        assert_eq!(p.complete_round(1, 0), 1);
        assert_eq!(p.complete_round(2, 0), 1);
        assert_eq!(p.max_gap(), 1);
        p.assert_clean("±1 skew");
    }

    #[test]
    fn gap_of_two_is_flagged() {
        // Negative control: fabricate the schedule the invariant forbids —
        // rank 0 two rounds ahead of rank 1 — and check the probe trips.
        let p = CrossEpochProbe::new(2);
        p.begin_round(0, 0);
        p.begin_round(1, 0);
        p.begin_round(0, 1);
        p.begin_round(0, 2);
        assert_eq!(p.complete_round(0, 2), 2);
        assert_eq!(p.max_gap(), 2);
        assert_eq!(p.violations(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.assert_clean("negative control");
        }));
        assert!(r.is_err(), "assert_clean must panic on a recorded violation");
    }

    #[test]
    fn unstarted_rank_counts_as_behind() {
        let p = CrossEpochProbe::new(2);
        p.begin_round(0, 0);
        p.begin_round(0, 1);
        // Rank 1 never began anything; rank 0 completing round 1 must see
        // it lagging below the {round, round+1} window.
        assert_eq!(p.complete_round(0, 1), 1);
        assert_eq!(p.violations(), 1);
    }

    #[test]
    fn retired_ranks_are_excluded_from_the_audit() {
        let p = CrossEpochProbe::new(3);
        for r in 0..3 {
            p.begin_round(r, 0);
        }
        for r in 0..3 {
            p.complete_round(r, 0);
        }
        // Rank 2 crashes; its counter froze at round 0. Survivors retire it
        // after the shrink and advance many rounds without tripping the
        // audit.
        p.retire(2);
        for round in 1..6 {
            p.begin_round(0, round);
            p.begin_round(1, round);
            assert_eq!(p.complete_round(0, round), 0);
            assert_eq!(p.complete_round(1, round), 0);
        }
        assert_eq!(p.violations(), 0);
        p.assert_clean("retired rank");
    }

    #[test]
    fn standbys_are_excluded_until_admitted() {
        // Elastic world: 2 active ranks, 1 standby. The standby's frozen
        // counter must not trip the audit while the active ranks advance;
        // once admitted mid-run it is audited like any founder.
        let p = CrossEpochProbe::with_standbys(3, 2);
        for round in 0..3 {
            p.begin_round(0, round);
            p.begin_round(1, round);
            assert_eq!(p.complete_round(0, round), 0);
            assert_eq!(p.complete_round(1, round), 0);
        }
        // Grow at round 3: rank 2 joins in-round.
        p.admit(2, 3);
        for round in 3..6 {
            for r in 0..3 {
                p.begin_round(r, round);
            }
            for r in 0..3 {
                assert_eq!(p.complete_round(r, round), 0);
            }
        }
        assert_eq!(p.violations(), 0);
        p.assert_clean("standby admission");
    }

    #[test]
    fn admitted_rank_that_stalls_is_audited() {
        // Negative control for `admit`: once admitted, a newcomer that
        // freezes is a real violation, not an excluded standby.
        let p = CrossEpochProbe::with_standbys(2, 1);
        p.begin_round(0, 0);
        p.complete_round(0, 0);
        p.admit(1, 1);
        // Rank 0 races two rounds ahead while the newcomer sits in round 1.
        p.begin_round(0, 1);
        p.begin_round(0, 2);
        p.begin_round(0, 3);
        assert_eq!(p.complete_round(0, 3), 2);
        assert_eq!(p.violations(), 1);
    }

    #[test]
    fn completion_out_of_window_is_flagged_even_with_small_gap() {
        // All ranks sit in round 5 but a completion claims round 3: the gap
        // is 0, yet the window check {3, 4} must still flag it.
        let p = CrossEpochProbe::new(2);
        for r in 0..2 {
            p.begin_round(r, 5);
        }
        assert_eq!(p.complete_round(0, 3), 0);
        assert_eq!(p.violations(), 1);
    }
}
