//! Model-checked verification of the wait-free recorder's single-writer
//! publication protocol (ISSUE: "a loom test proving the single-writer
//! buffer never loses or tears an event").
//!
//! Run with `cargo test -p kadabra-telemetry --features loom` (wired into
//! `cargo xtask loom`). Each scenario runs under `loom::model`, which
//! explores thread interleavings *and* every stale value a `Relaxed` load
//! may legally return:
//!
//! * [`concurrent_reader_never_sees_torn_events`] — a reader snapshotting
//!   concurrently with the writer only ever observes fully written events
//!   (every field of every slot below the `Release`-published cursor is the
//!   writer's value, never a stale zero), and no event is lost.
//! * [`overflow_drops_are_counted_and_harmless`] — overflowing the buffer
//!   neither blocks the writer nor corrupts published slots; drops are
//!   counted exactly.
//! * [`relaxed_publication_is_caught`] — **negative control**: the same
//!   publication pattern with the cursor's `Release` store downgraded to
//!   `Relaxed` is rejected by the checker, proving the model can actually
//!   see the stale reads the real protocol rules out.

#![cfg(feature = "loom")]

use kadabra_telemetry::{Event, EventKind, MarkId, Telemetry};
use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::Arc;

fn model(f: impl Fn() + Send + Sync + 'static) {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(2);
    b.check(f);
}

/// Every published event must carry the writer's values in *all* fields:
/// epoch `i`, logical `i`, payload `i`, wall 0 (deterministic clock). A
/// missing `Release`/`Acquire` pair would let the reader see a slot with
/// some fields still zero.
fn assert_intact(events: &[Event]) {
    for (k, e) in events.iter().enumerate() {
        let i = (k + 1) as u64;
        assert_eq!(e.kind, EventKind::Mark, "meta word torn or stale");
        assert_eq!(e.id, MarkId::P2pDeliver as u8, "id torn or stale");
        assert_eq!(u64::from(e.epoch), i, "epoch field torn or stale");
        assert_eq!(e.logical, i, "logical field torn or stale");
        assert_eq!(e.value, i, "value field torn or stale");
        assert_eq!(e.wall_ns, 0, "deterministic wall reading must be 0");
    }
}

#[test]
fn concurrent_reader_never_sees_torn_events() {
    model(|| {
        let t = Arc::new(Telemetry::deterministic(2));
        let writer = {
            let t = Arc::clone(&t);
            let w = t.writer(0, 0);
            loom::thread::spawn(move || {
                for i in 1..=2u32 {
                    w.set_epoch(i);
                    w.tick(1);
                    w.mark(MarkId::P2pDeliver, u64::from(i));
                }
            })
        };
        // Concurrent reader: every intermediate snapshot must already be
        // intact — this is the tearing check, not just the final state.
        loop {
            let events = t.events();
            assert_intact(&events);
            if events.len() == 2 {
                break;
            }
            loom::thread::yield_now();
        }
        writer.join().expect("writer");
        let events = t.events();
        assert_eq!(events.len(), 2, "published events were lost");
        assert_intact(&events);
        assert_eq!(t.dropped_events(), 0);
    });
}

#[test]
fn overflow_drops_are_counted_and_harmless() {
    model(|| {
        let t = Arc::new(Telemetry::deterministic(1));
        let writer = {
            let t = Arc::clone(&t);
            let w = t.writer(0, 0);
            loom::thread::spawn(move || {
                for i in 1..=3u32 {
                    w.set_epoch(i);
                    w.tick(1);
                    // Appends 2 and 3 overflow; the writer must not block.
                    w.mark(MarkId::P2pDeliver, u64::from(i));
                }
            })
        };
        // Spin until the reader has *observed* the final state (the loom
        // shim does not model the happens-before edge of thread join, so
        // post-join loads could legally still be stale); once a value is
        // observed the reader's view is monotonic.
        loop {
            let events = t.events();
            assert_intact(&events);
            assert!(events.len() <= 1, "capacity-1 buffer published extra events");
            if events.len() == 1 && t.dropped_events() == 2 {
                break;
            }
            loom::thread::yield_now();
        }
        writer.join().expect("writer");
        let events = t.events();
        assert_eq!(events.len(), 1, "exactly the first event fits");
        assert_intact(&events);
        assert_eq!(t.dropped_events(), 2, "both overflowing events counted");
    });
}

/// Negative control: the recorder's publication edge is the `Release` store
/// of the cursor. Downgrade it to `Relaxed` in a minimal replica and the
/// checker must find a schedule where the reader sees a stale (zero) field
/// below the cursor — i.e. a torn event.
#[test]
fn relaxed_publication_is_caught() {
    let failed = std::panic::catch_unwind(|| {
        model(|| {
            let published = Arc::new(AtomicUsize::new(0));
            let field = Arc::new(AtomicU64::new(0));
            let writer = {
                let published = Arc::clone(&published);
                let field = Arc::clone(&field);
                loom::thread::spawn(move || {
                    field.store(7, Ordering::Relaxed);
                    // BUG: must be Ordering::Release to publish the slot.
                    published.store(1, Ordering::Relaxed);
                })
            };
            while published.load(Ordering::Acquire) == 0 {
                loom::thread::yield_now();
            }
            assert_eq!(field.load(Ordering::Relaxed), 7, "torn event observed");
            writer.join().expect("writer");
        });
    });
    assert!(
        failed.is_err(),
        "the model checker failed to catch a Release->Relaxed downgrade; \
         the positive scenarios in this file are not trustworthy"
    );
}
