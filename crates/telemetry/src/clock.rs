//! The two clocks every event carries (DESIGN.md §9: the logical-vs-wall
//! clock rule).
//!
//! * **Wall clock** — nanoseconds since the run origin, read from
//!   [`std::time::Instant`]. This crate is the single place in the
//!   workspace allowed to read the wall clock on algorithm paths
//!   (`cargo xtask lint` bans raw `Instant::now()` in `crates/core`);
//!   everything else threads a [`Stopwatch`] or a span through here.
//! * **Logical clock** — ticks the producer advances deterministically
//!   (overlapped polls of a non-blocking request, rounds, DES virtual
//!   nanoseconds). Under a chaos [`FaultPlan`] the logical clock is a pure
//!   function of `(plan, seed)`, so traces from perturbed runs are
//!   bit-reproducible.
//!
//! In **deterministic mode** ([`Clock::deterministic`]) every wall reading
//! is 0: chaos artifacts must not embed timing entropy, and sinks fall back
//! to the logical clock for ordering (see [`crate::chrome::TimeBase`]).

use std::time::{Duration, Instant};

/// A run-scoped clock: an origin instant plus the deterministic-mode switch.
#[derive(Debug, Clone)]
pub struct Clock {
    origin: Instant,
    deterministic: bool,
}

impl Clock {
    /// A wall clock starting now.
    pub fn wall() -> Self {
        Clock { origin: Instant::now(), deterministic: false }
    }

    /// A clock whose wall readings are always 0 (chaos / bit-reproducible
    /// runs).
    pub fn deterministic() -> Self {
        Clock { origin: Instant::now(), deterministic: true }
    }

    /// Nanoseconds since the run origin; 0 in deterministic mode.
    pub fn now_ns(&self) -> u64 {
        if self.deterministic {
            0
        } else {
            // Saturating: a >584-year run is not a concern, but the cast
            // must not wrap on hostile clock behaviour.
            u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }

    /// Whether wall readings are suppressed.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }
}

/// A started wall-time measurement — the workspace-wide replacement for raw
/// `let t = Instant::now(); ... t.elapsed()` pairs outside this crate.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Wall time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_deterministic());
    }

    #[test]
    fn deterministic_clock_reads_zero() {
        let c = Clock::deterministic();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(c.now_ns(), 0);
        assert!(c.is_deterministic());
    }

    #[test]
    fn stopwatch_measures() {
        let s = Stopwatch::start();
        assert!(s.elapsed() >= Duration::ZERO);
    }
}
