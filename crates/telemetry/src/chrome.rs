//! Chrome trace-event JSON export (`chrome://tracing` / Perfetto).
//!
//! Emits the stable subset of the trace-event format: `"X"` complete events
//! for spans, `"i"` instant events for marks, `"C"` counter events, and
//! `"M"` metadata naming each rank (process) and thread. `pid` is the MPI
//! rank, `tid` the thread within the rank, so Perfetto renders one process
//! lane per rank with the paper's phases as nested slices.

use crate::event::{Event, EventKind};
use std::io::{self, Write};

/// Which clock supplies the trace timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeBase {
    /// Wall nanoseconds since the run origin (normal runs).
    Wall,
    /// The deterministic logical clock (chaos / DES runs, where wall
    /// readings are suppressed); one tick renders as one microsecond.
    Logical,
}

/// Timestamp in trace microseconds under `base`, as a JSON number string.
fn ts(e: &Event, base: TimeBase) -> String {
    match base {
        TimeBase::Wall => format!("{:.3}", e.wall_ns as f64 / 1e3),
        TimeBase::Logical => format!("{}", e.logical),
    }
}

/// Span duration in trace microseconds. `Event::value` for spans is already
/// in the run's time base (wall ns, or ticks when deterministic).
fn dur(e: &Event, base: TimeBase) -> String {
    match base {
        TimeBase::Wall => format!("{:.3}", e.value as f64 / 1e3),
        TimeBase::Logical => format!("{}", e.value),
    }
}

/// Writes `events` as a Chrome trace-event JSON document.
///
/// The output is a single `{"traceEvents": [...]}` object; load it directly
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn write_trace<W: Write>(events: &[Event], base: TimeBase, out: &mut W) -> io::Result<()> {
    let mut first = true;
    writeln!(out, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;

    // Metadata: name each (rank) process and (rank, thread) lane once.
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    let mut lanes: Vec<(u32, u32)> = events.iter().map(|e| (e.rank, e.thread)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut emit = |out: &mut W, line: String| -> io::Result<()> {
        if first {
            first = false;
            writeln!(out, "{line}")
        } else {
            writeln!(out, ",{line}")
        }
    };
    for r in &ranks {
        emit(
            out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{r},\"tid\":0,\
                 \"args\":{{\"name\":\"rank {r}\"}}}}"
            ),
        )?;
    }
    for (r, t) in &lanes {
        emit(
            out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{r},\"tid\":{t},\
                 \"args\":{{\"name\":\"thread {t}\"}}}}"
            ),
        )?;
    }

    for e in events {
        let line = match e.kind {
            EventKind::Span => format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"phase\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"epoch\":{},\"logical\":{}}}}}",
                e.name(),
                e.rank,
                e.thread,
                ts(e, base),
                dur(e, base),
                e.epoch,
                e.logical,
            ),
            EventKind::Mark => format!(
                "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"mpi\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"s\":\"t\",\"args\":{{\"epoch\":{},\"value\":{}}}}}",
                e.name(),
                e.rank,
                e.thread,
                ts(e, base),
                e.epoch,
                e.value,
            ),
            EventKind::Count => format!(
                "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\
                 \"args\":{{\"{}\":{}}}}}",
                e.name(),
                e.rank,
                e.thread,
                ts(e, base),
                e.name(),
                e.value,
            ),
        };
        emit(out, line)?;
    }
    writeln!(out, "]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, MarkId, SpanId};
    use crate::json::Json;

    fn events() -> Vec<Event> {
        vec![
            Event {
                rank: 0,
                thread: 0,
                kind: EventKind::Span,
                id: SpanId::SampleBatch as u8,
                epoch: 2,
                wall_ns: 1_500,
                logical: 3,
                value: 4_000,
            },
            Event {
                rank: 1,
                thread: 2,
                kind: EventKind::Mark,
                id: MarkId::CollectiveStart as u8,
                epoch: 2,
                wall_ns: 2_000,
                logical: 4,
                value: 9,
            },
        ]
    }

    #[test]
    fn trace_is_valid_json_with_expected_records() {
        let mut buf = Vec::new();
        write_trace(&events(), TimeBase::Wall, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
        let list = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        // 2 process_name + 2 thread_name + 2 events.
        assert_eq!(list.len(), 6);
        let span = list
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("span record");
        assert_eq!(span.get("name").and_then(Json::as_str), Some("sample_batch"));
        assert_eq!(span.get("pid").and_then(Json::as_f64), Some(0.0));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn logical_base_uses_ticks() {
        let mut buf = Vec::new();
        write_trace(&events(), TimeBase::Logical, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let doc = Json::parse(&text).expect("valid JSON");
        let list = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        let span = list
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("span record");
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_trace(&[], TimeBase::Wall, &mut buf).expect("write");
        let doc = Json::parse(&String::from_utf8(buf).expect("utf8")).expect("valid");
        assert_eq!(doc.get("traceEvents").and_then(Json::as_array).map(Vec::len), Some(0));
    }
}
