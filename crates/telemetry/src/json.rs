//! A minimal JSON reader/writer — just enough for this crate's artifacts.
//!
//! The container has no serde; the `BENCH_*.json` schema validator
//! (`cargo xtask bench --smoke`) and the Chrome-trace tests need to *read*
//! the JSON this workspace *writes*, so one hand-rolled value type serves as
//! the single source of truth for both directions.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving member order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                members.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("bad number at byte {start}"))
}

/// Escapes `s` for embedding in a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `0`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#)
            .expect("parse");
        assert_eq!(doc.get("a").and_then(Json::as_array).map(Vec::len), Some(3));
        assert_eq!(doc.get("a").and_then(Json::as_array).and_then(|a| a[2].as_f64()), Some(-300.0));
        assert_eq!(doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x\ny"));
        assert_eq!(doc.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let raw = "a\"b\\c\nd\te\u{1}";
        let doc = Json::parse(&format!("{{\"k\": \"{}\"}}", escape(raw))).expect("parse");
        assert_eq!(doc.get("k").and_then(Json::as_str), Some(raw));
    }

    #[test]
    fn num_handles_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }
}
