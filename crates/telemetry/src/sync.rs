//! Atomic primitives behind a swap point for model checking.
//!
//! With the default feature set these are exactly `std::sync::atomic`; with
//! `--features loom` they resolve to the loom shim's model-checked versions
//! so `tests/loom.rs` can exhaustively explore the single-writer publication
//! protocol of [`crate::recorder::ThreadRecorder`] — including every stale
//! value a `Relaxed` load may legally return.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
