//! Machine-readable benchmark artifacts: `BENCH_<name>.json`.
//!
//! One stable schema (`kadabra-bench/v1`) shared by the `kadabra --bench`
//! CLI path, every `exp_*` benchmark binary, and `cargo xtask bench --smoke`
//! (which validates what it produced with [`validate_json`], so schema
//! drift fails CI, not a plotting script three weeks later).

use crate::json::{escape, num, Json};
use crate::summary::Summary;
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier written into every artifact.
pub const BENCH_SCHEMA: &str = "kadabra-bench/v1";

/// One benchmarked configuration (one row of a paper table).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Instance name (graph or generator spec).
    pub instance: String,
    /// Execution mode (`seq`, `shared`, `mpi`, `epoch-mpi`, `des`, ...).
    pub mode: String,
    /// Ranks (processes).
    pub p: usize,
    /// Threads per rank.
    pub t: usize,
    /// End-to-end wall time in nanoseconds (virtual nanoseconds for DES
    /// rows — same field, per the one-schema rule).
    pub wall_ns: u64,
    /// Total samples taken across all ranks and threads.
    pub samples: u64,
    /// Epochs / stopping-condition rounds.
    pub epochs: u64,
    /// Sampling throughput over the whole run.
    pub samples_per_sec: f64,
    /// Fraction of reduction/synchronization time overlapped with sampling,
    /// in `[0, 1]`.
    pub reduction_overlap: f64,
    /// Payload bytes moved through reductions.
    pub comm_bytes: u64,
    /// Extra numeric columns specific to one benchmark family, serialized
    /// as additional JSON keys on the run object. [`validate_json`] ignores
    /// unknown keys, so consumers of the core schema are unaffected; the
    /// kernel microbenchmark uses this for `ns_per_sample` and
    /// `allocs_per_sample`.
    pub extras: Vec<(String, f64)>,
}

impl BenchRun {
    /// Builds a row from a phase [`Summary`] plus run labels. `wall_ns` is
    /// passed by the caller (end-to-end time is the driver's to measure;
    /// the summary only knows per-phase totals).
    pub fn from_summary(
        instance: &str,
        mode: &str,
        p: usize,
        t: usize,
        wall_ns: u64,
        summary: &Summary,
    ) -> Self {
        use crate::event::CounterId;
        let samples = summary.counter(CounterId::Samples);
        let samples_per_sec =
            if wall_ns > 0 { samples as f64 / (wall_ns as f64 / 1e9) } else { 0.0 };
        BenchRun {
            instance: instance.to_string(),
            mode: mode.to_string(),
            p,
            t,
            wall_ns,
            samples,
            epochs: summary.counter(CounterId::Epochs),
            samples_per_sec,
            reduction_overlap: summary.reduction_overlap(),
            comm_bytes: summary.counter(CounterId::BytesReduced),
            extras: Vec::new(),
        }
    }

    /// Adds an extra numeric column (serialized as one more JSON key).
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extras.push((key.to_string(), value));
        self
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"instance\":\"{}\",\"mode\":\"{}\",\"p\":{},\"t\":{},\"wall_ns\":{},\
             \"samples\":{},\"epochs\":{},\"samples_per_sec\":{},\
             \"reduction_overlap\":{},\"comm_bytes\":{}",
            escape(&self.instance),
            escape(&self.mode),
            self.p,
            self.t,
            self.wall_ns,
            self.samples,
            self.epochs,
            num(self.samples_per_sec),
            num(self.reduction_overlap),
            self.comm_bytes,
        );
        for (key, value) in &self.extras {
            out.push_str(&format!(",\"{}\":{}", escape(key), num(*value)));
        }
        out.push('}');
        out
    }
}

/// A complete `BENCH_<name>.json` artifact: labels plus a list of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Artifact name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// Problem-scale knob the runs used (`KADABRA_SCALE`).
    pub scale: f64,
    /// Accuracy target ε.
    pub eps: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Benchmarked configurations.
    pub runs: Vec<BenchRun>,
}

impl BenchArtifact {
    /// An empty artifact with the given labels.
    pub fn new(name: &str, scale: f64, eps: f64, seed: u64) -> Self {
        BenchArtifact { name: name.to_string(), scale, eps, seed, runs: Vec::new() }
    }

    /// Appends one run.
    pub fn push(&mut self, run: BenchRun) {
        self.runs.push(run);
    }

    /// Serializes the artifact (pretty enough to diff, stable member order).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{}\",\n  \"name\": \"{}\",\n  \"scale\": {},\n  \
             \"eps\": {},\n  \"seed\": {},\n  \"runs\": [\n",
            BENCH_SCHEMA,
            escape(&self.name),
            num(self.scale),
            num(self.eps),
            self.seed,
        );
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&run.to_json());
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` under `dir`, returning the path.
    pub fn write_bench_json(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn require_num(run: &Json, key: &str, i: usize) -> Result<f64, String> {
    run.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("runs[{i}].{key}: missing or not a number"))
}

/// Validates a serialized artifact against the `kadabra-bench/v1` schema,
/// including value-range checks (`reduction_overlap` ∈ [0, 1], nonzero
/// throughput). Returns the artifact name on success.
pub fn validate_json(text: &str) -> Result<String, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => return Err(format!("schema: expected {BENCH_SCHEMA:?}, got {other:?}")),
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .filter(|n| !n.is_empty())
        .ok_or("name: missing or empty")?
        .to_string();
    for key in ["scale", "eps", "seed"] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{key}: missing or not a number"))?;
    }
    let runs = doc.get("runs").and_then(Json::as_array).ok_or("runs: missing or not an array")?;
    if runs.is_empty() {
        return Err("runs: must be non-empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        for key in ["instance", "mode"] {
            run.get(key)
                .and_then(Json::as_str)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| format!("runs[{i}].{key}: missing or empty"))?;
        }
        if require_num(run, "p", i)? < 1.0 || require_num(run, "t", i)? < 1.0 {
            return Err(format!("runs[{i}]: p and t must be >= 1"));
        }
        if require_num(run, "wall_ns", i)? <= 0.0 {
            return Err(format!("runs[{i}].wall_ns: must be positive"));
        }
        if require_num(run, "samples", i)? <= 0.0 {
            return Err(format!("runs[{i}].samples: must be positive"));
        }
        if require_num(run, "epochs", i)? < 1.0 {
            return Err(format!("runs[{i}].epochs: must be >= 1"));
        }
        if require_num(run, "samples_per_sec", i)? <= 0.0 {
            return Err(format!("runs[{i}].samples_per_sec: must be positive"));
        }
        let overlap = require_num(run, "reduction_overlap", i)?;
        if !(0.0..=1.0).contains(&overlap) {
            return Err(format!("runs[{i}].reduction_overlap: {overlap} outside [0, 1]"));
        }
        require_num(run, "comm_bytes", i)?;
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> BenchRun {
        BenchRun {
            instance: "gen:grid:32,32".into(),
            mode: "epoch-mpi".into(),
            p: 4,
            t: 2,
            wall_ns: 2_000_000_000,
            samples: 100_000,
            epochs: 7,
            samples_per_sec: 50_000.0,
            reduction_overlap: 0.83,
            comm_bytes: 1 << 20,
            extras: Vec::new(),
        }
    }

    #[test]
    fn artifact_roundtrips_through_validator() {
        let mut a = BenchArtifact::new("smoke", 1.0, 0.05, 42);
        a.push(run());
        let name = validate_json(&a.to_json()).expect("artifact must validate");
        assert_eq!(name, "smoke");
    }

    #[test]
    fn validator_rejects_schema_and_range_violations() {
        let mut a = BenchArtifact::new("smoke", 1.0, 0.05, 42);
        a.push(run());
        let good = a.to_json();
        assert!(validate_json(&good.replace("kadabra-bench/v1", "v0")).is_err());
        assert!(validate_json(
            &good.replace("\"reduction_overlap\":0.83", "\"reduction_overlap\":1.5")
        )
        .is_err());
        assert!(validate_json(&good.replace("\"samples\":100000", "\"samples\":0")).is_err());
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let empty = BenchArtifact::new("e", 1.0, 0.1, 1);
        assert!(validate_json(&empty.to_json()).is_err());
    }

    #[test]
    fn extras_serialize_as_keys_and_keep_the_artifact_valid() {
        let mut a = BenchArtifact::new("kernel", 1.0, 0.05, 42);
        a.push(run().with_extra("ns_per_sample", 7452.5).with_extra("allocs_per_sample", 0.0));
        let text = a.to_json();
        assert!(text.contains("\"ns_per_sample\":7452.5"), "{text}");
        assert!(text.contains("\"allocs_per_sample\":0"), "{text}");
        let doc = Json::parse(&text).expect("valid JSON");
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs array");
        assert_eq!(runs[0].get("ns_per_sample").and_then(Json::as_f64), Some(7452.5));
        validate_json(&text).expect("extras must not break the v1 schema");
    }

    #[test]
    fn from_summary_derives_throughput() {
        use crate::event::{CounterId, SpanId};
        let mut s = Summary::default();
        s.counters[CounterId::Samples.index()] = 1000;
        s.counters[CounterId::Epochs.index()] = 3;
        s.counters[CounterId::BytesReduced.index()] = 4096;
        s.span_ns[SpanId::IreduceWait.index()] = 300;
        s.span_ns[SpanId::Reduce.index()] = 100;
        s.span_count[SpanId::Reduce.index()] = 1;
        let r = BenchRun::from_summary("k", "mpi", 2, 4, 1_000_000_000, &s);
        assert!((r.samples_per_sec - 1000.0).abs() < 1e-9);
        assert!((r.reduction_overlap - 0.75).abs() < 1e-12);
        assert_eq!(r.comm_bytes, 4096);
    }
}
