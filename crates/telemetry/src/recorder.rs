//! The wait-free, per-thread, single-writer event recorder.
//!
//! # Protocol
//!
//! Each `(rank, thread)` owns one [`ThreadRecorder`]: a fixed-capacity slot
//! array plus a `published` cursor. The **single writer** appends by filling
//! the next slot's fields with `Relaxed` stores and then advancing
//! `published` with a `Release` store; a reader that loads `published` with
//! `Acquire` therefore observes every field of every slot below the cursor
//! (`Release`/`Acquire` pairing on `published` is the only synchronization).
//! Slots below the cursor are never rewritten, so a reader can never see a
//! torn or half-initialized event; slots at or above it are simply not
//! looked at. `tests/loom.rs` model-checks exactly this argument, including
//! a negative control with the `Release` downgraded to `Relaxed`.
//!
//! Every operation on the hot path is a handful of uncontended atomic
//! loads/stores — no locks, no CAS loops, no allocation — so recording never
//! blocks a sampling thread and cannot perturb the epoch framework's
//! wait-free guarantees. When the buffer is full, events are *dropped and
//! counted* (`dropped_events`), never waited for.
//!
//! Besides the event buffer, the recorder keeps running totals (per-span
//! nanoseconds/ticks/counts and counters) so phase statistics are available
//! even in unbuffered (`capacity == 0`) stats-only mode.

use crate::clock::Clock;
use crate::event::{CounterId, Event, EventKind, MarkId, SpanId, N_COUNTERS, N_SPANS};
use crate::sync::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One event slot: the four words of a packed [`Event`].
#[derive(Default)]
struct Slot {
    meta: AtomicU64,
    wall: AtomicU64,
    logical: AtomicU64,
    value: AtomicU64,
}

/// Per-`(rank, thread)` recorder state. Writers go through [`EventWriter`];
/// readers snapshot with [`ThreadRecorder::snapshot`] / the total accessors.
pub struct ThreadRecorder {
    rank: u32,
    thread: u32,
    slots: Box<[Slot]>,
    /// Number of fully written slots; the writer's `Release` store here is
    /// what publishes slot contents to readers.
    published: AtomicUsize,
    /// Events discarded because the buffer was full.
    dropped: AtomicU64,
    /// The writer's logical clock (deterministic ticks).
    logical: AtomicU64,
    /// The writer's current epoch, stamped into every event.
    epoch: AtomicU32,
    /// Running per-span wall nanoseconds.
    span_ns: Box<[AtomicU64]>,
    /// Running per-span logical-tick durations.
    span_ticks: Box<[AtomicU64]>,
    /// Running per-span completion counts.
    span_count: Box<[AtomicU64]>,
    /// Running counter totals.
    counters: Box<[AtomicU64]>,
}

fn atomic_array(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl ThreadRecorder {
    pub(crate) fn new(rank: u32, thread: u32, capacity: usize) -> Self {
        ThreadRecorder {
            rank,
            thread,
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            published: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            epoch: AtomicU32::new(0),
            span_ns: atomic_array(N_SPANS),
            span_ticks: atomic_array(N_SPANS),
            span_count: atomic_array(N_SPANS),
            counters: atomic_array(N_COUNTERS),
        }
    }

    /// Rank this recorder belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Thread within the rank.
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Single-writer append; wait-free (drops when full).
    fn append(&self, kind: EventKind, id: u8, wall: u64, logical: u64, value: u64) {
        // Relaxed: only this thread writes the cursor; the Release store
        // below is the publication point.
        // xtask: allow(atomic-protocol) — single-writer cursor read-back on
        // the writing thread; loom-checked in the telemetry recorder suite.
        let i = self.published.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let slot = &self.slots[i];
        slot.meta.store(Event::pack_meta(kind, id, epoch), Ordering::Relaxed);
        slot.wall.store(wall, Ordering::Relaxed);
        slot.logical.store(logical, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        // Release publishes the four Relaxed field stores above to any
        // reader that Acquire-loads the cursor.
        self.published.store(i + 1, Ordering::Release);
    }

    /// Reader-side snapshot of all published events, in append order.
    pub fn snapshot(&self) -> Vec<Event> {
        // Acquire pairs with the writer's Release cursor store: every slot
        // below `n` is fully written and will never change again.
        let n = self.published.load(Ordering::Acquire);
        (0..n)
            .map(|i| {
                let slot = &self.slots[i];
                let (kind, id, epoch) = Event::unpack_meta(slot.meta.load(Ordering::Relaxed));
                Event {
                    rank: self.rank,
                    thread: self.thread,
                    kind,
                    id,
                    epoch,
                    wall_ns: slot.wall.load(Ordering::Relaxed),
                    logical: slot.logical.load(Ordering::Relaxed),
                    value: slot.value.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Running wall nanoseconds spent in `span`.
    pub fn span_ns(&self, span: SpanId) -> u64 {
        self.span_ns[span.index()].load(Ordering::Relaxed)
    }

    /// Running logical ticks spent in `span`.
    pub fn span_ticks(&self, span: SpanId) -> u64 {
        self.span_ticks[span.index()].load(Ordering::Relaxed)
    }

    /// Completed spans of this identity.
    pub fn span_count(&self, span: SpanId) -> u64 {
        self.span_count[span.index()].load(Ordering::Relaxed)
    }

    /// Running counter total.
    pub fn counter(&self, c: CounterId) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }
}

/// An in-progress span; close it with [`EventWriter::end`].
#[derive(Debug, Clone, Copy)]
#[must_use = "an open span records nothing until EventWriter::end is called"]
pub struct OpenSpan {
    id: SpanId,
    start_wall: u64,
    start_logical: u64,
}

/// The writing half of a [`ThreadRecorder`]: a cheap, cloneable handle.
///
/// **Single-writer discipline:** all clones of one writer must stay on the
/// thread that obtained it from [`crate::Telemetry::writer`] — clones exist
/// so the owning thread can hand one to its mpisim communicator while
/// keeping one for itself. The recorder itself is wait-free either way; the
/// discipline is what makes the append cursor race-free.
#[derive(Clone)]
pub struct EventWriter {
    rec: Arc<ThreadRecorder>,
    clock: Arc<Clock>,
    /// Whether events are buffered (false = totals only).
    buffered: bool,
}

impl EventWriter {
    pub(crate) fn new(rec: Arc<ThreadRecorder>, clock: Arc<Clock>) -> Self {
        let buffered = !rec.slots.is_empty();
        EventWriter { rec, clock, buffered }
    }

    /// The underlying recorder (reader-side accessors).
    pub fn recorder(&self) -> &ThreadRecorder {
        &self.rec
    }

    /// Sets the epoch stamped into subsequent events.
    pub fn set_epoch(&self, epoch: u32) {
        self.rec.epoch.store(epoch, Ordering::Relaxed);
    }

    /// Advances the logical clock by `n` ticks.
    pub fn tick(&self, n: u64) {
        // Relaxed load/store: single-writer counter.
        let l = self.rec.logical.load(Ordering::Relaxed);
        self.rec.logical.store(l + n, Ordering::Relaxed);
    }

    /// Current logical-clock reading.
    pub fn logical(&self) -> u64 {
        self.rec.logical.load(Ordering::Relaxed)
    }

    /// Opens a span of identity `id`.
    pub fn begin(&self, id: SpanId) -> OpenSpan {
        OpenSpan { id, start_wall: self.clock.now_ns(), start_logical: self.logical() }
    }

    /// Closes `span`, recording one span event and updating the totals.
    ///
    /// The recorded duration (`Event::value`) is wall nanoseconds, or
    /// logical ticks when the run clock is deterministic (chaos runs embed
    /// no timing entropy — DESIGN.md §9).
    pub fn end(&self, span: OpenSpan) {
        let i = span.id.index();
        let wall_dur = self.clock.now_ns().saturating_sub(span.start_wall);
        let tick_dur = self.logical().saturating_sub(span.start_logical);
        self.rec.span_ns[i].fetch_add(wall_dur, Ordering::Relaxed);
        self.rec.span_ticks[i].fetch_add(tick_dur, Ordering::Relaxed);
        self.rec.span_count[i].fetch_add(1, Ordering::Relaxed);
        if self.buffered {
            let value = if self.clock.is_deterministic() { tick_dur } else { wall_dur };
            self.rec.append(
                EventKind::Span,
                span.id as u8,
                span.start_wall,
                span.start_logical,
                value,
            );
        }
    }

    /// Adds `delta` to counter `c` (totals only; no buffered event).
    pub fn count(&self, c: CounterId, delta: u64) {
        self.rec.counters[c.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds `delta` to counter `c` and records a counter event (for
    /// trace-viewer counter tracks).
    pub fn count_event(&self, c: CounterId, delta: u64) {
        self.count(c, delta);
        if self.buffered {
            self.rec.append(EventKind::Count, c as u8, self.clock.now_ns(), self.logical(), delta);
        }
    }

    /// Records an instantaneous marker.
    pub fn mark(&self, m: MarkId, value: u64) {
        if self.buffered {
            self.rec.append(EventKind::Mark, m as u8, self.clock.now_ns(), self.logical(), value);
        }
    }

    /// Whether events are buffered (false = stats-only mode).
    pub fn is_buffered(&self) -> bool {
        self.buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer(capacity: usize) -> EventWriter {
        EventWriter::new(Arc::new(ThreadRecorder::new(1, 2, capacity)), Arc::new(Clock::wall()))
    }

    #[test]
    fn spans_accumulate_totals_and_events() {
        let w = writer(8);
        w.set_epoch(3);
        let s = w.begin(SpanId::Reduce);
        w.tick(5);
        w.end(s);
        assert_eq!(w.recorder().span_count(SpanId::Reduce), 1);
        assert_eq!(w.recorder().span_ticks(SpanId::Reduce), 5);
        let ev = w.recorder().snapshot();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, EventKind::Span);
        assert_eq!(ev[0].id, SpanId::Reduce as u8);
        assert_eq!(ev[0].epoch, 3);
        assert_eq!(ev[0].rank, 1);
        assert_eq!(ev[0].thread, 2);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let w = writer(2);
        for _ in 0..5 {
            w.mark(MarkId::CollectiveStart, 7);
        }
        assert_eq!(w.recorder().snapshot().len(), 2);
        assert_eq!(w.recorder().dropped_events(), 3);
    }

    #[test]
    fn unbuffered_mode_keeps_totals_only() {
        let w = writer(0);
        assert!(!w.is_buffered());
        let s = w.begin(SpanId::Check);
        w.end(s);
        w.count_event(CounterId::Samples, 10);
        w.mark(MarkId::P2pDeliver, 1);
        assert!(w.recorder().snapshot().is_empty());
        assert_eq!(w.recorder().dropped_events(), 0);
        assert_eq!(w.recorder().span_count(SpanId::Check), 1);
        assert_eq!(w.recorder().counter(CounterId::Samples), 10);
    }

    #[test]
    fn deterministic_clock_records_tick_durations() {
        let w = EventWriter::new(
            Arc::new(ThreadRecorder::new(0, 0, 4)),
            Arc::new(Clock::deterministic()),
        );
        let s = w.begin(SpanId::IreduceWait);
        w.tick(9);
        w.end(s);
        let ev = w.recorder().snapshot();
        assert_eq!(ev[0].value, 9);
        assert_eq!(ev[0].wall_ns, 0);
    }
}
