//! Aggregated phase metrics: the sink behind the paper's phase-breakdown
//! tables (Fig. 2b / Table II) and the `BENCH_*.json` derived figures.

use crate::event::{CounterId, Event, EventKind, SpanId, N_COUNTERS, N_SPANS};
use crate::recorder::ThreadRecorder;
use std::fmt;

/// Phase metrics aggregated over every `(rank, thread)` recorder (or over a
/// raw event log, for the cluster DES's virtual-time traces).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Per-span total durations, in the run's time base (wall nanoseconds,
    /// or logical ticks / DES virtual nanoseconds for deterministic runs).
    pub span_ns: [u64; N_SPANS],
    /// Per-span logical-tick totals (always maintained).
    pub span_ticks: [u64; N_SPANS],
    /// Per-span completion counts.
    pub span_count: [u64; N_SPANS],
    /// Counter totals.
    pub counters: [u64; N_COUNTERS],
    /// Distinct `(rank, thread)` identities that contributed.
    pub producers: usize,
    /// Events dropped by full buffers (0 in stats-only mode).
    pub dropped_events: u64,
}

impl Summary {
    /// Aggregates the running totals of a set of recorders.
    pub fn from_recorders<'a>(recs: impl IntoIterator<Item = &'a ThreadRecorder>) -> Self {
        let mut s = Summary::default();
        for r in recs {
            s.producers += 1;
            s.dropped_events += r.dropped_events();
            for span in SpanId::ALL {
                s.span_ns[span.index()] += r.span_ns(*span);
                s.span_ticks[span.index()] += r.span_ticks(*span);
                s.span_count[span.index()] += r.span_count(*span);
            }
            for c in CounterId::ALL {
                s.counters[c.index()] += r.counter(*c);
            }
        }
        s
    }

    /// Aggregates a raw event log (e.g. the cluster DES's virtual-time
    /// trace, where `Event::value` for spans is virtual nanoseconds).
    pub fn from_events(events: &[Event]) -> Self {
        let mut s = Summary::default();
        let mut ids: Vec<(u32, u32)> = Vec::new();
        for e in events {
            if !ids.contains(&(e.rank, e.thread)) {
                ids.push((e.rank, e.thread));
            }
            match e.kind {
                EventKind::Span => {
                    if let Some(span) = SpanId::from_code(e.id) {
                        s.span_ns[span.index()] += e.value;
                        s.span_count[span.index()] += 1;
                    }
                }
                EventKind::Count => {
                    if let Some(c) = CounterId::from_code(e.id) {
                        s.counters[c.index()] += e.value;
                    }
                }
                EventKind::Mark => {}
            }
        }
        s.producers = ids.len();
        s
    }

    /// Total duration recorded for `span`, in the run's time base.
    pub fn span_total(&self, span: SpanId) -> u64 {
        self.span_ns[span.index()]
    }

    /// Completions recorded for `span`.
    pub fn span_completions(&self, span: SpanId) -> u64 {
        self.span_count[span.index()]
    }

    /// A counter's total.
    pub fn counter(&self, c: CounterId) -> u64 {
        self.counters[c.index()]
    }

    /// Time spent in waits that overlap useful sampling work (the paper's
    /// Section IV-F non-blocking collectives), in the run's time base.
    pub fn overlapped_wait(&self) -> u64 {
        self.span_total(SpanId::IreduceWait)
            + self.span_total(SpanId::IbarrierWait)
            + self.span_total(SpanId::BcastStop)
            + self.span_total(SpanId::TransitionWait)
    }

    /// Time spent in blocking communication/aggregation.
    pub fn blocking_comm(&self) -> u64 {
        self.span_total(SpanId::Reduce) + self.span_total(SpanId::FrameAggregate)
    }

    /// Fraction of reduction/synchronization time that was overlapped with
    /// sampling, in `[0, 1]`. Falls back to logical ticks when the wall
    /// totals are zero (deterministic runs).
    pub fn reduction_overlap(&self) -> f64 {
        let (ov, bl) = if self.overlapped_wait() + self.blocking_comm() > 0 {
            (self.overlapped_wait(), self.blocking_comm())
        } else {
            let tick = |s: SpanId| self.span_ticks[s.index()];
            (
                tick(SpanId::IreduceWait)
                    + tick(SpanId::IbarrierWait)
                    + tick(SpanId::BcastStop)
                    + tick(SpanId::TransitionWait),
                tick(SpanId::Reduce) + tick(SpanId::FrameAggregate),
            )
        };
        if ov + bl == 0 {
            return 0.0;
        }
        let f = ov as f64 / (ov + bl) as f64;
        f.clamp(0.0, 1.0)
    }

    /// Whether any span or counter recorded anything.
    pub fn is_empty(&self) -> bool {
        self.span_count.iter().all(|&c| c == 0) && self.counters.iter().all(|&c| c == 0)
    }

    /// The phase-breakdown table as rows of
    /// `(name, total_duration, completions)`, skipping empty rows.
    pub fn table(&self) -> Vec<(&'static str, u64, u64)> {
        SpanId::ALL
            .iter()
            .filter(|s| self.span_count[s.index()] > 0)
            .map(|s| (s.name(), self.span_ns[s.index()], self.span_count[s.index()]))
            .collect()
    }
}

fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for Summary {
    /// Renders the phase-breakdown table (the shape of the paper's Fig. 2b)
    /// plus counters — the `--metrics` output and the `ChaosReport` phase
    /// section.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>14} {:>14} {:>10}", "phase", "total", "ticks", "count")?;
        for span in SpanId::ALL {
            let i = span.index();
            if self.span_count[i] == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<20} {:>14} {:>14} {:>10}",
                span.name(),
                fmt_dur(self.span_ns[i]),
                self.span_ticks[i],
                self.span_count[i],
            )?;
        }
        for c in CounterId::ALL {
            if self.counters[c.index()] == 0 {
                continue;
            }
            writeln!(f, "{:<20} {:>40}", c.name(), self.counters[c.index()])?;
        }
        write!(f, "reduction_overlap    {:>40.4}", self.reduction_overlap())?;
        if self.dropped_events > 0 {
            write!(f, "\ndropped_events       {:>40}", self.dropped_events)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn span_event(rank: u32, id: SpanId, value: u64) -> Event {
        Event {
            rank,
            thread: 0,
            kind: EventKind::Span,
            id: id as u8,
            epoch: 0,
            wall_ns: 0,
            logical: 0,
            value,
        }
    }

    #[test]
    fn from_events_aggregates_and_counts_producers() {
        let events = vec![
            span_event(0, SpanId::Reduce, 100),
            span_event(1, SpanId::Reduce, 50),
            span_event(0, SpanId::IreduceWait, 300),
            Event {
                rank: 0,
                thread: 0,
                kind: EventKind::Count,
                id: CounterId::Samples as u8,
                epoch: 0,
                wall_ns: 0,
                logical: 0,
                value: 42,
            },
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.producers, 2);
        assert_eq!(s.span_total(SpanId::Reduce), 150);
        assert_eq!(s.span_completions(SpanId::Reduce), 2);
        assert_eq!(s.counter(CounterId::Samples), 42);
        let f = s.reduction_overlap();
        assert!((f - 300.0 / 450.0).abs() < 1e-12);
        assert!(!s.is_empty());
        assert_eq!(s.table().len(), 2);
    }

    #[test]
    fn overlap_falls_back_to_ticks_when_walls_are_zero() {
        let mut s = Summary::default();
        s.span_ticks[SpanId::IreduceWait.index()] = 30;
        s.span_ticks[SpanId::Reduce.index()] = 10;
        s.span_count[SpanId::Reduce.index()] = 1;
        assert!((s.reduction_overlap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::default();
        assert!(s.is_empty());
        assert_eq!(s.reduction_overlap(), 0.0);
        assert!(s.table().is_empty());
        let _ = s.to_string();
    }

    #[test]
    fn display_renders_rows() {
        let s = Summary::from_events(&[span_event(0, SpanId::Check, 2_500_000)]);
        let text = s.to_string();
        assert!(text.contains("check"));
        assert!(text.contains("2.500ms"));
        assert!(text.contains("reduction_overlap"));
    }
}
