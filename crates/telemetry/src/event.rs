//! The event model: one fixed-size record type shared by every producer
//! (the wait-free per-thread recorders, the mpisim engine hooks, and the
//! cluster DES's virtual-time log) and every sink (Chrome trace export,
//! phase summary, benchmark artifacts).

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `wall_ns`/`logical` are the start, `value` is the
    /// duration in nanoseconds.
    Span,
    /// An instantaneous marker: `value` is an id-specific payload (e.g. the
    /// collective sequence number).
    Mark,
    /// A counter increment: `value` is the delta.
    Count,
}

impl EventKind {
    pub(crate) fn code(self) -> u64 {
        match self {
            EventKind::Span => 0,
            EventKind::Mark => 1,
            EventKind::Count => 2,
        }
    }

    pub(crate) fn from_code(c: u64) -> Self {
        match c {
            0 => EventKind::Span,
            1 => EventKind::Mark,
            _ => EventKind::Count,
        }
    }
}

/// Macro defining an id enum with stable `u8` codes, a `name()` table (the
/// strings appearing in traces and artifacts — part of the schema, see
/// DESIGN.md §9), an exhaustive `ALL` array, and a lossy decoder.
macro_rules! id_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident = ($code:expr, $str:expr),)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum $name {
            $($(#[$vmeta])* $variant = $code,)+
        }

        impl $name {
            /// Every variant, in code order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Stable schema name of this id.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $str,)+
                }
            }

            /// Decodes a `u8` code; unknown codes map to `None`.
            pub fn from_code(c: u8) -> Option<Self> {
                match c {
                    $($code => Some($name::$variant),)+
                    _ => None,
                }
            }

            /// Dense index of this id within [`Self::ALL`].
            pub fn index(self) -> usize {
                self as usize
            }
        }
    };
}

id_enum! {
    /// Span identities — the phases and sub-phases of the paper's three-phase
    /// pipeline (Section III-A) plus the adaptive-sampling internals broken
    /// out in Fig. 2b / Table II.
    SpanId {
        /// Phase 1: sequential diameter computation.
        Diameter = (0, "diameter"),
        /// Phase 2: calibration sampling + δ fit.
        Calibration = (1, "calibration"),
        /// Phase 3 as a whole.
        AdaptiveSampling = (2, "adaptive_sampling"),
        /// One n0-sample batch taken by the coordinating thread.
        SampleBatch = (3, "sample_batch"),
        /// In-process aggregation of an epoch's per-thread state frames.
        FrameAggregate = (4, "frame_aggregate"),
        /// Overlapped wait on a non-blocking reduction (samples continue).
        IreduceWait = (5, "ireduce_wait"),
        /// Blocking reduction (the paper's Section IV-F leader reduce).
        Reduce = (6, "reduce"),
        /// Overlapped wait inside `MPI_Ibarrier`.
        IbarrierWait = (7, "ibarrier_wait"),
        /// Stopping-condition evaluation at the root.
        Check = (8, "check"),
        /// Overlapped wait on the termination-flag broadcast.
        BcastStop = (9, "bcast_stop"),
        /// Overlapped wait for an epoch transition to complete.
        TransitionWait = (10, "transition_wait"),
        /// Shrink-and-continue recovery after a rank failure: communicator
        /// shrink plus the ledger all-reduce rebuilding the global state.
        Recovery = (11, "recovery"),
        /// One served query (estimate / top-k / vertex) in `kadabra-server`,
        /// admission to reply (DESIGN.md §13).
        Query = (12, "query"),
        /// One accuracy-on-deadline refinement request in `kadabra-server`.
        Refine = (13, "refine"),
        /// One estimate-cache publication (frontier flip or stage freeze)
        /// by the server's sampler pool.
        CachePublish = (14, "cache_publish"),
        /// One streaming update batch applied to a dynamic tenant: delta-log
        /// append, overlay apply, revalidation, and the ledger all-reduce.
        Update = (15, "update"),
        /// The affected-pair sweep inside an update: endpoint BFS distance
        /// tables plus per-sample classification and redraw.
        Invalidate = (16, "invalidate"),
        /// Elastic rebalance after a communicator grow: the round handoff
        /// broadcast plus the ledger all-reduce bootstrapping newcomers.
        Rebalance = (17, "rebalance"),
    }
}

/// Number of distinct [`SpanId`]s (arrays in the recorder are this long).
pub const N_SPANS: usize = 18;

id_enum! {
    /// Counter identities.
    CounterId {
        /// Samples taken (calibration + adaptive, all threads).
        Samples = (0, "samples"),
        /// Epochs advanced / stopping-condition rounds completed.
        Epochs = (1, "epochs"),
        /// Payload bytes contributed to reductions.
        BytesReduced = (2, "bytes_reduced"),
        /// `test()` polls of non-blocking requests that returned `false`
        /// (each one is one overlapped unit of work).
        OverlapPolls = (3, "overlap_polls"),
        /// Collective operations joined.
        Collectives = (4, "collectives"),
        /// Point-to-point messages delivered.
        P2pDelivered = (5, "p2p_delivered"),
        /// Ranks declared dead and excluded by a communicator shrink.
        RanksLost = (6, "ranks_lost"),
        /// Queries answered by `kadabra-server` (estimate, top-k, vertex,
        /// refine — anything that produced a reply).
        QueriesServed = (7, "queries_served"),
        /// Queries load-shed by admission control (in-flight or queue cap).
        QueriesShed = (8, "queries_shed"),
        /// Edge insertions + deletions applied through the delta log.
        EdgesApplied = (9, "edges_applied"),
        /// Retained samples classified as invalidated by an update batch
        /// (and therefore redrawn on the new graph).
        SamplesInvalidated = (10, "samples_invalidated"),
        /// Retained samples whose shortest-path sets provably survived an
        /// update batch (kept without redrawing).
        SamplesRetained = (11, "samples_retained"),
        /// Standby ranks admitted by a communicator grow.
        RanksJoined = (12, "ranks_joined"),
        /// Sample sub-ranges claimed from plan-marked stragglers by the
        /// cross-rank steal protocol.
        SamplesStolen = (13, "samples_stolen"),
        /// Rounds executed by the batched sampling kernel (each round
        /// advances every alive lane by one BFS level).
        KernelRounds = (14, "kernel_rounds"),
        /// Σ over batched-kernel rounds of alive lanes;
        /// `kernel_lane_rounds / kernel_rounds` is the mean batch occupancy
        /// (how many searches actually share each row sweep).
        KernelLaneRounds = (15, "kernel_lane_rounds"),
    }
}

/// Number of distinct [`CounterId`]s.
pub const N_COUNTERS: usize = 16;

id_enum! {
    /// Instantaneous-marker identities (mpisim engine events).
    MarkId {
        /// A rank joined a collective; `value` is the operation sequence
        /// number within its communicator.
        CollectiveStart = (0, "collective_start"),
        /// A rank observed completion of a collective; `value` is the
        /// operation sequence number.
        CollectiveComplete = (1, "collective_complete"),
        /// A point-to-point message was delivered; `value` packs
        /// `src << 32 | delivery slot`.
        P2pDeliver = (2, "p2p_deliver"),
    }
}

/// One telemetry record. See [`EventKind`] for field semantics per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// MPI rank (or simulated process) that produced the event.
    pub rank: u32,
    /// Thread within the rank.
    pub thread: u32,
    /// Record kind.
    pub kind: EventKind,
    /// Id code; decode with [`SpanId::from_code`] / [`CounterId::from_code`]
    /// / [`MarkId::from_code`] according to `kind`.
    pub id: u8,
    /// Epoch the producer was in when the event was recorded.
    pub epoch: u32,
    /// Wall-clock nanoseconds since the run origin (0 in deterministic
    /// mode — see [`crate::clock::Clock`]).
    pub wall_ns: u64,
    /// Logical-clock reading at the event (ticks of the producer's
    /// deterministic clock: overlapped polls, rounds, DES virtual time).
    pub logical: u64,
    /// Kind-specific payload (span duration ns / counter delta / marker
    /// payload).
    pub value: u64,
}

impl Event {
    /// Human-readable name of the event's id, according to its kind.
    pub fn name(&self) -> &'static str {
        match self.kind {
            EventKind::Span => SpanId::from_code(self.id).map_or("span?", SpanId::name),
            EventKind::Mark => MarkId::from_code(self.id).map_or("mark?", MarkId::name),
            EventKind::Count => CounterId::from_code(self.id).map_or("count?", CounterId::name),
        }
    }

    /// Packs kind/id/epoch into the single `meta` word the wait-free slots
    /// store.
    pub(crate) fn pack_meta(kind: EventKind, id: u8, epoch: u32) -> u64 {
        kind.code() | (u64::from(id) << 8) | (u64::from(epoch) << 32)
    }

    /// Inverse of [`Event::pack_meta`].
    pub(crate) fn unpack_meta(meta: u64) -> (EventKind, u8, u32) {
        (EventKind::from_code(meta & 0xff), ((meta >> 8) & 0xff) as u8, (meta >> 32) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        for kind in [EventKind::Span, EventKind::Mark, EventKind::Count] {
            for id in [0u8, 3, 10, 255] {
                for epoch in [0u32, 1, u32::MAX] {
                    let m = Event::pack_meta(kind, id, epoch);
                    assert_eq!(Event::unpack_meta(m), (kind, id, epoch));
                }
            }
        }
    }

    #[test]
    fn id_tables_are_consistent() {
        assert_eq!(SpanId::ALL.len(), N_SPANS);
        assert_eq!(CounterId::ALL.len(), N_COUNTERS);
        for (i, s) in SpanId::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(SpanId::from_code(i as u8), Some(*s));
        }
        for (i, c) in CounterId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CounterId::from_code(i as u8), Some(*c));
        }
        assert_eq!(SpanId::SampleBatch.name(), "sample_batch");
        assert_eq!(SpanId::from_code(200), None);
    }
}
