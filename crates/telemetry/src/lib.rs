//! Wait-free telemetry for the kadabra workspace: per-rank/per-thread
//! tracing, phase metrics, Chrome-trace export, and machine-readable
//! benchmark artifacts (DESIGN.md §9).
//!
//! # Architecture
//!
//! A [`Telemetry`] registry hands each `(rank, thread)` an [`EventWriter`]
//! over its own single-writer, wait-free append buffer
//! ([`recorder::ThreadRecorder`]): recording a span, marker, or counter is a
//! few uncontended atomic stores, never a lock or a CAS loop, so
//! instrumentation cannot perturb the epoch framework's wait-free sampling
//! guarantees. The buffers live behind the crate's `sync.rs` atomic
//! indirection, so `cargo xtask loom` model-checks the publication protocol
//! (`tests/loom.rs`).
//!
//! Every event carries **both clocks** ([`clock::Clock`]): wall nanoseconds
//! for real profiles, and the producer's deterministic logical clock so
//! chaos runs under a `FaultPlan` stay bit-reproducible — in deterministic
//! mode wall readings are 0 and sinks use the logical base.
//!
//! Three sinks consume the one [`event::Event`] record type:
//!
//! * [`chrome::write_trace`] — Chrome trace-event JSON (`kadabra --trace`),
//!   loadable in Perfetto;
//! * [`summary::Summary`] — the phase-breakdown table (Fig. 2b / Table II
//!   shapes) and the `reduction_overlap` figure;
//! * [`bench::BenchArtifact`] — `BENCH_<name>.json` artifacts with a stable,
//!   validated schema (`cargo xtask bench --smoke`).

#![forbid(unsafe_code)]

pub mod bench;
pub mod chrome;
pub mod clock;
pub mod event;
pub mod json;
pub mod recorder;
pub mod summary;
mod sync;

pub use bench::{validate_json, BenchArtifact, BenchRun, BENCH_SCHEMA};
pub use chrome::{write_trace, TimeBase};
pub use clock::{Clock, Stopwatch};
pub use event::{CounterId, Event, EventKind, MarkId, SpanId};
pub use recorder::{EventWriter, OpenSpan, ThreadRecorder};
pub use summary::Summary;

use parking_lot::Mutex;
use std::sync::Arc;

/// Default per-thread event-buffer capacity in tracing mode (events are 32
/// bytes, so this is 2 MiB per thread).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The run-scoped telemetry registry.
///
/// Construct one per run ([`Telemetry::stats_only`] / [`Telemetry::tracing`]
/// / [`Telemetry::deterministic`]), hand each `(rank, thread)` a writer with
/// [`Telemetry::writer`], and read the results back with
/// [`Telemetry::summary`] / [`Telemetry::events`] once the run is done.
pub struct Telemetry {
    clock: Arc<Clock>,
    capacity: usize,
    recorders: Mutex<Vec<Arc<ThreadRecorder>>>,
}

impl Telemetry {
    fn with(clock: Clock, capacity: usize) -> Self {
        Telemetry { clock: Arc::new(clock), capacity, recorders: Mutex::new(Vec::new()) }
    }

    /// Totals-only mode: no event buffering (capacity 0), wall clock on.
    /// This is what the plain driver entry points use — phase statistics
    /// come out of telemetry with zero buffer memory.
    pub fn stats_only() -> Self {
        Self::with(Clock::wall(), 0)
    }

    /// Full tracing with the default per-thread buffer capacity.
    pub fn tracing() -> Self {
        Self::with(Clock::wall(), DEFAULT_TRACE_CAPACITY)
    }

    /// Full tracing with an explicit per-thread buffer capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with(Clock::wall(), capacity)
    }

    /// Deterministic mode for chaos runs: wall readings are 0, events carry
    /// only the logical clock, artifacts are a pure function of
    /// `(plan, seed)`.
    pub fn deterministic(capacity: usize) -> Self {
        Self::with(Clock::deterministic(), capacity)
    }

    /// Registers and returns the writer for one `(rank, thread)`.
    ///
    /// Must be called (or the returned writer used) only from that thread —
    /// the recorder is single-writer by contract (clones of the writer are
    /// for handing to same-thread collaborators like an mpisim
    /// communicator).
    pub fn writer(&self, rank: u32, thread: u32) -> EventWriter {
        let rec = Arc::new(ThreadRecorder::new(rank, thread, self.capacity));
        self.recorders.lock().push(Arc::clone(&rec));
        EventWriter::new(rec, Arc::clone(&self.clock))
    }

    /// Whether wall readings are suppressed.
    pub fn is_deterministic(&self) -> bool {
        self.clock.is_deterministic()
    }

    /// The trace time base matching this run's clock mode.
    pub fn time_base(&self) -> TimeBase {
        if self.is_deterministic() {
            TimeBase::Logical
        } else {
            TimeBase::Wall
        }
    }

    /// All published events, ordered by `(rank, thread)` and then append
    /// order — deterministic for a deterministic run.
    pub fn events(&self) -> Vec<Event> {
        let mut recs: Vec<Arc<ThreadRecorder>> =
            self.recorders.lock().iter().map(Arc::clone).collect();
        recs.sort_by_key(|r| (r.rank(), r.thread()));
        recs.iter().flat_map(|r| r.snapshot()).collect()
    }

    /// Aggregated phase metrics over every registered recorder.
    pub fn summary(&self) -> Summary {
        let recs = self.recorders.lock();
        Summary::from_recorders(recs.iter().map(Arc::as_ref))
    }

    /// Events dropped across all recorders (buffers full).
    pub fn dropped_events(&self) -> u64 {
        self.recorders.lock().iter().map(|r| r.dropped_events()).sum()
    }
}

/// A plain event log for producers that are already single-threaded and
/// virtual-timed — the cluster DES. Spans carry virtual nanoseconds on the
/// logical clock (wall is 0), satisfying the one-schema rule: the same
/// sinks consume DES traces and real traces.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed span of `dur_ns` virtual nanoseconds starting at
    /// virtual time `start_ns`.
    pub fn span(
        &mut self,
        rank: u32,
        thread: u32,
        id: SpanId,
        epoch: u32,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.events.push(Event {
            rank,
            thread,
            kind: EventKind::Span,
            id: id as u8,
            epoch,
            wall_ns: 0,
            logical: start_ns,
            value: dur_ns,
        });
    }

    /// Records an instantaneous marker at virtual time `at_ns`.
    pub fn mark(&mut self, rank: u32, thread: u32, id: MarkId, epoch: u32, at_ns: u64, value: u64) {
        self.events.push(Event {
            rank,
            thread,
            kind: EventKind::Mark,
            id: id as u8,
            epoch,
            wall_ns: 0,
            logical: at_ns,
            value,
        });
    }

    /// Records a counter delta at virtual time `at_ns`.
    pub fn count(
        &mut self,
        rank: u32,
        thread: u32,
        id: CounterId,
        epoch: u32,
        at_ns: u64,
        delta: u64,
    ) {
        self.events.push(Event {
            rank,
            thread,
            kind: EventKind::Count,
            id: id as u8,
            epoch,
            wall_ns: 0,
            logical: at_ns,
            value: delta,
        });
    }

    /// The recorded events, in insertion (virtual-time) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Aggregates the log into phase metrics (virtual nanoseconds).
    pub fn summary(&self) -> Summary {
        Summary::from_events(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_collects_across_writers() {
        let t = Telemetry::with_capacity(16);
        let w0 = t.writer(0, 0);
        let w1 = t.writer(1, 0);
        let s = w0.begin(SpanId::Reduce);
        w0.end(s);
        w1.count_event(CounterId::Samples, 5);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].rank, 0);
        assert_eq!(events[1].rank, 1);
        let sum = t.summary();
        assert_eq!(sum.producers, 2);
        assert_eq!(sum.span_completions(SpanId::Reduce), 1);
        assert_eq!(sum.counter(CounterId::Samples), 5);
        assert_eq!(t.dropped_events(), 0);
        assert_eq!(t.time_base(), TimeBase::Wall);
    }

    #[test]
    fn stats_only_has_no_events_but_full_summary() {
        let t = Telemetry::stats_only();
        let w = t.writer(0, 0);
        let s = w.begin(SpanId::Check);
        w.end(s);
        assert!(t.events().is_empty());
        assert_eq!(t.summary().span_completions(SpanId::Check), 1);
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn deterministic_mode_zeroes_walls() {
        let t = Telemetry::deterministic(8);
        assert!(t.is_deterministic());
        assert_eq!(t.time_base(), TimeBase::Logical);
        let w = t.writer(0, 0);
        w.tick(3);
        w.mark(MarkId::CollectiveStart, 1);
        let events = t.events();
        assert_eq!(events[0].wall_ns, 0);
        assert_eq!(events[0].logical, 3);
    }

    #[test]
    fn event_log_summarizes_virtual_time() {
        let mut log = EventLog::new();
        log.span(0, 0, SpanId::IreduceWait, 1, 100, 900);
        log.span(0, 0, SpanId::Reduce, 1, 1_000, 100);
        log.count(0, 0, CounterId::Samples, 1, 1_100, 64);
        let s = log.summary();
        assert_eq!(s.span_total(SpanId::IreduceWait), 900);
        assert_eq!(s.counter(CounterId::Samples), 64);
        assert!((s.reduction_overlap() - 0.9).abs() < 1e-12);
        assert_eq!(log.events().len(), 3);
    }
}
