//! Fixture-corpus conformance suite.
//!
//! Every pass ships three fixtures under `tests/fixtures/<pass>/`:
//!
//! - `bad.rs` — must trip the pass, on exactly the lines carrying a
//!   `//~ <pass>` marker (checked with precise line numbers, so span
//!   regressions fail here, not in production sweeps);
//! - `good.rs` — the sanctioned idiom for the same operation; must produce
//!   zero findings of the pass;
//! - `waived.rs` — the violation plus an inline `xtask: allow(...)` waiver;
//!   findings must still be *recorded* but marked waived (never active).
//!
//! Fixtures are plain source text fed through [`Workspace::from_sources`]
//! under pass-appropriate virtual paths (scoped passes only fire inside
//! certain crates); they are never compiled, and the real workspace scan
//! skips `fixtures` directories.

use std::fs;
use std::path::PathBuf;

use kadabra_lint::report::{validate_report, Baseline, Report};
use kadabra_lint::{passes, Pass, Workspace};

/// Pass slug → virtual workspace path for its fixtures, plus whether the
/// fixture workspace needs the shared communicator-API file (whose `pub fn
/// … -> Result<_, CommError>` signatures feed the call-site harvests).
const CASES: &[(&str, &str, bool)] = &[
    ("seqcst", "crates/demo/src/lib.rs", false),
    ("direct-atomics", "crates/demo/src/lib.rs", false),
    ("nondeterminism", "crates/mpisim/src/fixture.rs", false),
    ("unwrap", "crates/demo/src/lib.rs", false),
    ("wallclock", "crates/core/src/fixture.rs", false),
    ("comm-panic", "crates/mpisim/src/fixture.rs", false),
    ("comm-error-flow", "crates/core/src/fixture.rs", true),
    ("atomic-protocol", "crates/demo/src/lib.rs", false),
    ("determinism", "crates/core/src/fixture.rs", false),
    ("hot-loop-hygiene", "crates/core/src/fixture.rs", true),
    ("delta-confinement", "crates/server/src/fixture.rs", false),
];

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Runs the full registry over one fixture and returns the report plus the
/// fixture's source text (for marker extraction).
fn run_case(pass: &str, rel: &str, needs_api: bool, which: &str) -> (Report, String) {
    let path = fixtures_root().join(pass).join(format!("{which}.rs"));
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let api_text;
    let mut sources: Vec<(&str, &str)> = vec![(rel, text.as_str())];
    if needs_api {
        api_text = fs::read_to_string(fixtures_root().join("comm_api.rs")).unwrap();
        sources.push(("crates/mpisim/src/comm.rs", api_text.as_str()));
    }
    let ws = Workspace::from_sources(&sources);
    let all = passes::all();
    let refs: Vec<&dyn Pass> = all.iter().map(AsRef::as_ref).collect();
    (ws.run(&refs, &Baseline::empty()), text)
}

/// 1-based line numbers carrying a `//~ <pass>` expectation marker.
fn marker_lines(src: &str, pass: &str) -> Vec<u32> {
    let tag = format!("//~ {pass}");
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(tag.as_str()))
        .map(|(i, _)| u32::try_from(i).unwrap() + 1)
        .collect()
}

#[test]
fn bad_fixtures_fire_on_exactly_the_marked_lines() {
    for &(pass, rel, needs_api) in CASES {
        let (report, src) = run_case(pass, rel, needs_api, "bad");
        let expected = marker_lines(&src, pass);
        assert!(!expected.is_empty(), "{pass}: bad.rs carries no //~ markers");
        let mut got: Vec<u32> =
            report.active().filter(|f| f.pass == pass && f.file == rel).map(|f| f.line).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got, expected, "{pass}: bad.rs findings landed on the wrong lines");
    }
}

#[test]
fn bad_fixture_excerpts_match_the_flagged_source_line() {
    for &(pass, rel, needs_api) in CASES {
        let (report, src) = run_case(pass, rel, needs_api, "bad");
        for f in report.active().filter(|f| f.pass == pass && f.file == rel) {
            let line = src
                .lines()
                .nth(usize::try_from(f.line).unwrap() - 1)
                .unwrap_or_else(|| panic!("{pass}: finding line {} out of range", f.line));
            assert_eq!(f.excerpt, line.trim(), "{pass}: excerpt drifted from source");
            assert!(f.col >= 1, "{pass}: columns are 1-based");
            assert!(
                usize::try_from(f.col).unwrap() <= line.chars().count(),
                "{pass}: column {} past end of line {}",
                f.col,
                f.line
            );
        }
    }
}

#[test]
fn server_read_path_fixtures_fire_on_exactly_the_marked_lines() {
    // The hot-loop-hygiene pass's third scope: cache read-path bodies under
    // `crates/server/src`. `server_bad.rs` must trip line-exactly; the
    // sanctioned `server_good.rs` (pre-sized reader-owned snapshots) must
    // stay clean.
    let pass = "hot-loop-hygiene";
    let rel = "crates/server/src/cache.rs";
    let (report, src) = run_case(pass, rel, true, "server_bad");
    let expected = marker_lines(&src, pass);
    assert!(!expected.is_empty(), "server_bad.rs carries no //~ markers");
    let mut got: Vec<u32> =
        report.active().filter(|f| f.pass == pass && f.file == rel).map(|f| f.line).collect();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, expected, "server read-path findings landed on the wrong lines");
    for f in report.active().filter(|f| f.pass == pass && f.file == rel) {
        assert!(
            f.message.contains("body of `read_"),
            "finding must name the read-path body it fired in: {}",
            f.message
        );
    }

    let (clean, _) = run_case(pass, rel, true, "server_good");
    let hits: Vec<_> = clean.findings.iter().filter(|f| f.pass == pass).collect();
    assert!(
        hits.is_empty(),
        "server_good.rs produced findings: {:?}",
        hits.iter().map(|f| (f.line, f.message.as_str())).collect::<Vec<_>>()
    );
}

#[test]
fn dynamic_kernel_fixtures_fire_on_exactly_the_marked_lines() {
    // The hot-loop-hygiene pass's fourth scope: the streaming-update
    // apply/invalidate kernel bodies under `crates/dynamic/src`.
    // `dynamic_bad.rs` must trip line-exactly; the sanctioned
    // `dynamic_good.rs` (recycled scratch, in-place edits) must stay clean.
    let pass = "hot-loop-hygiene";
    let rel = "crates/dynamic/src/invalidate.rs";
    let (report, src) = run_case(pass, rel, true, "dynamic_bad");
    let expected = marker_lines(&src, pass);
    assert!(!expected.is_empty(), "dynamic_bad.rs carries no //~ markers");
    let mut got: Vec<u32> =
        report.active().filter(|f| f.pass == pass && f.file == rel).map(|f| f.line).collect();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got, expected, "dynamic kernel findings landed on the wrong lines");
    for f in report.active().filter(|f| f.pass == pass && f.file == rel) {
        assert!(
            f.message.contains("body of `"),
            "finding must name the kernel body it fired in: {}",
            f.message
        );
    }

    let (clean, _) = run_case(pass, rel, true, "dynamic_good");
    let hits: Vec<_> = clean.findings.iter().filter(|f| f.pass == pass).collect();
    assert!(
        hits.is_empty(),
        "dynamic_good.rs produced findings: {:?}",
        hits.iter().map(|f| (f.line, f.message.as_str())).collect::<Vec<_>>()
    );
}

#[test]
fn seqcst_column_points_at_the_ordering_token() {
    let (report, src) = run_case("seqcst", "crates/demo/src/lib.rs", false, "bad");
    let f = report.active().find(|f| f.pass == "seqcst").expect("seqcst fired");
    let line = src.lines().nth(usize::try_from(f.line).unwrap() - 1).unwrap();
    let want = u32::try_from(line.find("SeqCst").unwrap()).unwrap() + 1;
    assert_eq!(f.col, want, "span must anchor on the SeqCst token itself");
}

#[test]
fn good_fixtures_stay_completely_clean() {
    for &(pass, rel, needs_api) in CASES {
        let (report, _) = run_case(pass, rel, needs_api, "good");
        let hits: Vec<_> = report.findings.iter().filter(|f| f.pass == pass).collect();
        assert!(
            hits.is_empty(),
            "{pass}: good.rs produced findings: {:?}",
            hits.iter().map(|f| (f.line, f.message.as_str())).collect::<Vec<_>>()
        );
    }
}

#[test]
fn waived_fixtures_record_but_suppress_every_finding() {
    for &(pass, rel, needs_api) in CASES {
        let (report, _) = run_case(pass, rel, needs_api, "waived");
        let total = report.findings.iter().filter(|f| f.pass == pass && f.file == rel).count();
        let waived =
            report.findings.iter().filter(|f| f.pass == pass && f.file == rel && f.waived).count();
        assert!(total > 0, "{pass}: waived.rs never tripped the pass at all");
        assert_eq!(total, waived, "{pass}: waived.rs has unwaived findings");
        assert_eq!(
            report.active().filter(|f| f.pass == pass).count(),
            0,
            "{pass}: waiver failed to suppress"
        );
    }
}

#[test]
fn baseline_roundtrip_suppresses_accepted_findings() {
    let (report, src) = run_case("seqcst", "crates/demo/src/lib.rs", false, "bad");
    let active_before = report.active().count();
    assert!(active_before > 0);
    let baseline = Baseline::parse(&Baseline::render(&report)).expect("rendered baseline parses");
    assert_eq!(baseline.len(), active_before);

    let ws = Workspace::from_sources(&[("crates/demo/src/lib.rs", src.as_str())]);
    let all = passes::all();
    let refs: Vec<&dyn Pass> = all.iter().map(AsRef::as_ref).collect();
    let rerun = ws.run(&refs, &baseline);
    assert_eq!(rerun.active().count(), 0, "baselined findings must not be active");
    let (_, active, _, baselined) = rerun.counts();
    assert_eq!(active, 0);
    assert_eq!(baselined, active_before);
}

#[test]
fn fixture_reports_satisfy_the_lint_schema() {
    for which in ["bad", "good", "waived"] {
        let (report, _) = run_case("determinism", "crates/core/src/fixture.rs", false, which);
        validate_report(&report.to_json())
            .unwrap_or_else(|e| panic!("determinism/{which}.rs report failed schema: {e}"));
    }
}
