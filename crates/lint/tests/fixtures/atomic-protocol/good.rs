//! atomic-protocol: proper pairings and Relaxed-only counters stay clean.
use crate::sync::{AtomicU64, Ordering};

/// Clean protocol state.
pub struct Clean {
    /// Paired protocol field.
    flag: AtomicU64,
    /// Statistics counter, Relaxed everywhere by design.
    hits: AtomicU64,
}

impl Clean {
    /// Publishes then consumes; bumps a counter.
    pub fn exercise(&self) -> u64 {
        self.flag.store(1, Ordering::Release);
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.flag.load(Ordering::Acquire) + self.hits.load(Ordering::Relaxed)
    }
}
