//! atomic-protocol: an own-thread Relaxed read is suppressed but recorded.
use crate::sync::{AtomicU64, Ordering};

/// Single-writer cursor.
pub struct Cursor {
    /// Published position; written by one thread only.
    pos: AtomicU64,
}

impl Cursor {
    /// Advances the cursor on the writing thread.
    pub fn advance(&self) {
        // xtask: allow(atomic-protocol) — fixture: single-writer read-back on
        // the writing thread; program order suffices.
        let cur = self.pos.load(Ordering::Relaxed);
        self.pos.store(cur + 1, Ordering::Release);
    }

    /// Consumes the position elsewhere.
    pub fn snapshot(&self) -> u64 {
        self.pos.load(Ordering::Acquire)
    }
}
