//! atomic-protocol: unpaired and Relaxed protocol accesses.
use crate::sync::{AtomicU64, Ordering};

/// Protocol state with deliberately broken pairings.
pub struct State {
    /// Paired protocol field (also read Relaxed — the bug).
    ready: AtomicU64,
    /// Release-published, never Acquire-consumed.
    orphan_pub: AtomicU64,
    /// Acquire-consumed, never Release-published.
    orphan_sub: AtomicU64,
}

impl State {
    /// Publishes and consumes.
    pub fn exercise(&self) {
        self.ready.store(1, Ordering::Release);
        let _r = self.ready.load(Ordering::Acquire);
        let _x = self.ready.load(Ordering::Relaxed); //~ atomic-protocol
        self.orphan_pub.store(2, Ordering::Release); //~ atomic-protocol
        let _y = self.orphan_sub.load(Ordering::Acquire); //~ atomic-protocol
    }
}
