//! direct-atomics: a justified direct use is suppressed but recorded.
// xtask: allow(direct-atomics) — fixture: FFI boundary needs the std type.
use std::sync::atomic::AtomicU64;

/// Uses the std type at the boundary.
pub fn make() -> AtomicU64 {
    AtomicU64::new(0)
}
