//! direct-atomics: the sync.rs indirection and test code stay clean.
use crate::sync::AtomicU64;

/// Uses the indirection type.
pub fn make() -> AtomicU64 {
    AtomicU64::new(0)
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicU64 as StdAtomic;

    #[test]
    fn tests_may_use_std_directly() {
        let a = StdAtomic::new(0);
        drop(a);
    }
}
