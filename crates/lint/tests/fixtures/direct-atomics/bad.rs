//! direct-atomics: std atomics bypass the loom `sync.rs` indirection.
use std::sync::atomic::AtomicU64; //~ direct-atomics

/// Uses the directly-imported type.
pub fn make() -> AtomicU64 {
    AtomicU64::new(0)
}
