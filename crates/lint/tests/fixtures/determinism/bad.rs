//! determinism: hash-order iteration, float accumulation, truncating casts.
use std::collections::{HashMap, HashSet};

/// Alias taint propagates through the type alias.
pub type Registry = HashMap<u32, f64>;

/// Field taint is crate-wide.
pub struct Holder {
    /// Tainted member set.
    pub members: HashSet<u32>,
}

/// Exercises every sink shape.
pub fn sinks(holder: &Holder) -> f64 {
    let reg: Registry = Registry::new();
    let mut total = 0.0;
    for (_k, v) in reg { //~ determinism
        total += v;
    }
    let scores: HashMap<u32, f64> = HashMap::new();
    let sum: f64 = scores.values().sum::<f64>(); //~ determinism
    let keyed: Registry = Registry::new();
    let folded = keyed.keys().fold(0.0, |a, &k| a + f64::from(k)); //~ determinism
    for id in holder.members.iter() { //~ determinism
        total += f64::from(*id);
    }
    let count = keyed.len() as u32; //~ determinism
    total + sum + folded + f64::from(count)
}
