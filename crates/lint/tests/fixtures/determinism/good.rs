//! determinism: order-free access, sorted containers, and wide casts stay clean.
use std::collections::{BTreeMap, HashSet};

/// Sorted map iterates in key order; sets used only for membership.
pub fn sorted(map: &BTreeMap<u32, f64>, ids: &[u32]) -> f64 {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut total = 0.0;
    for (_k, v) in map {
        total += v;
    }
    for &x in ids {
        if seen.contains(&x) {
            continue;
        }
        seen.insert(x);
    }
    let n = ids.len() as u64;
    total + n as f64
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_iterate_hashes() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_k, _v) in m {}
    }
}
