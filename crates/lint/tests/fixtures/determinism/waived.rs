//! determinism: waived order-insensitive folds are suppressed but recorded.
use std::collections::HashMap;

/// Order-insensitive count accumulation.
pub fn tally() -> u64 {
    let m: HashMap<u32, u64> = HashMap::new();
    let mut total = 0;
    // xtask: allow(determinism) — fixture: u64 addition is associative and
    // commutative, so the fold result is order-free.
    for (_k, v) in &m {
        total += v;
    }
    // xtask: allow(determinism) — fixture: len is bounded by construction.
    let n = m.len() as u32;
    total + u64::from(n)
}
