//! Fixture stand-in for the communicator API surface the comm-error-flow
//! and hot-loop-hygiene harvests scan (virtual path `crates/mpisim/src/comm.rs`).

/// Typed communicator error.
pub enum CommError {
    /// A rank died mid-collective.
    RankFailed,
}

/// Minimal communicator mirroring the real method shapes.
pub struct Comm;

impl Comm {
    /// Collective barrier.
    pub fn barrier(&self) -> Result<(), CommError> {
        Err(CommError::RankFailed)
    }

    /// Sum all-reduction.
    pub fn allreduce_sum_u64(&self, x: u64) -> Result<u64, CommError> {
        Ok(x)
    }
}
