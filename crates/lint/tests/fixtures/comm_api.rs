//! Fixture stand-in for the communicator API surface the comm-error-flow
//! and hot-loop-hygiene harvests scan (virtual path `crates/mpisim/src/comm.rs`).

/// Typed communicator error.
pub enum CommError {
    /// A rank died mid-collective.
    RankFailed,
}

/// Minimal communicator mirroring the real method shapes.
pub struct Comm;

impl Comm {
    /// Collective barrier.
    pub fn barrier(&self) -> Result<(), CommError> {
        Err(CommError::RankFailed)
    }

    /// Sum all-reduction.
    pub fn allreduce_sum_u64(&self, x: u64) -> Result<u64, CommError> {
        Ok(x)
    }

    /// Standby admission: grows the world by `extra` ranks (the elastic
    /// scale-out entry point; a failure mid-admission is a rank failure).
    pub fn grow(&self, extra: usize) -> Result<usize, CommError> {
        Ok(extra)
    }

    /// Claims a straggler's shed quota on behalf of `helper` (the work-steal
    /// entry point; a failed grant means the straggler died mid-round).
    pub fn steal_grant(&self, helper: usize) -> Result<u64, CommError> {
        Ok(helper as u64)
    }
}
