//! wallclock: raw clock reads in the core library.

/// Times a phase directly instead of through telemetry.
pub fn time_phase() -> u64 {
    let start = std::time::Instant::now(); //~ wallclock
    let _ = start;
    0
}
