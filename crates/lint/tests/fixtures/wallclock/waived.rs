//! wallclock: a justified raw read is suppressed but recorded.

/// One-off startup calibration.
pub fn calibrate() -> u64 {
    // xtask: allow(wallclock) — fixture: startup calibration, not a phase
    // measurement the telemetry layer should own.
    let start = std::time::Instant::now();
    let _ = start;
    0
}
