//! wallclock: telemetry-owned timing stays clean.

/// Times through the telemetry facade.
pub fn time_phase(sw: &kadabra_telemetry::Stopwatch) -> u64 {
    sw.elapsed_ns()
}
