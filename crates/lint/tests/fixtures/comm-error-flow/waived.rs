//! comm-error-flow: waived setup-phase swallows are suppressed but recorded.
use crate::comm::Comm;

/// Setup barrier where failure is fatal anyway.
pub fn setup(comm: &Comm) {
    // xtask: allow(comm-error-flow) — fixture: failure here aborts the run
    // before sampling starts, so there is nothing to recover.
    let _ = comm.barrier();
    comm.barrier().ok(); // xtask: allow(comm-error-flow) — fixture: ditto.
}

/// A best-effort grow probe before the run starts: a refusal just means the
/// world stays at its founding size.
pub fn probe(comm: &Comm) {
    // xtask: allow(comm-error-flow) — fixture: pre-run capacity probe; a
    // failed admission here leaves the founding world intact.
    let _ = comm.grow(1);
}
