//! comm-error-flow: swallowed rank-failure signals.
use crate::comm::Comm;

/// Every swallowing shape the pass distinguishes.
pub fn swallow(comm: &Comm) -> u64 {
    let _ = comm.barrier(); //~ comm-error-flow
    comm.barrier().ok(); //~ comm-error-flow
    comm.barrier(); //~ comm-error-flow
    comm.allreduce_sum_u64(1).unwrap_or_default(); //~ comm-error-flow
    let n = comm.allreduce_sum_u64(2).unwrap_or(0); //~ comm-error-flow
    n
}

/// The elastic entry points carry the same signal and must not swallow it:
/// a failed `grow` leaves the world half-admitted, a failed `steal_grant`
/// means the straggler died mid-round — both are recoverable crashes.
pub fn swallow_elastic(comm: &Comm) -> u64 {
    let _ = comm.grow(2); //~ comm-error-flow
    comm.grow(1).ok(); //~ comm-error-flow
    comm.steal_grant(3).unwrap_or(0) //~ comm-error-flow
}
