//! comm-error-flow: swallowed rank-failure signals.
use crate::comm::Comm;

/// Every swallowing shape the pass distinguishes.
pub fn swallow(comm: &Comm) -> u64 {
    let _ = comm.barrier(); //~ comm-error-flow
    comm.barrier().ok(); //~ comm-error-flow
    comm.barrier(); //~ comm-error-flow
    comm.allreduce_sum_u64(1).unwrap_or_default(); //~ comm-error-flow
    let n = comm.allreduce_sum_u64(2).unwrap_or(0); //~ comm-error-flow
    n
}
