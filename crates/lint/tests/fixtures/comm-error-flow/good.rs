//! comm-error-flow: propagated, matched, and bound results stay clean.
use crate::comm::{Comm, CommError};

/// Propagates with `?`.
pub fn propagate(comm: &Comm) -> Result<u64, CommError> {
    comm.barrier()?;
    let total = comm.allreduce_sum_u64(2)?;
    Ok(total)
}

/// Matches on the outcome.
pub fn recover(comm: &Comm) -> u64 {
    match comm.barrier() {
        Ok(()) => 1,
        Err(CommError::RankFailed) => 0,
    }
}

/// A named binding routed to a recovery decision.
pub fn routed(comm: &Comm) -> u64 {
    let outcome = comm.allreduce_sum_u64(3);
    if outcome.is_ok() {
        1
    } else {
        0
    }
}

/// The elastic entry points propagate like any other collective: a failed
/// admission aborts the grow window, a failed grant falls back to the
/// straggler's own quota.
pub fn propagate_elastic(comm: &Comm) -> Result<u64, CommError> {
    let admitted = comm.grow(2)?;
    let stolen = match comm.steal_grant(1) {
        Ok(quota) => quota,
        Err(CommError::RankFailed) => 0,
    };
    Ok(admitted as u64 + stolen)
}
