//! comm-error-flow: propagated, matched, and bound results stay clean.
use crate::comm::{Comm, CommError};

/// Propagates with `?`.
pub fn propagate(comm: &Comm) -> Result<u64, CommError> {
    comm.barrier()?;
    let total = comm.allreduce_sum_u64(2)?;
    Ok(total)
}

/// Matches on the outcome.
pub fn recover(comm: &Comm) -> u64 {
    match comm.barrier() {
        Ok(()) => 1,
        Err(CommError::RankFailed) => 0,
    }
}

/// A named binding routed to a recovery decision.
pub fn routed(comm: &Comm) -> u64 {
    let outcome = comm.allreduce_sum_u64(3);
    if outcome.is_ok() {
        1
    } else {
        0
    }
}
