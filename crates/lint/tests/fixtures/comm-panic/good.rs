//! comm-panic: typed errors stay clean.

/// Typed communicator error.
pub enum CommError {
    /// A rank died.
    RankFailed,
}

/// Surfaces the failure as a value.
pub fn fail(rank: usize) -> Result<(), CommError> {
    if rank > 0 {
        return Err(CommError::RankFailed);
    }
    Ok(())
}
