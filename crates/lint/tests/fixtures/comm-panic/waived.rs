//! comm-panic: a documented unreachable is suppressed but recorded.

/// Validated-unreachable branch.
pub fn guard(seq: u64) {
    if seq == u64::MAX {
        // xtask: allow(comm-panic) — fixture: seq is validated upstream.
        panic!("impossible sequence");
    }
}
