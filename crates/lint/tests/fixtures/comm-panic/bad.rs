//! comm-panic: panicking macros on communicator paths.

/// Dies instead of surfacing a typed error.
pub fn explode(rank: usize) {
    if rank > 0 {
        panic!("rank {rank} died"); //~ comm-panic
    }
    todo!() //~ comm-panic
}
