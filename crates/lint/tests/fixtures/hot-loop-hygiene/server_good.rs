//! hot-loop-hygiene, server scope: the sanctioned cache read path — every
//! query fills a reader-owned, pre-sized snapshot; no allocation, no lock.
//! Scanned under the virtual path `crates/server/src/cache.rs`.

/// A cache whose read path only copies into caller-provided buffers.
pub struct Cache {
    counts: Vec<u64>,
    tau: u64,
    round: u64,
}

/// Reader-owned snapshot, sized once at client setup.
pub struct Snapshot {
    pub counts: Vec<u64>,
    pub tau: u64,
    pub round: u64,
}

impl Cache {
    /// Bulk read into the reusable snapshot: `copy_from_slice` plus scalar
    /// stores, nothing else.
    pub fn read_frontier_into(&self, snap: &mut Snapshot) -> bool {
        snap.counts.copy_from_slice(&self.counts);
        snap.tau = self.tau;
        snap.round = self.round;
        true
    }

    /// Scalar read straight off the published slot.
    pub fn read_vertex(&self, v: usize) -> Option<u64> {
        self.counts.get(v).copied()
    }

    /// Stage read reusing the same pre-sized snapshot (push onto a buffer
    /// the caller pre-reserved is the sanctioned idiom).
    pub fn read_stage_into(&self, snap: &mut Snapshot) -> bool {
        snap.counts.clear();
        for &c in &self.counts {
            snap.counts.push(c);
        }
        snap.tau = self.tau;
        true
    }
}
