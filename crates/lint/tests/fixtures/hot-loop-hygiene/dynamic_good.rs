//! hot-loop-hygiene, dynamic scope: the sanctioned idiom — recycled
//! scratch, in-place edits, zero allocation per row / edge / sample.

/// In-place overlay edit against pre-reserved rows.
pub fn apply_edits(rows: &mut [Vec<u32>], inserts: &[(u32, u32)]) {
    for &(u, v) in inserts {
        rows[u as usize].push(v);
        rows[v as usize].push(u);
    }
}

/// Sweep kernel driving a caller-recycled frontier queue.
pub fn bfs_distances_into(dist: &mut [u32], queue: &mut Vec<u32>, sources: &[u32]) {
    queue.clear();
    queue.reserve(sources.len());
    for &s in sources {
        dist[s as usize] = 0;
        queue.push(s);
    }
}

/// Classification reading the shared tables directly.
pub fn classify_samples(samples: &[(u32, u32)], dist: &[u32], out: &mut [bool]) {
    for (i, &(s, t)) in samples.iter().enumerate() {
        out[i] = dist[s as usize] <= dist[t as usize];
    }
}
