//! hot-loop-hygiene: reused scratch buffers and push-only closures stay clean.

/// Clean consume closure: pre-sized buffer, pushes only.
pub fn drive(sampler: &mut crate::sampler::ThreadSampler, counts: &mut [u64]) {
    sampler.sample_batch(64, |interior| {
        for &v in interior {
            counts[v as usize] += 1;
        }
    });
}

/// Hot-path function using the sanctioned idiom.
pub fn sample_batch(buf: &mut Vec<u32>, extra: &[u32]) {
    buf.reserve(extra.len());
    for &v in extra {
        buf.push(v);
    }
}

/// Batched-kernel entry point: reuses caller scratch, pushes only.
pub fn sample_batch_into(pairs: &[(u32, u32)], out: &mut Vec<u32>) {
    out.clear();
    for &(s, t) in pairs {
        out.push(s ^ t);
    }
}

/// Per-round row sweep: word-at-a-time bit tricks, zero allocation.
pub fn expand_direction(frontier: &[u64], meets: &mut Vec<u32>) {
    for (v, &word) in frontier.iter().enumerate() {
        let mut m = word;
        while m != 0 {
            meets.push((v as u32) << 6 | m.trailing_zeros());
            m &= m - 1;
        }
    }
}
