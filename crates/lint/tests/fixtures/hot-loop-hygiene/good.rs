//! hot-loop-hygiene: reused scratch buffers and push-only closures stay clean.

/// Clean consume closure: pre-sized buffer, pushes only.
pub fn drive(sampler: &mut crate::sampler::ThreadSampler, counts: &mut [u64]) {
    sampler.sample_batch(64, |interior| {
        for &v in interior {
            counts[v as usize] += 1;
        }
    });
}

/// Hot-path function using the sanctioned idiom.
pub fn sample_batch(buf: &mut Vec<u32>, extra: &[u32]) {
    buf.reserve(extra.len());
    for &v in extra {
        buf.push(v);
    }
}
