//! hot-loop-hygiene: allocation, copies, and collectives per sample.
use crate::comm::Comm;

/// Dirty consume closure: one of every banned class.
pub fn drive(sampler: &mut crate::sampler::ThreadSampler, comm: &Comm) {
    let mut log: Vec<u32> = Vec::new();
    sampler.sample_batch(64, |interior| {
        let copy = interior.to_vec(); //~ hot-loop-hygiene
        let line = format!("{copy:?}"); //~ hot-loop-hygiene
        let scratch = Vec::new(); //~ hot-loop-hygiene
        let _ = comm.barrier(); //~ hot-loop-hygiene
        log.push(line.len() as u32);
        drop(scratch);
    });
}

/// Hot-path function scanned by name.
pub fn sample_batch(buf: &mut Vec<u32>, extra: &[u32]) {
    let doubled: Vec<u32> = extra.iter().map(|v| v * 2).collect(); //~ hot-loop-hygiene
    for v in doubled {
        buf.push(v);
    }
}
