//! hot-loop-hygiene: allocation, copies, and collectives per sample.
use crate::comm::Comm;

/// Dirty consume closure: one of every banned class.
pub fn drive(sampler: &mut crate::sampler::ThreadSampler, comm: &Comm) {
    let mut log: Vec<u32> = Vec::new();
    sampler.sample_batch(64, |interior| {
        let copy = interior.to_vec(); //~ hot-loop-hygiene
        let line = format!("{copy:?}"); //~ hot-loop-hygiene
        let scratch = Vec::new(); //~ hot-loop-hygiene
        let _ = comm.barrier(); //~ hot-loop-hygiene
        log.push(line.len() as u32);
        drop(scratch);
    });
}

/// Hot-path function scanned by name.
pub fn sample_batch(buf: &mut Vec<u32>, extra: &[u32]) {
    let doubled: Vec<u32> = extra.iter().map(|v| v * 2).collect(); //~ hot-loop-hygiene
    for v in doubled {
        buf.push(v);
    }
}

/// Batched-kernel entry point scanned by name (DESIGN.md §16).
pub fn sample_batch_into(pairs: &[(u32, u32)], out: &mut Vec<u32>) {
    let staged = pairs.to_vec(); //~ hot-loop-hygiene
    for (s, _) in staged {
        out.push(s);
    }
}

/// Per-round row sweep scanned by name.
pub fn expand_direction(frontier: &[u32], out: &mut Vec<u32>) {
    let tag = frontier.len().to_string(); //~ hot-loop-hygiene
    out.push(tag.len() as u32);
}
