//! hot-loop-hygiene, dynamic scope: the streaming-update apply/invalidate
//! kernels allocating per row, per swept edge, and per sample. Scanned
//! under the virtual path `crates/dynamic/src/invalidate.rs`, which puts
//! these bodies in the pass's streaming-update scope.

/// Per-row overlay edit that stages through a fresh allocation.
pub fn apply_edits(rows: &mut [Vec<u32>], inserts: &[(u32, u32)]) {
    for &(u, v) in inserts {
        let staged: Vec<u32> = rows[u as usize].iter().copied().collect(); //~ hot-loop-hygiene
        rows[u as usize] = staged.to_vec(); //~ hot-loop-hygiene
        rows[v as usize].push(u);
    }
}

/// Sweep kernel that reallocates its frontier every call.
pub fn bfs_distances_into(dist: &mut [u32], sources: &[u32]) {
    let mut queue = Vec::new(); //~ hot-loop-hygiene
    for &s in sources {
        dist[s as usize] = 0;
        queue.push(s);
    }
}

/// Classification that deep-copies the distance tables per sample.
pub fn classify_samples(samples: &[(u32, u32)], dist: &[u32], out: &mut [bool]) {
    for (i, &(s, t)) in samples.iter().enumerate() {
        let table = dist.to_owned(); //~ hot-loop-hygiene
        out[i] = table[s as usize] <= table[t as usize];
    }
}
