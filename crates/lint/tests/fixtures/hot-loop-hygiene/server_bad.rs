//! hot-loop-hygiene, server scope: the estimate-cache read path
//! allocating and locking. Scanned under the virtual path
//! `crates/server/src/cache.rs`, which puts these bodies in the pass's
//! service read-path scope.

/// A cache whose read path commits every banned class.
pub struct Cache {
    counts: Vec<u64>,
    tau: std::sync::Mutex<u64>,
}

/// Reader-owned snapshot (pre-sized in the sanctioned idiom).
pub struct Snapshot {
    pub counts: Vec<u64>,
    pub tau: u64,
}

impl Cache {
    /// Bulk read that stages through fresh allocations.
    pub fn read_frontier_into(&self, snap: &mut Snapshot) -> bool {
        let staged: Vec<u64> = self.counts.iter().copied().collect(); //~ hot-loop-hygiene
        snap.counts = staged.to_vec(); //~ hot-loop-hygiene
        snap.tau = *self.tau.lock().expect("poisoned"); //~ hot-loop-hygiene
        true
    }

    /// Scalar read that deep-copies the whole frontier per query.
    pub fn read_vertex(&self, v: usize) -> Option<u64> {
        let copy = self.counts.clone(); //~ hot-loop-hygiene
        copy.get(v).copied()
    }

    /// Stage read that allocates scratch per call.
    pub fn read_stage_into(&self, snap: &mut Snapshot) -> bool {
        let mut scratch = Vec::new(); //~ hot-loop-hygiene
        scratch.push(self.counts.len() as u64);
        snap.tau = scratch[0];
        true
    }
}
