//! hot-loop-hygiene: a waived bounded allocation is suppressed but recorded.

/// The closure clones once per batch under a documented bound.
pub fn drive(sampler: &mut crate::sampler::ThreadSampler, out: &mut Vec<Vec<u32>>) {
    sampler.sample_batch(1, |interior| {
        // xtask: allow(hot-loop-hygiene) — fixture: batch size is 1, the
        // clone runs once per epoch, not per sample.
        out.push(interior.to_vec());
    });
}
