//! nondeterminism: seeded rngs and logical time stay clean.

/// Seeded, reproducible drawing.
pub fn draw(seed: u64) -> u64 {
    let rng = rand::rngs::StdRng::seed_from_u64(seed);
    let _ = rng;
    seed
}
