//! nondeterminism: a justified clock read is suppressed but recorded.

/// Calibration-style measurement.
pub fn measure() -> u64 {
    // xtask: allow(nondeterminism) — fixture: measures real time by design.
    let start = std::time::Instant::now();
    let _ = start;
    0
}
