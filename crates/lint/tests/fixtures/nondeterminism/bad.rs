//! nondeterminism: entropy and wall clock inside the simulation.

/// Draws entropy and reads the clock.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); //~ nondeterminism
    let start = std::time::Instant::now(); //~ nondeterminism
    let _ = (&mut rng, start);
    0
}
