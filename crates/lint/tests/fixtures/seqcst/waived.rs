//! seqcst: a justified escape hatch is suppressed but recorded.
use crate::sync::{AtomicU64, Ordering};

/// Mirrors an external API contract.
pub fn mirrored(a: &AtomicU64) -> u64 {
    // xtask: allow(seqcst) — fixture: matches a third-party fence contract.
    a.load(Ordering::SeqCst)
}
