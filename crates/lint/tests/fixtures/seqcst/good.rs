//! seqcst: explicit Release/Acquire pairings stay clean.
use crate::sync::{AtomicU64, Ordering};

/// Publishes with Release.
pub fn publish(a: &AtomicU64) {
    a.store(1, Ordering::Release);
}

/// Consumes with Acquire.
pub fn consume(a: &AtomicU64) -> u64 {
    a.load(Ordering::Acquire)
}
