//! seqcst: the banned ordering is flagged everywhere, even in tests.
use crate::sync::{AtomicU64, Ordering};

/// Stores with the banned ordering.
pub fn publish(a: &AtomicU64) {
    a.store(1, Ordering::SeqCst); //~ seqcst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_tests_are_flagged() {
        let a = AtomicU64::new(0);
        a.load(Ordering::SeqCst); //~ seqcst
    }
}
