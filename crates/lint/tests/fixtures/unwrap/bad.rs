//! unwrap: library panics on Option/Result values.

/// Panics on empty input.
pub fn first_and_last(v: &[u32]) -> u32 {
    let head = v.first().unwrap(); //~ unwrap
    let tail = v.last().expect("non-empty"); //~ unwrap
    head + tail
}
