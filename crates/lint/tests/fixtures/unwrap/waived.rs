//! unwrap: a documented invariant is suppressed but recorded.

/// Reads the head of a non-empty buffer.
pub fn head(v: &[u32]) -> u32 {
    // xtask: allow(unwrap) — fixture: caller guarantees non-empty input.
    *v.first().unwrap()
}
