//! unwrap: propagation and test code stay clean.

/// Propagates absence.
pub fn first(v: &[u32]) -> Option<u32> {
    let head = v.first()?;
    Some(*head)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
