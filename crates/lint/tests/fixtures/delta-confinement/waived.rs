//! delta-confinement: a waived one-shot migration, recorded but suppressed.
use kadabra_dynamic::{DynamicGraph, UpdateBatch};

/// Provisioning-time bulk load, before the tenant is reachable.
pub fn migrate(view: &mut DynamicGraph, batch: &UpdateBatch) {
    // xtask: allow(delta-confinement) — fixture: one-shot load during
    // provisioning; the tenant has no readers and no replay history yet.
    view.apply_batch(batch);
}
