//! delta-confinement: overlay mutators called outside `crates/dynamic/src`.
use kadabra_dynamic::{DynamicGraph, UpdateBatch};
use kadabra_graph::CsrArena;

/// A tenant "hotfix" that skips the delta log's validation and sequencing.
pub fn hotfix(view: &mut DynamicGraph, batch: &UpdateBatch) {
    view.apply_batch(batch); //~ delta-confinement
}

/// An in-place edit behind the log's back loses the replay history.
pub fn splice(view: &mut DynamicGraph, batch: &UpdateBatch) {
    view.apply_edits(batch); //~ delta-confinement
    DynamicGraph::apply_batch(view, batch); //~ delta-confinement
}

/// Compacting outside the log desynchronizes its recycled arena.
pub fn squash(view: &mut DynamicGraph, arena: &mut CsrArena) {
    view.compact_into(arena); //~ delta-confinement
}
