//! delta-confinement: the sanctioned write path is the DeltaLog API.
use kadabra_dynamic::{DeltaLog, UpdateBatch, UpdateError};

/// Every batch goes through the log: validated, sequenced, replayable.
pub fn update(log: &mut DeltaLog, batch: &UpdateBatch) -> Result<u64, UpdateError> {
    let seq = log.append(batch)?;
    log.maybe_compact();
    Ok(seq)
}

/// Reading the overlay is unrestricted — only mutation is confined.
pub fn edge_count(log: &DeltaLog) -> usize {
    log.view().num_edges()
}
