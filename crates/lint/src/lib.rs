//! `kadabra-lint`: AST-based semantic lint framework.
//!
//! The workspace carries load-bearing invariants the compiler cannot see:
//! every `Result<_, CommError>` must reach the recovery loop (DESIGN.md
//! §10), the epoch protocol's `Release` stores must pair with `Acquire`
//! loads (§7), runs must be bit-reproducible from `(plan, seed)` (§8), and
//! `sample_batch` must stay allocation- and collective-free (§11). This
//! crate parses the whole workspace into token streams + item ASTs
//! ([`lex`], [`ast`]) and runs structured passes ([`passes`]) over them,
//! with span-accurate diagnostics, an inline-waiver + baseline suppression
//! system, and a machine-readable `kadabra-lint/v1` JSON report
//! ([`report`]).
//!
//! Entry points: [`Workspace::load`] (scan a checkout), or
//! [`Workspace::from_sources`] (virtual files, used by the fixture corpus),
//! then [`Workspace::run`].

pub mod ast;
pub mod lex;
pub mod passes;
pub mod report;

use std::path::Path;

use lex::{Comment, Token};
use report::{Baseline, Finding, Report};

/// A parsed source file: tokens, delimiter table, item AST, comments, and
/// per-line metadata for waiver lookup and excerpts.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw source lines (for excerpts).
    pub lines: Vec<String>,
    /// Token stream.
    pub toks: Vec<Token>,
    /// Matching-delimiter table (see [`lex::match_delims`]).
    pub pair: Vec<usize>,
    /// Comments (for the waiver index).
    pub comments: Vec<Comment>,
    /// Item-level AST.
    pub ast: ast::Ast,
    /// For each 1-based line: true when a code token starts on it.
    line_has_code: Vec<bool>,
    /// For each 1-based line: concatenated comment text on that line.
    line_comment: Vec<String>,
}

impl SourceFile {
    /// Parses `text` under the virtual workspace-relative path `rel`.
    #[must_use]
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let lexed = lex::lex(text);
        let pair = lex::match_delims(&lexed.tokens);
        let ast = ast::parse(&lexed.tokens, &pair);
        let lines: Vec<String> = text.split('\n').map(str::to_string).collect();
        let n = lines.len() + 2;
        let mut line_has_code = vec![false; n];
        for t in &lexed.tokens {
            if let Some(slot) = line_has_code.get_mut(t.line as usize) {
                *slot = true;
            }
        }
        let mut line_comment = vec![String::new(); n];
        for c in &lexed.comments {
            if let Some(slot) = line_comment.get_mut(c.line as usize) {
                slot.push_str(&c.text);
            }
        }
        SourceFile {
            rel: rel.to_string(),
            lines,
            toks: lexed.tokens,
            pair,
            comments: lexed.comments,
            ast,
            line_has_code,
            line_comment,
        }
    }

    /// The (trimmed) source text of 1-based line `line`.
    #[must_use]
    pub fn excerpt(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map_or_else(String::new, |l| l.trim().to_string())
    }

    /// True when `rule` is waived on 1-based `line`: the line itself carries
    /// an `xtask: allow(<rule>)` comment, or the contiguous block of
    /// comment-only lines directly above it does. Identical semantics to
    /// the legacy scanner, so existing waivers keep working.
    #[must_use]
    pub fn waived(&self, line: u32, rule: &str) -> bool {
        let tag = format!("xtask: allow({rule})");
        let at = |l: u32| self.line_comment.get(l as usize).is_some_and(|c| c.contains(&tag));
        if at(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_code = self.line_has_code.get(l as usize).copied().unwrap_or(false);
            let has_comment = self.line_comment.get(l as usize).is_some_and(|c| !c.is_empty());
            let comment_only = !has_code && has_comment;
            if !comment_only {
                return false;
            }
            if at(l) {
                return true;
            }
        }
        false
    }

    /// True if token `i` is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_ident(s))
    }

    /// True if token `i` is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, i: usize, s: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(s))
    }

    /// True if token `i` lies in test-only code (by AST) or the whole file
    /// is a test/bin path.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.is_test_path() || self.ast.in_test(i)
    }

    /// True for paths whose code is test-/binary-only and therefore exempt
    /// from library-hygiene rules.
    #[must_use]
    pub fn is_test_path(&self) -> bool {
        let parts: Vec<&str> = self.rel.split('/').collect();
        parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"))
            || self.rel.ends_with("main.rs")
            || self.rel.ends_with("tests.rs")
            || self.rel.ends_with("build.rs")
    }

    /// The crate this file belongs to: `crates/<name>/…` or the root
    /// package name.
    #[must_use]
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel.split('/');
        if parts.next() == Some("crates") {
            if let Some(name) = parts.next() {
                return name;
            }
        }
        "kadabra-mpi"
    }
}

/// The parsed workspace: every `.rs` file in lint scope.
pub struct Workspace {
    /// Parsed files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and parses the workspace rooted at `root`. Scans the same
    /// trees as the legacy scanner (`crates/`, `src/`, `tests/`,
    /// `examples/`); `shims/` reproduce third-party APIs and stay out of
    /// scope, and `fixtures/` directories hold deliberately-violating lint
    /// corpora exercised by their own tests.
    ///
    /// # Errors
    /// Returns the first I/O error encountered while reading a source file.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        for dir in ["crates", "src", "tests", "examples"] {
            collect_rs_files(&root.join(dir), &mut paths);
        }
        paths.sort();
        let mut files = Vec::new();
        for p in paths {
            let text = std::fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(&rel, &text));
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(relative_path, source)` pairs —
    /// the fixture-corpus entry point.
    #[must_use]
    pub fn from_sources(srcs: &[(&str, &str)]) -> Workspace {
        Workspace { files: srcs.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect() }
    }

    /// Runs `passes` over every file and returns the report, applying
    /// inline waivers and the `baseline` suppression set.
    #[must_use]
    pub fn run(&self, passes: &[&dyn Pass], baseline: &Baseline) -> Report {
        let mut findings = Vec::new();
        for pass in passes {
            let mut sink = Sink { pass_name: pass.name(), hint: pass.hint(), out: &mut findings };
            pass.run(self, &mut sink);
        }
        for f in &mut findings {
            if !f.waived && baseline.matches(f) {
                f.baselined = true;
            }
        }
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.pass).cmp(&(&b.file, b.line, b.col, b.pass))
        });
        Report::new(self.files.len(), passes.iter().map(|p| p.name()).collect(), findings)
    }
}

/// One semantic lint pass.
pub trait Pass {
    /// Stable pass slug, used in waivers (`xtask: allow(<name>)`), the JSON
    /// report, and the baseline file.
    fn name(&self) -> &'static str;
    /// One-sentence rationale shown with every diagnostic.
    fn hint(&self) -> &'static str;
    /// Emits findings for the whole workspace through `sink`.
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>);
}

/// Finding collector handed to passes; applies the waiver index at emit
/// time so passes stay oblivious to suppression.
pub struct Sink<'a> {
    pass_name: &'static str,
    hint: &'static str,
    out: &'a mut Vec<Finding>,
}

impl Sink<'_> {
    /// Emits a finding anchored at token `tok` of `file`.
    pub fn emit(&mut self, file: &SourceFile, tok: usize, message: String) {
        let (line, col) = file.toks.get(tok).map_or((1, 1), |t| (t.line, t.col));
        self.emit_at(file, line, col, message);
    }

    /// Emits a finding at an explicit position.
    pub fn emit_at(&mut self, file: &SourceFile, line: u32, col: u32, message: String) {
        let waived = file.waived(line, self.pass_name);
        self.out.push(Finding {
            pass: self.pass_name,
            hint: self.hint,
            file: file.rel.clone(),
            line,
            col,
            excerpt: file.excerpt(line),
            message,
            waived,
            baselined: false,
        });
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_same_line_and_block_above() {
        let sf = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "// xtask: allow(unwrap) — invariant: non-empty by construction\n\
             v.unwrap();\n\
             w.unwrap(); // xtask: allow(unwrap) — ditto\n\
             z.unwrap();\n",
        );
        assert!(sf.waived(2, "unwrap"));
        assert!(sf.waived(3, "unwrap"));
        assert!(!sf.waived(4, "unwrap"));
        assert!(!sf.waived(2, "seqcst"), "waivers are per-rule");
    }

    #[test]
    fn waiver_multi_line_comment_block() {
        let sf = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "// A longer justification that spans\n\
             // two lines. xtask: allow(unwrap) — reason\n\
             // and a trailing remark.\n\
             v.unwrap();\n",
        );
        assert!(sf.waived(4, "unwrap"));
    }

    #[test]
    fn crate_name_resolution() {
        assert_eq!(SourceFile::parse("crates/epoch/src/lib.rs", "").crate_name(), "epoch");
        assert_eq!(SourceFile::parse("src/lib.rs", "").crate_name(), "kadabra-mpi");
    }

    #[test]
    fn test_path_detection_matches_legacy() {
        for p in [
            "crates/demo/tests/it.rs",
            "tests/chaos.rs",
            "crates/x/src/bin/tool.rs",
            "crates/x/src/main.rs",
            "crates/mpisim/src/tests.rs",
        ] {
            assert!(SourceFile::parse(p, "").is_test_path(), "{p}");
        }
        assert!(!SourceFile::parse("crates/x/src/lib.rs", "").is_test_path());
    }
}
