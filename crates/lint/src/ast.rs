//! Item-level AST over the token stream.
//!
//! The parser recognizes exactly the structure the semantic passes need:
//! functions (name, visibility, return-type tokens, body range), modules
//! (with `#[cfg(test)]` awareness), `impl`/`trait` blocks (recursed for
//! their methods), struct fields (name + type tokens, for the atomic and
//! hash-container inventories), and `type` aliases. Everything else is
//! skipped with balanced-delimiter jumps, so an unrecognized construct can
//! never desynchronize the parse — passes degrade gracefully instead of
//! erroring.
//!
//! Test code is identified *semantically*: any item carrying `#[test]` or a
//! `#[cfg(…)]` attribute that enables `test` (but not `not(test)`) marks its
//! whole token range, and ranges nest through `mod`/`impl` recursion. This
//! replaces the legacy scanner's line-oriented `#[cfg(test)]` brace walk.

use crate::lex::{Delim, TokKind, Token};

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// True for `pub` functions (any visibility qualifier).
    pub is_pub: bool,
    /// Token range (exclusive end) of the return type, if any.
    pub ret: Option<(usize, usize)>,
    /// Token range (exclusive end) of the body, excluding the braces.
    pub body: Option<(usize, usize)>,
    /// True when the function is test-only (`#[test]`, `#[cfg(test)]`, or
    /// inside a test module).
    pub is_test: bool,
}

/// A parsed struct field (`name: Type`).
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// Token range (exclusive end) of the field's type.
    pub ty: (usize, usize),
}

/// A `type Name = …;` alias.
#[derive(Debug, Clone)]
pub struct AliasInfo {
    /// Alias name.
    pub name: String,
    /// Token range (exclusive end) of the aliased type.
    pub ty: (usize, usize),
}

/// Item-level parse of one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// All functions, including methods in `impl`/`trait` blocks.
    pub fns: Vec<FnInfo>,
    /// All named struct fields.
    pub fields: Vec<FieldInfo>,
    /// All type aliases.
    pub aliases: Vec<AliasInfo>,
    /// Token ranges (exclusive end) covered by test-only items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Ast {
    /// True when token index `i` lies inside a test-only item.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| lo <= i && i < hi)
    }
}

/// Context shared by the recursive item walk.
struct Parser<'a> {
    toks: &'a [Token],
    pair: &'a [usize],
    out: Ast,
}

/// Parses the items of a file given its tokens and delimiter table.
#[must_use]
pub fn parse(toks: &[Token], pair: &[usize]) -> Ast {
    let mut p = Parser { toks, pair, out: Ast::default() };
    p.items(0, toks.len(), false);
    p.out
}

/// True when an attribute token range enables test compilation: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not `#[cfg(not(test))]`.
fn attr_is_test(toks: &[Token], lo: usize, hi: usize) -> bool {
    for i in lo..hi {
        if toks[i].is_ident("test") {
            // Reject `not(test)`: look back for `not (`.
            let negated = i >= 2
                && toks[i - 1].kind == TokKind::Open(Delim::Paren)
                && toks[i - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

impl Parser<'_> {
    /// Jumps over one balanced token: past a delimiter group, or one token.
    fn skip(&self, i: usize) -> usize {
        if let TokKind::Open(_) = self.toks[i].kind {
            if self.pair[i] != usize::MAX {
                return self.pair[i] + 1;
            }
        }
        i + 1
    }

    /// Advances to the first token at the current nesting level for which
    /// `stop` holds, returning its index (or `hi`).
    fn seek(&self, mut i: usize, hi: usize, stop: impl Fn(&Token) -> bool) -> usize {
        while i < hi {
            if stop(&self.toks[i]) {
                return i;
            }
            i = self.skip(i);
        }
        hi
    }

    /// Parses the item sequence in `[lo, hi)`.
    fn items(&mut self, mut i: usize, hi: usize, in_test: bool) {
        while i < hi {
            let item_start = i;
            // Attributes: `#[…]` (outer) and `#![…]` (inner).
            let mut is_test_item = false;
            while i < hi && self.toks[i].is_punct("#") {
                let mut j = i + 1;
                if j < hi && self.toks[j].is_punct("!") {
                    j += 1;
                }
                if j < hi && self.toks[j].kind == TokKind::Open(Delim::Bracket) {
                    let close = self.pair[j];
                    if close == usize::MAX {
                        break;
                    }
                    is_test_item |= attr_is_test(self.toks, j + 1, close);
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            // Visibility / qualifiers.
            while i < hi {
                let t = &self.toks[i];
                if t.is_ident("pub") {
                    i += 1;
                    if i < hi && self.toks[i].kind == TokKind::Open(Delim::Paren) {
                        i = self.skip(i);
                    }
                } else if t.is_ident("const")
                    || t.is_ident("unsafe")
                    || t.is_ident("async")
                    || t.is_ident("default")
                {
                    // `const` may start `const NAME: … = …;` rather than
                    // qualify an fn; the keyword dispatch below still works
                    // because a const item's next token is an ident that is
                    // not a recognized item keyword, hitting the skip arm.
                    if t.is_ident("const")
                        && i + 1 < hi
                        && !self.toks[i + 1].is_ident("fn")
                        && !self.toks[i + 1].is_ident("unsafe")
                        && !self.toks[i + 1].is_ident("extern")
                    {
                        break; // `const NAME: …` item
                    }
                    i += 1;
                } else if t.is_ident("extern") {
                    i += 1;
                    if i < hi && self.toks[i].kind == TokKind::Str {
                        i += 1; // ABI string
                    }
                } else {
                    break;
                }
            }
            if i >= hi {
                break;
            }
            let was_pub = (item_start..i).any(|k| self.toks[k].is_ident("pub"));
            let t = &self.toks[i];

            if t.is_ident("fn") {
                i = self.parse_fn(i, hi, was_pub, in_test || is_test_item, item_start);
            } else if t.is_ident("mod") || t.is_ident("impl") || t.is_ident("trait") {
                i = self.parse_braced_recurse(
                    i,
                    hi,
                    in_test || is_test_item,
                    is_test_item,
                    item_start,
                );
            } else if t.is_ident("struct") {
                i = self.parse_struct(i, hi, in_test || is_test_item, is_test_item, item_start);
            } else if t.is_ident("type") {
                i = self.parse_alias(i, hi);
            } else {
                // use / static / const / enum / macro_rules! / stray tokens:
                // advance one balanced token.
                let next = self.skip(i);
                if is_test_item {
                    // e.g. `#[cfg(test)] use …;` — mark through the `;`.
                    let end = self.seek(next, hi, |t| t.is_punct(";"));
                    self.out.test_ranges.push((item_start, (end + 1).min(hi)));
                    i = (end + 1).min(hi);
                } else {
                    i = next;
                }
            }
        }
    }

    /// `fn name …(…) [-> Ret] { body }` or `;` (trait method signature).
    fn parse_fn(
        &mut self,
        kw: usize,
        hi: usize,
        is_pub: bool,
        is_test: bool,
        item_start: usize,
    ) -> usize {
        let name = self
            .toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(String::new, |t| t.text.clone());
        // Find the return arrow and the body brace at this nesting level.
        let mut i = kw + 2;
        let mut ret: Option<(usize, usize)> = None;
        let mut body: Option<(usize, usize)> = None;
        let mut arrow: Option<usize> = None;
        let mut seen_where = false;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct("->") && arrow.is_none() && !seen_where {
                arrow = Some(i + 1);
                i += 1;
            } else if t.is_punct(";") {
                if let Some(a) = arrow {
                    ret = Some((a, i));
                }
                i += 1;
                break;
            } else if t.kind == TokKind::Open(Delim::Brace) {
                if let Some(a) = arrow {
                    ret = Some((a, i));
                }
                let close = self.pair[i];
                if close == usize::MAX {
                    i += 1;
                    break;
                }
                body = Some((i + 1, close));
                i = close + 1;
                break;
            } else if t.is_ident("where") {
                // Return type, if any, ended here; later `Fn() -> T` bounds
                // must not latch a bogus arrow.
                seen_where = true;
                if let Some(a) = arrow {
                    ret = Some((a, i));
                    arrow = None;
                }
                i += 1;
            } else {
                i = self.skip(i);
            }
        }
        let end = i;
        if is_test {
            self.out.test_ranges.push((item_start, end));
        }
        self.out.fns.push(FnInfo { name, is_pub, ret, body, is_test });
        end
    }

    /// `mod`/`impl`/`trait` with a braced body of further items.
    fn parse_braced_recurse(
        &mut self,
        kw: usize,
        hi: usize,
        in_test: bool,
        mark_test: bool,
        item_start: usize,
    ) -> usize {
        let mut i = kw + 1;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct(";") {
                return i + 1; // `mod name;`
            }
            if t.kind == TokKind::Open(Delim::Brace) {
                let close = self.pair[i];
                if close == usize::MAX {
                    return i + 1;
                }
                if mark_test {
                    self.out.test_ranges.push((item_start, close + 1));
                }
                self.items(i + 1, close, in_test);
                return close + 1;
            }
            i = self.skip(i);
        }
        hi
    }

    /// `struct Name<…> { field: Type, … }` (tuple/unit structs are skipped).
    fn parse_struct(
        &mut self,
        kw: usize,
        hi: usize,
        _in_test: bool,
        mark_test: bool,
        item_start: usize,
    ) -> usize {
        let mut i = kw + 1;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct(";") {
                return i + 1;
            }
            if t.kind == TokKind::Open(Delim::Brace) {
                let close = self.pair[i];
                if close == usize::MAX {
                    return i + 1;
                }
                if mark_test {
                    self.out.test_ranges.push((item_start, close + 1));
                }
                self.parse_fields(i + 1, close);
                return close + 1;
            }
            i = self.skip(i);
        }
        hi
    }

    /// Named fields inside a struct body: `[pub] name: Type,`.
    fn parse_fields(&mut self, mut i: usize, hi: usize) {
        while i < hi {
            // Skip attributes and visibility.
            while i < hi && self.toks[i].is_punct("#") {
                let j = i + 1;
                if j < hi && self.toks[j].kind == TokKind::Open(Delim::Bracket) {
                    i = self.skip(j);
                } else {
                    i += 1;
                }
            }
            if i < hi && self.toks[i].is_ident("pub") {
                i += 1;
                if i < hi && self.toks[i].kind == TokKind::Open(Delim::Paren) {
                    i = self.skip(i);
                }
            }
            if i + 1 < hi && self.toks[i].kind == TokKind::Ident && self.toks[i + 1].is_punct(":") {
                let name = self.toks[i].text.clone();
                let ty_lo = i + 2;
                // Type runs to the field-separating comma at this level.
                let ty_hi = self.seek(ty_lo, hi, |t| t.is_punct(","));
                self.out.fields.push(FieldInfo { name, ty: (ty_lo, ty_hi) });
                i = (ty_hi + 1).min(hi);
            } else {
                i = self.skip(i);
            }
        }
    }

    /// `type Name<…> = Type;`
    fn parse_alias(&mut self, kw: usize, hi: usize) -> usize {
        let name = self
            .toks
            .get(kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
            .map_or_else(String::new, |t| t.text.clone());
        let eq = self.seek(kw + 1, hi, |t| t.is_punct("=") || t.is_punct(";"));
        if eq >= hi || self.toks[eq].is_punct(";") {
            return (eq + 1).min(hi);
        }
        let semi = self.seek(eq + 1, hi, |t| t.is_punct(";"));
        if !name.is_empty() {
            self.out.aliases.push(AliasInfo { name, ty: (eq + 1, semi) });
        }
        (semi + 1).min(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, match_delims};

    fn parse_src(src: &str) -> (Vec<Token>, Ast) {
        let out = lex(src);
        let pair = match_delims(&out.tokens);
        let ast = parse(&out.tokens, &pair);
        (out.tokens, ast)
    }

    #[test]
    fn finds_fns_with_bodies_and_returns() {
        let (toks, ast) =
            parse_src("pub fn a(x: u8) -> Result<u32, CommError> { x + 1 }\nfn b() {}\n");
        assert_eq!(ast.fns.len(), 2);
        let a = &ast.fns[0];
        assert!(a.is_pub);
        assert_eq!(a.name, "a");
        let (lo, hi) = a.ret.expect("ret");
        assert!((lo..hi).any(|i| toks[i].is_ident("CommError")));
        assert!(a.body.is_some());
        assert!(!ast.fns[1].is_pub);
    }

    #[test]
    fn impl_methods_are_found() {
        let (_, ast) = parse_src("impl Foo { pub fn m(&self) -> u8 { 0 } fn p(&self) {} }");
        let names: Vec<_> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["m", "p"]);
    }

    #[test]
    fn cfg_test_mod_marks_ranges() {
        let (toks, ast) = parse_src(
            "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn tail() {}\n",
        );
        let unwrap_at = toks.iter().position(|t| t.is_ident("unwrap")).expect("pos");
        let tail_at = toks.iter().rposition(|t| t.is_ident("tail")).expect("pos");
        assert!(ast.in_test(unwrap_at));
        assert!(!ast.in_test(tail_at));
        assert!(ast.fns.iter().find(|f| f.name == "t").expect("t").is_test);
    }

    #[test]
    fn test_attr_fn_and_not_test_cfg() {
        let (toks, ast) = parse_src(
            "#[test]\nfn t() { a.unwrap(); }\n#[cfg(not(test))]\nfn lib() { b.unwrap(); }\n",
        );
        let a = toks.iter().position(|t| t.is_ident("a")).expect("a");
        let b = toks.iter().position(|t| t.is_ident("b")).expect("b");
        assert!(ast.in_test(a));
        assert!(!ast.in_test(b), "cfg(not(test)) must not be a test range");
    }

    #[test]
    fn struct_fields_and_aliases() {
        let (toks, ast) = parse_src(
            "type QueueMap = HashMap<(usize, u64), Stream>;\n\
             struct S { pub slots: Mutex<HashMap<u64, Op>>, n: usize }\n",
        );
        assert_eq!(ast.aliases.len(), 1);
        assert_eq!(ast.aliases[0].name, "QueueMap");
        let (lo, hi) = ast.aliases[0].ty;
        assert!((lo..hi).any(|i| toks[i].is_ident("HashMap")));
        assert_eq!(ast.fields.len(), 2);
        assert_eq!(ast.fields[0].name, "slots");
        let (flo, fhi) = ast.fields[0].ty;
        assert!((flo..fhi).any(|i| toks[i].is_ident("HashMap")));
    }

    #[test]
    fn where_clause_does_not_eat_return_type() {
        let (toks, ast) = parse_src("fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }");
        let (lo, hi) = ast.fns[0].ret.expect("ret");
        let text: Vec<_> = (lo..hi).map(|i| toks[i].text.as_str()).collect();
        assert!(text.contains(&"Vec"));
        assert!(!text.contains(&"Clone"));
    }
}
