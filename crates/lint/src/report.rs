//! The `kadabra-lint/v1` machine-readable report and the baseline
//! suppression file.
//!
//! The report is the lint analogue of the `kadabra-bench/v1` artifact
//! (DESIGN.md §9): a versioned JSON document CI uploads as an artifact and
//! validates with [`validate_report`] so schema drift fails the PR that
//! causes it. The baseline file (`lint-baseline.json` at the workspace
//! root) suppresses *known, accepted* findings by a content key that
//! survives unrelated line churn — new findings always fail, legacy debt
//! does not.

use kadabra_telemetry::json::{escape, Json};

/// Schema identifier written into every report.
pub const LINT_SCHEMA: &str = "kadabra-lint/v1";

/// Schema identifier of the baseline file.
pub const BASELINE_SCHEMA: &str = "kadabra-lint/baseline-v1";

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass slug.
    pub pass: &'static str,
    /// Pass rationale (shared by all findings of the pass).
    pub hint: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Trimmed source line.
    pub excerpt: String,
    /// What is wrong at this site.
    pub message: String,
    /// Suppressed by an inline `xtask: allow(...)` waiver.
    pub waived: bool,
    /// Suppressed by the baseline file.
    pub baselined: bool,
}

impl Finding {
    /// Content key for baseline matching: FNV-1a over pass, file, and the
    /// whitespace-normalized excerpt — stable under reformatting and line
    /// drift, distinct per occurrence site text.
    #[must_use]
    pub fn baseline_key(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        eat(self.pass.as_bytes());
        eat(b"\0");
        eat(self.file.as_bytes());
        eat(b"\0");
        for part in self.excerpt.split_whitespace() {
            eat(part.as_bytes());
            eat(b" ");
        }
        format!("{h:016x}")
    }

    /// True when the finding still gates the build (not suppressed).
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.waived && !self.baselined
    }
}

/// A complete lint run.
#[derive(Debug)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Names of the passes that ran.
    pub passes: Vec<&'static str>,
    /// All findings (active, waived, and baselined), sorted by position.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Assembles a report.
    #[must_use]
    pub fn new(files_scanned: usize, passes: Vec<&'static str>, findings: Vec<Finding>) -> Report {
        Report { files_scanned, passes, findings }
    }

    /// Findings that gate the build.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_active())
    }

    /// Counts as `(total, active, waived, baselined)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let baselined = self.findings.iter().filter(|f| f.baselined).count();
        let total = self.findings.len();
        (total, total - waived - baselined, waived, baselined)
    }

    /// Serializes the `kadabra-lint/v1` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let (total, active, waived, baselined) = self.counts();
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{LINT_SCHEMA}\",\n"));
        s.push_str("  \"engine\": \"ast\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        let passes: Vec<String> = self.passes.iter().map(|p| format!("\"{p}\"")).collect();
        s.push_str(&format!("  \"passes\": [{}],\n", passes.join(", ")));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"pass\": \"{}\", ", escape(f.pass)));
            s.push_str(&format!("\"file\": \"{}\", ", escape(&f.file)));
            s.push_str(&format!("\"line\": {}, ", f.line));
            s.push_str(&format!("\"col\": {}, ", f.col));
            s.push_str(&format!("\"message\": \"{}\", ", escape(&f.message)));
            s.push_str(&format!("\"excerpt\": \"{}\", ", escape(&f.excerpt)));
            s.push_str(&format!("\"key\": \"{}\", ", f.baseline_key()));
            s.push_str(&format!("\"waived\": {}, ", f.waived));
            s.push_str(&format!("\"baselined\": {}}}", f.baselined));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"summary\": {{\"total\": {total}, \"active\": {active}, \"waived\": {waived}, \
             \"baselined\": {baselined}}}\n"
        ));
        s.push_str("}\n");
        s
    }
}

/// Validates a serialized report against the `kadabra-lint/v1` schema:
/// schema tag, required fields and types, and summary-count consistency.
///
/// # Errors
/// Returns a description of the first schema violation found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str);
    if schema != Some(LINT_SCHEMA) {
        return Err(format!("schema tag is {schema:?}, expected {LINT_SCHEMA:?}"));
    }
    let files =
        doc.get("files_scanned").and_then(Json::as_f64).ok_or("missing numeric files_scanned")?;
    if files < 1.0 {
        return Err("files_scanned must be >= 1".to_string());
    }
    let passes = doc.get("passes").and_then(Json::as_array).ok_or("missing passes array")?;
    if passes.is_empty() || !passes.iter().all(|p| p.as_str().is_some()) {
        return Err("passes must be a non-empty array of strings".to_string());
    }
    let findings = doc.get("findings").and_then(Json::as_array).ok_or("missing findings array")?;
    let (mut waived, mut baselined) = (0u64, 0u64);
    for (i, f) in findings.iter().enumerate() {
        for key in ["pass", "file", "message", "excerpt", "key"] {
            if f.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("finding {i} lacks string `{key}`"));
            }
        }
        for key in ["line", "col"] {
            let v = f.get(key).and_then(Json::as_f64);
            if v.is_none_or(|v| v < 1.0) {
                return Err(format!("finding {i} lacks positive numeric `{key}`"));
            }
        }
        let flag = |key: &str| -> Result<bool, String> {
            match f.get(key) {
                Some(Json::Bool(b)) => Ok(*b),
                _ => Err(format!("finding {i} lacks boolean `{key}`")),
            }
        };
        if flag("waived")? {
            waived += 1;
        }
        if flag("baselined")? {
            baselined += 1;
        }
    }
    let summary = doc.get("summary").ok_or("missing summary object")?;
    let num = |key: &str| {
        summary.get(key).and_then(Json::as_f64).ok_or_else(|| format!("summary lacks `{key}`"))
    };
    let (total, active) = (num("total")?, num("active")?);
    let (s_waived, s_baselined) = (num("waived")?, num("baselined")?);
    #[allow(clippy::cast_precision_loss)]
    let consistent = total == findings.len() as f64
        && s_waived == waived as f64
        && s_baselined == baselined as f64
        && active == total - s_waived - s_baselined;
    if !consistent {
        return Err("summary counts are inconsistent with the findings array".to_string());
    }
    Ok(())
}

/// The baseline suppression set: accepted findings identified by
/// `(pass, file, key)`.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// The empty baseline (nothing suppressed).
    #[must_use]
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parses a `kadabra-lint/baseline-v1` document.
    ///
    /// # Errors
    /// Returns a description of the first schema violation found.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(BASELINE_SCHEMA) {
            return Err(format!("schema tag is {schema:?}, expected {BASELINE_SCHEMA:?}"));
        }
        let entries = doc.get("entries").and_then(Json::as_array).ok_or("missing entries array")?;
        let mut out = Baseline::default();
        for (i, e) in entries.iter().enumerate() {
            let field = |key: &str| {
                e.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i} lacks string `{key}`"))
            };
            out.entries.push((field("pass")?, field("file")?, field("key")?));
        }
        Ok(out)
    }

    /// True when `f` is covered by a baseline entry.
    #[must_use]
    pub fn matches(&self, f: &Finding) -> bool {
        let key = f.baseline_key();
        self.entries.iter().any(|(p, file, k)| p == f.pass && *file == f.file && *k == key)
    }

    /// Serializes the non-suppressed findings of `report` as a fresh
    /// baseline document (`cargo xtask lint --write-baseline`).
    #[must_use]
    pub fn render(report: &Report) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{BASELINE_SCHEMA}\",\n"));
        s.push_str("  \"entries\": [");
        let mut first = true;
        for f in report.active() {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"key\": \"{}\"}}",
                escape(f.pass),
                escape(&f.file),
                f.baseline_key()
            ));
        }
        if !first {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, file: &str, excerpt: &str) -> Finding {
        Finding {
            pass,
            hint: "h",
            file: file.to_string(),
            line: 3,
            col: 7,
            excerpt: excerpt.to_string(),
            message: "m".to_string(),
            waived: false,
            baselined: false,
        }
    }

    #[test]
    fn report_round_trips_through_validation() {
        let mut f = finding("seqcst", "crates/x/src/lib.rs", "a.load(SeqCst);");
        let mut report = Report::new(4, vec!["seqcst", "unwrap"], vec![f.clone()]);
        assert!(validate_report(&report.to_json()).is_ok(), "{}", report.to_json());
        f.waived = true;
        report.findings.push(f);
        assert!(validate_report(&report.to_json()).is_ok());
        let (total, active, waived, baselined) = report.counts();
        assert_eq!((total, active, waived, baselined), (2, 1, 1, 0));
    }

    #[test]
    fn validation_rejects_drift() {
        let report = Report::new(4, vec!["seqcst"], vec![]);
        let good = report.to_json();
        assert!(validate_report(&good.replace("kadabra-lint/v1", "kadabra-lint/v2")).is_err());
        assert!(
            validate_report(&good.replace("\"files_scanned\": 4", "\"files_scanned\": 0")).is_err()
        );
        assert!(validate_report("{}").is_err());
    }

    #[test]
    fn baseline_key_is_stable_under_whitespace_but_not_content() {
        let a = finding("unwrap", "crates/x/src/lib.rs", "v.unwrap();");
        let b = finding("unwrap", "crates/x/src/lib.rs", "  v.unwrap();  ");
        let c = finding("unwrap", "crates/x/src/lib.rs", "w.unwrap();");
        assert_eq!(a.baseline_key(), b.baseline_key());
        assert_ne!(a.baseline_key(), c.baseline_key());
    }

    #[test]
    fn baseline_round_trip_suppresses() {
        let f = finding("unwrap", "crates/x/src/lib.rs", "v.unwrap();");
        let report = Report::new(1, vec!["unwrap"], vec![f.clone()]);
        let rendered = Baseline::render(&report);
        let baseline = Baseline::parse(&rendered).expect("parse");
        assert_eq!(baseline.len(), 1);
        assert!(baseline.matches(&f));
        let other = finding("unwrap", "crates/y/src/lib.rs", "v.unwrap();");
        assert!(!baseline.matches(&other));
    }
}
