//! **determinism**: bit-reproducibility from `(plan, seed)`.
//!
//! DESIGN.md §8: every run must be reproducible from the plan and the seed.
//! `HashMap`/`HashSet` iteration order is randomized per process
//! (`RandomState`), so any code path whose *output* depends on iteration
//! order — looping over a map, collecting its keys, folding floats drawn
//! from it — silently breaks reproducibility while passing every
//! single-process test. This pass runs a small taint analysis over the
//! reproducible crates (`core`, `epoch`, `mpisim`, `graph`):
//!
//! 1. *Taint sources*: `let` bindings whose statement mentions a hash-table
//!    type, struct fields with hash-table types, and type aliases resolving
//!    to them (aliases propagate: a field of type `SplitGroups` where
//!    `type SplitGroups = HashMap<…>` is tainted too).
//! 2. *Sinks*: iterating a tainted name (`for … in map`, `.iter()`,
//!    `.keys()`, `.values()`, `.drain(…)`, `.retain(…)`, …). Membership
//!    (`.contains`, `.insert`, `.get`) is order-free and never flagged.
//! 3. *Float accumulation*: when the flagged iteration chain continues into
//!    `.sum::<f32|f64>()` or `.fold(0.0, …)`, the message names the
//!    order-sensitive float reduction — the worst variant, because the
//!    result differs in the low bits instead of failing loudly.
//!
//! It also bans truncating `.len() as u32` / `as NodeId` casts in the same
//! crates: vertex counts flow into `NodeId` arithmetic, and a silent
//! truncation at 2^32 corrupts sampling rather than erroring.

use super::{call_parens, is_reproducible_crate, method_call, range_has_ident};
use crate::lex::{Delim, TokKind};
use crate::{Pass, Sink, SourceFile, Workspace};

/// See module docs.
pub struct Determinism;

/// Iteration methods whose order is the hash-table's internal order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "extend_from_hash", // defensive: never matches std, documents intent
];

/// Collects workspace-wide hash-typed type names: the std tables plus every
/// alias in scope that resolves to one (transitively, two rounds).
fn hash_type_names(ws: &Workspace) -> Vec<String> {
    let mut names = vec!["HashMap".to_string(), "HashSet".to_string()];
    for _ in 0..2 {
        for file in &ws.files {
            if !is_reproducible_crate(&file.rel) {
                continue;
            }
            for a in &file.ast.aliases {
                let mentions = names.iter().any(|n| range_has_ident(file, a.ty.0, a.ty.1, n));
                if mentions && !names.contains(&a.name) {
                    names.push(a.name.clone());
                }
            }
        }
    }
    names
}

/// Per-file tainted identifiers: `let` bindings whose statement mentions a
/// hash type, plus struct fields of hash type anywhere in the same crate.
fn tainted_names(ws: &Workspace, file: &SourceFile, hash_types: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    // Struct fields, crate-wide (methods in other files access `self.field`).
    for other in &ws.files {
        if other.crate_name() != file.crate_name() || !is_reproducible_crate(&other.rel) {
            continue;
        }
        for f in &other.ast.fields {
            let mentions = hash_types.iter().any(|h| range_has_ident(other, f.ty.0, f.ty.1, h));
            if mentions && !out.contains(&f.name) {
                out.push(f.name.clone());
            }
        }
    }
    // `let` bindings in this file.
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !file.is_ident(i, "let") {
            continue;
        }
        let mut j = i + 1;
        while file.is_ident(j, "mut") {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Scan the statement (to `;`, skipping nested groups) for hash types.
        let mut k = j + 1;
        let mut tainted = false;
        while let Some(t) = toks.get(k) {
            match t.kind {
                TokKind::Punct if t.text == ";" => break,
                TokKind::Open(_) if file.pair[k] != usize::MAX => {
                    if (k + 1..file.pair[k]).any(|m| hash_types.iter().any(|h| file.is_ident(m, h)))
                    {
                        tainted = true;
                    }
                    k = file.pair[k];
                }
                TokKind::Ident if hash_types.contains(&t.text) => tainted = true,
                _ => {}
            }
            k += 1;
        }
        if tainted && !out.contains(&name_tok.text) {
            out.push(name_tok.text.clone());
        }
    }
    out
}

/// If the method chain continuing after `close` reaches an order-sensitive
/// float reduction, returns its description.
fn float_reduction_after(file: &SourceFile, mut close: usize) -> Option<&'static str> {
    for _ in 0..8 {
        if !file.is_punct(close + 1, ".") {
            return None;
        }
        let name = close + 2;
        if file.is_ident(name, "sum") {
            // `.sum::<f32>()` / `.sum::<f64>()`
            let generic = file.is_punct(name + 1, "::");
            let fty = file.is_ident(name + 3, "f32") || file.is_ident(name + 3, "f64");
            if generic && fty {
                return Some("`.sum::<float>()`");
            }
        }
        if file.is_ident(name, "fold") {
            if let Some((open, _)) = call_parens(file, name) {
                if file.toks.get(open + 1).is_some_and(|t| t.kind == TokKind::Float) {
                    return Some("`.fold(0.0, …)`");
                }
            }
        }
        // Step over this adaptor's argument list (or bail on a non-call).
        let Some((_, c)) = call_parens(file, name) else {
            // `.sum::<T>()` has the turbofish between name and parens.
            let mut k = name + 1;
            if file.is_punct(k, "::") && file.is_punct(k + 1, "<") {
                while k < file.toks.len() && !file.is_punct(k, ">") {
                    k += 1;
                }
                if let Some((_, c2)) = (file.toks.get(k + 1))
                    .filter(|t| t.kind == TokKind::Open(Delim::Paren))
                    .map(|_| (k + 1, file.pair[k + 1]))
                {
                    if c2 != usize::MAX {
                        close = c2;
                        continue;
                    }
                }
            }
            return None;
        };
        close = c;
    }
    None
}

/// Walks back from a tainted identifier over `&` / `mut` to see whether it
/// is the iterated expression of a `for … in` header.
fn is_for_in_target(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    while j > 0
        && (file.is_punct(j - 1, "&") || file.is_punct(j - 1, "&&") || file.is_ident(j - 1, "mut"))
    {
        j -= 1;
    }
    j > 0 && file.is_ident(j - 1, "in")
}

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn hint(&self) -> &'static str {
        "runs must be bit-reproducible from (plan, seed) (DESIGN.md §8): iterate sorted \
         Vec/BTreeMap views instead of HashMap order, and keep vertex counts in u64 until a \
         checked NodeId conversion"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        let hash_types = hash_type_names(ws);
        for file in &ws.files {
            if !is_reproducible_crate(&file.rel) || file.is_test_path() {
                continue;
            }
            let tainted = tainted_names(ws, file, &hash_types);
            for i in 0..file.toks.len() {
                if file.in_test(i) {
                    continue;
                }
                let t = &file.toks[i];
                if t.kind != TokKind::Ident {
                    continue;
                }
                // Truncating length casts: `.len() as u32` / `as NodeId`.
                if t.text == "len" {
                    if let Some((_, close)) = method_call(file, i) {
                        if file.is_ident(close + 1, "as")
                            && (file.is_ident(close + 2, "u32")
                                || file.is_ident(close + 2, "u16")
                                || file.is_ident(close + 2, "NodeId"))
                        {
                            sink.emit(
                                file,
                                close + 2,
                                format!(
                                    "truncating `.len() as {}` — use a checked conversion so \
                                     graphs past the index width fail loudly",
                                    file.toks[close + 2].text
                                ),
                            );
                        }
                    }
                    continue;
                }
                if !tainted.contains(&t.text) {
                    continue;
                }
                // `for … in map {` — direct iteration of the table.
                if is_for_in_target(file, i) {
                    let next_brace = file.is_punct(i + 1, "{")
                        || file
                            .toks
                            .get(i + 1)
                            .is_some_and(|n| n.kind == TokKind::Open(Delim::Brace));
                    let next_dot = file.is_punct(i + 1, ".");
                    if next_brace || !next_dot {
                        sink.emit(
                            file,
                            i,
                            format!("`for … in {}` iterates hash-table order", t.text),
                        );
                        continue;
                    }
                }
                // `map.iter()`-family sinks.
                if file.is_punct(i + 1, ".") {
                    let m = i + 2;
                    let is_iter = file
                        .toks
                        .get(m)
                        .is_some_and(|mt| ITER_METHODS.iter().any(|n| mt.is_ident(n)));
                    if is_iter {
                        if let Some((_, close)) = call_parens(file, m) {
                            let msg = match float_reduction_after(file, close) {
                                Some(red) => format!(
                                    "order-sensitive float accumulation: {red} over the \
                                     hash-order iteration of `{}`",
                                    t.text
                                ),
                                None => format!(
                                    "`.{}()` on `{}` yields hash-table order",
                                    file.toks[m].text, t.text
                                ),
                            };
                            sink.emit(file, m, msg);
                        }
                    }
                }
            }
        }
    }
}
