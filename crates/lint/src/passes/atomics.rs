//! **atomic-protocol**: the workspace-wide ordering inventory.
//!
//! DESIGN.md §7 states the epoch protocol as pairings: every `Release`
//! store publishes data that some `Acquire` load of the *same field*
//! consumes. A `Release` with no `Acquire` (or vice versa) is either dead
//! synchronization or — worse — a reader on the same field using `Relaxed`
//! and silently racing past the happens-before edge. The lexer could only
//! ban `SeqCst` token-wise; this pass builds the per-`(crate, field)`
//! inventory of every atomic operation and checks the protocol shape:
//!
//! * a `store(Release)` (or `Release`/`AcqRel` RMW) requires an
//!   `load(Acquire)`-side operation on the same field in the same crate;
//! * an `load(Acquire)` requires a `Release`-side publisher;
//! * once a field participates in a Release/Acquire protocol, *all-Relaxed*
//!   operations on it are flagged — a Relaxed read of a published field is
//!   exactly the bug the pairing exists to prevent. (Mixed orderings within
//!   one op — e.g. `compare_exchange(…, Acquire, Relaxed)` — are fine: the
//!   `Relaxed` there is the failure ordering.)
//!
//! Fields that are Relaxed-only everywhere (plain counters) are not
//! protocol fields and are never flagged. Operations whose ordering is a
//! variable (the loom `sync.rs` forwarding wrappers) carry no ordering
//! identifier and are skipped.

use std::collections::BTreeMap;

use super::{method_call, orderings_in, receiver_field};
use crate::{Pass, Sink, Workspace};

/// See module docs.
pub struct AtomicProtocol;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Store,
    Load,
    Rmw,
}

fn op_kind(name: &str) -> Option<Kind> {
    match name {
        "store" => Some(Kind::Store),
        "load" => Some(Kind::Load),
        "swap" | "compare_exchange" | "compare_exchange_weak" => Some(Kind::Rmw),
        _ if name.starts_with("fetch_") => Some(Kind::Rmw),
        _ => None,
    }
}

struct Op {
    file: usize,
    tok: usize,
    name: String,
    kind: Kind,
    orderings: Vec<&'static str>,
}

impl Op {
    /// Publishes (write side with Release semantics).
    fn releases(&self) -> bool {
        self.kind != Kind::Load
            && self.orderings.iter().any(|o| matches!(*o, "Release" | "AcqRel" | "SeqCst"))
    }
    /// Consumes (read side with Acquire semantics).
    fn acquires(&self) -> bool {
        self.kind != Kind::Store
            && self.orderings.iter().any(|o| matches!(*o, "Acquire" | "AcqRel" | "SeqCst"))
    }
    /// Every stated ordering is `Relaxed`.
    fn all_relaxed(&self) -> bool {
        !self.orderings.is_empty() && self.orderings.iter().all(|o| *o == "Relaxed")
    }
}

impl Pass for AtomicProtocol {
    fn name(&self) -> &'static str {
        "atomic-protocol"
    }
    fn hint(&self) -> &'static str {
        "every Release store must pair with an Acquire load on the same field (DESIGN.md §7); \
         Relaxed access to a protocol field bypasses the happens-before edge — if the invariant \
         genuinely holds (single-writer, own-thread read), waive with the reason"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        // Phase 1: inventory. Keyed by (crate, field) so unrelated crates
        // reusing a field name don't satisfy each other's pairings.
        let mut fields: BTreeMap<(String, String), Vec<Op>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.is_test_path() {
                continue;
            }
            for i in 0..file.toks.len() {
                let Some(kind) = file.toks.get(i).and_then(|t| op_kind(&t.text)) else {
                    continue;
                };
                let Some((open, close)) = method_call(file, i) else { continue };
                if file.in_test(i) {
                    continue;
                }
                let orderings: Vec<&'static str> =
                    orderings_in(file, open + 1, close).into_iter().map(|(_, n)| n).collect();
                if orderings.is_empty() {
                    continue; // ordering passed as a variable: not literal protocol code
                }
                let Some(field) = receiver_field(file, i) else { continue };
                let key = (file.crate_name().to_string(), field);
                fields.entry(key).or_default().push(Op {
                    file: fi,
                    tok: i,
                    name: file.toks[i].text.clone(),
                    kind,
                    orderings,
                });
            }
        }
        // Phase 2: protocol checks per field.
        for ((krate, field), ops) in &fields {
            let has_release = ops.iter().any(Op::releases);
            let has_acquire = ops.iter().any(Op::acquires);
            let protocol = has_release || has_acquire;
            for op in ops {
                let file = &ws.files[op.file];
                if op.releases() && !has_acquire {
                    sink.emit(
                        file,
                        op.tok,
                        format!(
                            "`{}` publishes `{field}` with Release, but crate `{krate}` has no \
                             Acquire-side load of `{field}` to pair with",
                            op.name
                        ),
                    );
                } else if op.acquires() && !has_release {
                    sink.emit(
                        file,
                        op.tok,
                        format!(
                            "`{}` acquires `{field}`, but crate `{krate}` has no Release-side \
                             store of `{field}` to pair with",
                            op.name
                        ),
                    );
                } else if protocol && op.all_relaxed() {
                    sink.emit(
                        file,
                        op.tok,
                        format!(
                            "Relaxed `{}` of `{field}` — the field participates in a \
                             Release/Acquire protocol in crate `{krate}`",
                            op.name
                        ),
                    );
                }
            }
        }
    }
}
