//! The pass registry and shared token-matching utilities.
//!
//! Each pass implements [`crate::Pass`] over the parsed workspace. The
//! registry ([`all`]) is what `cargo xtask lint` runs; the fixture corpus
//! under `tests/fixtures/` exercises every pass in both firing and
//! suppressed configurations.

mod atomics;
mod comm_flow;
mod delta;
mod determinism;
mod hot_loop;
mod legacy;

pub use atomics::AtomicProtocol;
pub use comm_flow::CommErrorFlow;
pub use delta::DeltaConfinement;
pub use determinism::Determinism;
pub use hot_loop::HotLoopHygiene;
pub use legacy::{CommPanic, DirectAtomics, Nondeterminism, SeqcstBan, UnwrapBan, Wallclock};

use crate::lex::{Delim, TokKind};
use crate::{Pass, SourceFile};

/// Every pass, in reporting order: the migrated token-level rules first,
/// then the semantic passes the lexer could not express.
#[must_use]
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(SeqcstBan),
        Box::new(DirectAtomics),
        Box::new(Nondeterminism),
        Box::new(UnwrapBan),
        Box::new(Wallclock),
        Box::new(CommPanic),
        Box::new(CommErrorFlow),
        Box::new(AtomicProtocol),
        Box::new(Determinism),
        Box::new(HotLoopHygiene),
        Box::new(DeltaConfinement),
    ]
}

/// True for files inside the deterministic-simulation subtrees where wall
/// clock reads are banned (`crates/mpisim/src`, `crates/cluster/src` except
/// `calibrate.rs`, which exists precisely to measure real time).
#[must_use]
pub fn is_deterministic_path(rel: &str) -> bool {
    (rel.starts_with("crates/mpisim/src") || rel.starts_with("crates/cluster/src"))
        && !rel.ends_with("calibrate.rs")
}

/// True for files under `crates/core/src` and `crates/graph/src`, where all
/// timing goes through `kadabra-telemetry` (DESIGN.md §9, §11).
#[must_use]
pub fn is_core_library_path(rel: &str) -> bool {
    rel.starts_with("crates/core/src") || rel.starts_with("crates/graph/src")
}

/// True for files under `crates/mpisim/src`, where panicking macros are
/// banned on communicator error paths (DESIGN.md §10).
#[must_use]
pub fn is_comm_path(rel: &str) -> bool {
    rel.starts_with("crates/mpisim/src")
}

/// True for files under `crates/server/src`, whose estimate-cache read path
/// must stay allocation- and lock-free (DESIGN.md §13).
#[must_use]
pub fn is_server_path(rel: &str) -> bool {
    rel.starts_with("crates/server/src")
}

/// True for files under `crates/dynamic/src`, where the streaming-update
/// apply/invalidate kernels live (DESIGN.md §14) — hot-loop scope, and the
/// only subtree allowed to call the overlay's mutators.
#[must_use]
pub fn is_dynamic_path(rel: &str) -> bool {
    rel.starts_with("crates/dynamic/src")
}

/// True for the crates whose algorithms must be bit-reproducible from
/// `(plan, seed)` — the determinism pass scope.
#[must_use]
pub fn is_reproducible_crate(rel: &str) -> bool {
    [
        "crates/core/src",
        "crates/epoch/src",
        "crates/mpisim/src",
        "crates/graph/src",
        "crates/dynamic/src",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
}

/// If token `i` is the name of a method call (`recv . name ( … )`), returns
/// the indices of the opening and closing parens.
#[must_use]
pub fn method_call(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    if file.toks.get(i)?.kind != TokKind::Ident {
        return None;
    }
    if !file.is_punct(i.checked_sub(1)?, ".") {
        return None;
    }
    call_parens(file, i)
}

/// If token `i` is a called identifier (`name ( … )`), returns the paren
/// pair of the argument list.
#[must_use]
pub fn call_parens(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let open = i + 1;
    if file.toks.get(open)?.kind != TokKind::Open(Delim::Paren) {
        return None;
    }
    let close = *file.pair.get(open)?;
    if close == usize::MAX {
        return None;
    }
    Some((open, close))
}

/// The receiver field of a method call whose name is at `i`: the last path
/// segment of the expression before the dot, looking through one index
/// operation (`self.buf[k].store(…)` → `buf`).
#[must_use]
pub fn receiver_field(file: &SourceFile, i: usize) -> Option<String> {
    let mut j = i.checked_sub(2)?; // skip the `.`
                                   // Look through `[index]`.
    if let TokKind::Close(Delim::Bracket) = file.toks.get(j)?.kind {
        j = file.pair.get(j).copied()?.checked_sub(1)?;
        if file.pair[j + 1] == usize::MAX {
            return None;
        }
    }
    // Look through a call `()` (e.g. `guard().field` never happens for
    // atomics; a call result has no stable field name).
    match file.toks.get(j)?.kind {
        TokKind::Ident => Some(file.toks[j].text.clone()),
        _ => None,
    }
}

/// Walks backwards from a method-call name at `i` to the first token of its
/// receiver chain (`self.comm.barrier` → index of `self`).
#[must_use]
pub fn chain_start(file: &SourceFile, i: usize) -> usize {
    let mut j = i;
    loop {
        let Some(prev) = j.checked_sub(1) else { return j };
        let t = &file.toks[prev];
        let extend = match t.kind {
            TokKind::Ident => true,
            TokKind::Punct => t.text == "." || t.text == "::" || t.text == "?",
            TokKind::Close(Delim::Paren | Delim::Bracket) => true,
            _ => false,
        };
        if !extend {
            return j;
        }
        j = match t.kind {
            TokKind::Close(_) if file.pair[prev] != usize::MAX => file.pair[prev],
            _ => prev,
        };
    }
}

/// Memory-ordering identifiers found in `[lo, hi)`.
#[must_use]
pub fn orderings_in(file: &SourceFile, lo: usize, hi: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for (k, t) in file.toks.iter().enumerate().take(hi.min(file.toks.len())).skip(lo) {
        if t.kind != TokKind::Ident {
            continue;
        }
        for name in ["Relaxed", "Release", "Acquire", "AcqRel", "SeqCst"] {
            if t.text == name {
                out.push((k, name));
            }
        }
    }
    out
}

/// True when `[lo, hi)` contains the identifier `name`.
#[must_use]
pub fn range_has_ident(file: &SourceFile, lo: usize, hi: usize, name: &str) -> bool {
    (lo..hi.min(file.toks.len())).any(|k| file.is_ident(k, name))
}
