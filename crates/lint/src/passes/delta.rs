//! **delta-confinement**: tenant graphs mutate only through the
//! [`DeltaLog`] API.
//!
//! The overlay's mutators (`apply_batch`, `apply_edits`, `compact_into`)
//! are `pub(crate)` in `kadabra-dynamic`, so the compiler already stops
//! foreign crates from calling them — but a refactor that widens their
//! visibility (or adds a convenience re-export) would silently open a
//! write path that skips validation, sequencing, and the replay history.
//! This pass guards the boundary at the workspace level: any call to a
//! mutator outside `crates/dynamic/src` is a finding, whatever the
//! visibility of the day. The sanctioned idiom is
//! `DeltaLog::append` + `DeltaLog::maybe_compact` (DESIGN.md §14), which
//! is what keeps the maintained estimate a pure function of
//! `(graph, update sequence, config, seed)`.
//!
//! [`DeltaLog`]: https://docs.rs/kadabra-dynamic

use super::{call_parens, is_dynamic_path, method_call};
use crate::lex::TokKind;
use crate::{Pass, Sink, Workspace};

/// See module docs.
pub struct DeltaConfinement;

/// Overlay mutators that bypass the delta log's validation and sequencing.
const MUTATORS: [&str; 3] = ["apply_batch", "apply_edits", "compact_into"];

impl Pass for DeltaConfinement {
    fn name(&self) -> &'static str {
        "delta-confinement"
    }
    fn hint(&self) -> &'static str {
        "streaming graph mutation is confined to the DeltaLog (DESIGN.md §14): route edge \
         updates through `DeltaLog::append` / `maybe_compact` so every batch stays validated, \
         sequenced, and bit-replayable"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            if file.is_test_path() || is_dynamic_path(&file.rel) {
                continue;
            }
            for i in 0..file.toks.len() {
                let t = &file.toks[i];
                if t.kind != TokKind::Ident
                    || !MUTATORS.contains(&t.text.as_str())
                    || file.in_test(i)
                {
                    continue;
                }
                // `view.apply_batch(…)` or `DynamicGraph::apply_batch(view, …)`.
                let called = method_call(file, i).is_some()
                    || (i >= 1 && file.is_punct(i - 1, "::") && call_parens(file, i).is_some());
                if called {
                    sink.emit(
                        file,
                        i,
                        format!("`{}` mutates a tenant graph outside the DeltaLog API", t.text),
                    );
                }
            }
        }
    }
}
