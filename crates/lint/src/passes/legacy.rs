//! The original token-level rules, migrated from the legacy xtask lexer to
//! AST spans.
//!
//! The rules and scopes are identical to the hand-rolled scanner (which
//! `cargo xtask lint --legacy` still runs as a fallback); what changed is
//! the substrate: matches are over real tokens with `(line, col)` spans,
//! test code is recognized semantically (`#[test]` functions and
//! `#[cfg(test)]` items of any shape, not just line-anchored `mod` blocks),
//! and string/comment content can never produce a false match because it is
//! never tokenized as code.

use super::{is_comm_path, is_core_library_path, is_deterministic_path, method_call};
use crate::lex::TokKind;
use crate::{Pass, Sink, SourceFile, Workspace};

/// `Ordering::SeqCst` is banned everywhere: every atomic in this workspace
/// states its actual pairing (Release/Acquire, or Relaxed plus an external
/// happens-before), and the loom suites prove the weaker orderings
/// sufficient.
pub struct SeqcstBan;

impl Pass for SeqcstBan {
    fn name(&self) -> &'static str {
        "seqcst"
    }
    fn hint(&self) -> &'static str {
        "SeqCst is banned: state the actual pairing with Release/Acquire (or Relaxed + a lock), \
         and let the loom tests prove it sufficient"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            for (i, t) in file.toks.iter().enumerate() {
                if t.is_ident("SeqCst") {
                    sink.emit(file, i, "use of Ordering::SeqCst".to_string());
                }
            }
        }
    }
}

/// Atomic types must come from a crate's `sync.rs` indirection module so the
/// loom feature can swap in the model checker.
pub struct DirectAtomics;

impl Pass for DirectAtomics {
    fn name(&self) -> &'static str {
        "direct-atomics"
    }
    fn hint(&self) -> &'static str {
        "import atomics from the crate's sync.rs indirection module so the loom feature can \
         model-check them"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            if file.is_test_path() || file.rel.ends_with("sync.rs") {
                continue;
            }
            for i in 0..file.toks.len() {
                let root = file.is_ident(i, "std") || file.is_ident(i, "core");
                if root
                    && file.is_punct(i + 1, "::")
                    && file.is_ident(i + 2, "sync")
                    && file.is_punct(i + 3, "::")
                    && file.is_ident(i + 4, "atomic")
                    && !file.in_test(i)
                {
                    sink.emit(file, i, "direct use of std/core::sync::atomic".to_string());
                }
            }
        }
    }
}

/// `thread_rng` is banned workspace-wide, and wall-clock reads are banned in
/// the deterministic-simulation subtrees.
pub struct Nondeterminism;

/// True when token `i` begins `Instant::now(` or `SystemTime::now(`.
fn is_wallclock_read(file: &SourceFile, i: usize) -> bool {
    (file.is_ident(i, "Instant") || file.is_ident(i, "SystemTime"))
        && file.is_punct(i + 1, "::")
        && file.is_ident(i + 2, "now")
}

impl Pass for Nondeterminism {
    fn name(&self) -> &'static str {
        "nondeterminism"
    }
    fn hint(&self) -> &'static str {
        "deterministic paths must not read entropy or the wall clock; thread seeded StdRngs / \
         logical time through instead"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            let deterministic = is_deterministic_path(&file.rel);
            for i in 0..file.toks.len() {
                if file.is_ident(i, "thread_rng") {
                    sink.emit(file, i, "entropy source thread_rng".to_string());
                }
                if deterministic && is_wallclock_read(file, i) {
                    sink.emit(
                        file,
                        i,
                        "wall-clock read inside the deterministic simulation".to_string(),
                    );
                }
            }
        }
    }
}

/// `.unwrap()` / `.expect(…)` are banned in library non-test code.
pub struct UnwrapBan;

impl Pass for UnwrapBan {
    fn name(&self) -> &'static str {
        "unwrap"
    }
    fn hint(&self) -> &'static str {
        "library code must not panic on Option/Result; recover, propagate, or document the \
         invariant with `// xtask: allow(unwrap) — <why>`"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            if file.is_test_path() {
                continue;
            }
            for i in 0..file.toks.len() {
                let banned = file.is_ident(i, "unwrap") || file.is_ident(i, "expect");
                if banned && method_call(file, i).is_some() && !file.in_test(i) {
                    sink.emit(file, i, format!("call of .{}()", file.toks[i].text));
                }
            }
        }
    }
}

/// Raw wall-clock reads are banned in `crates/core/src` and
/// `crates/graph/src`: the drivers and the traversal kernel take time
/// through `kadabra-telemetry` so there is exactly one timing code path.
pub struct Wallclock;

impl Pass for Wallclock {
    fn name(&self) -> &'static str {
        "wallclock"
    }
    fn hint(&self) -> &'static str {
        "crates/core takes time through kadabra-telemetry (spans or Stopwatch) so there is \
         exactly one timing code path; do not read Instant/SystemTime directly"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            if !is_core_library_path(&file.rel) {
                continue;
            }
            for i in 0..file.toks.len() {
                if is_wallclock_read(file, i) && !file.in_test(i) {
                    sink.emit(file, i, "wall-clock read outside the telemetry crate".to_string());
                }
            }
        }
    }
}

/// `panic!` / `todo!` / `unimplemented!` are banned in `crates/mpisim/src`:
/// communicator error paths must surface typed `CommError`s.
pub struct CommPanic;

impl Pass for CommPanic {
    fn name(&self) -> &'static str {
        "comm-panic"
    }
    fn hint(&self) -> &'static str {
        "communicator code must surface typed CommErrors (RankFailed/Timeout/Poisoned) so \
         shrink-and-continue recovery can run; a panic here kills the whole simulated cluster"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        for file in &ws.files {
            if !is_comm_path(&file.rel) || file.is_test_path() {
                continue;
            }
            for i in 0..file.toks.len() {
                let panicky = file.is_ident(i, "panic")
                    || file.is_ident(i, "todo")
                    || file.is_ident(i, "unimplemented");
                if panicky
                    && file.is_punct(i + 1, "!")
                    && file.toks.get(i + 2).is_some_and(|t| matches!(t.kind, TokKind::Open(_)))
                    && !file.in_test(i)
                {
                    sink.emit(file, i, format!("{}! on a communicator path", file.toks[i].text));
                }
            }
        }
    }
}
