//! **hot-loop-hygiene**: the sampling hot path must stay allocation-,
//! lock-, and collective-free.
//!
//! PR 5 made `sample_batch` allocation-free and gated it with a perf
//! regression test; this pass keeps it that way structurally instead of
//! statistically. Two scopes are scanned:
//!
//! 1. every closure passed to a `.sample_batch(…)` call (the per-sample
//!    consume callback runs once per drawn pair — an allocation there
//!    multiplies by the sample count);
//! 2. the bodies of the hot-path functions themselves —
//!    `sample_batch`, `sample_shortest_path_into`, `sample`, and the
//!    batched-kernel entry points `sample_batch_into` / `expand_direction`
//!    (DESIGN.md §16) in `crates/core/src` / `crates/graph/src`;
//! 3. the estimate-cache read path in `crates/server/src` —
//!    `read_frontier_into`, `read_vertex`, and `read_stage_into` run on
//!    every query against the resident service, concurrently with the
//!    publishing writer; a lock or allocation there turns the wait-free
//!    seqlock read into a serialization point (DESIGN.md §13);
//! 4. the streaming-update apply/invalidate kernels in
//!    `crates/dynamic/src` — `apply_edits` runs per touched overlay row,
//!    `bfs_distances_into` per swept edge, and `classify_samples` per
//!    retained sample, so an allocation in any of them multiplies by the
//!    batch, sweep, or sample population (DESIGN.md §14).
//!
//! Banned inside those ranges: constructor allocations (`Vec::new`,
//! `vec![…]`, `Box::new`, `String::from`, `format!`, `with_capacity`, …),
//! allocating adaptors (`.collect()`, `.to_vec()`, `.to_owned()`,
//! `.to_string()`, `.clone()`), lock acquisition (`.lock()`, `.read()`,
//! `.write()`), and any call into the harvested comm API (a collective
//! inside the per-sample loop serializes the whole cluster). Reusing
//! pre-sized buffers is the sanctioned idiom, so `.push(…)`, `.reserve(…)`,
//! and `std::mem::take` stay legal.

use super::{
    comm_flow::harvest_comm_api, is_core_library_path, is_dynamic_path, is_server_path, method_call,
};
use crate::lex::TokKind;
use crate::{Pass, Sink, SourceFile, Workspace};

/// See module docs.
pub struct HotLoopHygiene;

/// Function names whose bodies are hot-path scope in core/graph.
const HOT_FNS: [&str; 5] = [
    "sample_batch",
    "sample_shortest_path_into",
    "sample",
    "sample_batch_into",
    "expand_direction",
];

/// Function names whose bodies are the service's cache read path.
const SERVER_READ_FNS: [&str; 3] = ["read_frontier_into", "read_vertex", "read_stage_into"];

/// Function names whose bodies are the streaming-update apply/invalidate
/// kernels in the dynamic crate.
const DYNAMIC_FNS: [&str; 3] = ["apply_edits", "bfs_distances_into", "classify_samples"];

/// Allocating constructors reached through `Type::method(…)` paths.
const ALLOC_TYPES: [&str; 6] = ["Vec", "VecDeque", "Box", "String", "HashMap", "HashSet"];
const ALLOC_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

/// Allocating / blocking method calls.
const BANNED_METHODS: [(&str, &str); 8] = [
    ("collect", "allocates a fresh collection"),
    ("to_vec", "allocates a copy"),
    ("to_owned", "allocates a copy"),
    ("to_string", "allocates a String"),
    ("clone", "deep-copies per sample"),
    ("lock", "blocks on a mutex"),
    ("read", "blocks on a rwlock"),
    ("write", "blocks on a rwlock"),
];

/// If token `i` begins a banned operation, returns `(anchor, message)`.
fn banned_op(file: &SourceFile, i: usize, comm_api: &[String]) -> Option<(usize, String)> {
    let t = file.toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // `vec![…]` / `format!(…)`.
    if (t.text == "vec" || t.text == "format")
        && file.is_punct(i + 1, "!")
        && file.toks.get(i + 2).is_some_and(|n| matches!(n.kind, TokKind::Open(_)))
    {
        return Some((i, format!("`{}!` allocates in the hot loop", t.text)));
    }
    // `Vec::new(…)`-style constructors.
    if ALLOC_TYPES.contains(&t.text.as_str())
        && file.is_punct(i + 1, "::")
        && file.toks.get(i + 2).is_some_and(|c| ALLOC_CTORS.iter().any(|n| c.is_ident(n)))
    {
        return Some((
            i,
            format!("`{}::{}` allocates in the hot loop", t.text, file.toks[i + 2].text),
        ));
    }
    // Banned method calls (must actually be `.name(…)`).
    if let Some((_, _)) = method_call(file, i) {
        for (name, why) in BANNED_METHODS {
            if t.text == name {
                return Some((i, format!("`.{name}()` {why}")));
            }
        }
        if comm_api.contains(&t.text) {
            return Some((
                i,
                format!("comm collective `.{}()` inside the sampling hot loop", t.text),
            ));
        }
    }
    None
}

/// Scans `[lo, hi)` of `file` and emits every banned op.
fn scan_range(
    file: &SourceFile,
    lo: usize,
    hi: usize,
    ctx: &str,
    comm_api: &[String],
    sink: &mut Sink<'_>,
) {
    let mut i = lo;
    while i < hi.min(file.toks.len()) {
        if let Some((anchor, msg)) = banned_op(file, i, comm_api) {
            sink.emit(file, anchor, format!("{msg} ({ctx})"));
        }
        i += 1;
    }
}

impl Pass for HotLoopHygiene {
    fn name(&self) -> &'static str {
        "hot-loop-hygiene"
    }
    fn hint(&self) -> &'static str {
        "the per-sample path must not allocate, lock, or run collectives (DESIGN.md §11): reuse \
         pre-sized scratch buffers (push/reserve are fine) and keep communication at batch \
         boundaries"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        let comm_api = harvest_comm_api(ws);
        for file in &ws.files {
            if file.is_test_path() {
                continue;
            }
            // Scope 1: closures handed to `.sample_batch(…)` anywhere.
            for i in 0..file.toks.len() {
                if !file.is_ident(i, "sample_batch") || file.in_test(i) {
                    continue;
                }
                let Some((open, close)) = method_call(file, i) else { continue };
                // Find the closure inside the argument list and scan its body.
                let mut j = open + 1;
                while j < close {
                    if file.is_punct(j, "|") {
                        let mut k = j + 1;
                        while k < close && !file.is_punct(k, "|") {
                            k += 1;
                        }
                        scan_range(
                            file,
                            k + 1,
                            close,
                            "sample_batch consume closure",
                            &comm_api,
                            sink,
                        );
                        break;
                    }
                    if let TokKind::Open(_) = file.toks[j].kind {
                        if file.pair[j] != usize::MAX {
                            j = file.pair[j];
                        }
                    }
                    j += 1;
                }
            }
            // Scope 2: the hot-path function bodies in core/graph.
            // Scope 3: the cache read-path bodies in the server crate.
            // Scope 4: the apply/invalidate kernels in the dynamic crate.
            let scoped_fns: &[&str] = if is_core_library_path(&file.rel) {
                &HOT_FNS
            } else if is_server_path(&file.rel) {
                &SERVER_READ_FNS
            } else if is_dynamic_path(&file.rel) {
                &DYNAMIC_FNS
            } else {
                continue;
            };
            for f in &file.ast.fns {
                if f.is_test || !scoped_fns.contains(&f.name.as_str()) {
                    continue;
                }
                let Some((lo, hi)) = f.body else { continue };
                scan_range(file, lo + 1, hi, &format!("body of `{}`", f.name), &comm_api, sink);
            }
        }
    }
}
