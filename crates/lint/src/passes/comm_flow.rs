//! **comm-error-flow**: every `Result<_, CommError>` must reach the
//! recovery path.
//!
//! The fault-tolerance layer (DESIGN.md §10) only works if rank-failure
//! signals propagate: a swallowed `CommError` turns a recoverable crash
//! into a silent wrong answer or a deadlock. `unused_must_use` already
//! rejects a bare `comm.barrier();` — but `let _ = …`, `.ok()`, and
//! `.unwrap_or*(…)` all defeat `must_use` while still discarding the error.
//! This pass closes that hole semantically:
//!
//! 1. It harvests the comm API from the AST itself — every `pub fn` in
//!    `crates/mpisim/src` whose return type mentions `CommError` (so the
//!    inventory tracks the real API, with no hardcoded method list).
//! 2. At every call site of a harvested method (`.name(…)` or
//!    `::name(…)`), it checks how the `Result` flows: `?`-propagation,
//!    `match`/`if let`, binding to a named variable, argument position, and
//!    tail-expression returns are all fine; `let _ = …;`, a statement-level
//!    drop, `.ok()`, and `.unwrap_or{,_else,_default}(…)` are flagged with
//!    the span of the call.

use super::{call_parens, chain_start, is_comm_path, range_has_ident};
use crate::lex::TokKind;
use crate::{Pass, Sink, SourceFile, Workspace};

/// See module docs.
pub struct CommErrorFlow;

/// Harvests the names of public mpisim functions returning
/// `Result<_, CommError>`. Shared with the hot-loop pass, which treats
/// these as collectives banned inside the sampling loop.
pub(super) fn harvest_comm_api(ws: &Workspace) -> Vec<String> {
    let mut names = Vec::new();
    for file in &ws.files {
        if !is_comm_path(&file.rel) {
            continue;
        }
        for f in &file.ast.fns {
            if !f.is_pub || f.is_test || f.name.is_empty() {
                continue;
            }
            let Some((lo, hi)) = f.ret else { continue };
            if range_has_ident(file, lo, hi, "CommError") && !names.contains(&f.name) {
                names.push(f.name.clone());
            }
        }
    }
    names.sort();
    names
}

/// How the `Result` of a comm call at `[open, close]` is consumed.
enum Flow {
    Ok,
    SwallowedOk,
    SwallowedUnwrapOr(String),
    LetUnderscore,
    DroppedStatement,
}

fn classify(file: &SourceFile, name_idx: usize, close: usize) -> Flow {
    let after = close + 1;
    // `.ok()` / `.unwrap_or*(…)` directly on the Result.
    if file.is_punct(after, ".") {
        if file.is_ident(after + 1, "ok") && call_parens(file, after + 1).is_some() {
            return Flow::SwallowedOk;
        }
        for m in ["unwrap_or", "unwrap_or_else", "unwrap_or_default"] {
            if file.is_ident(after + 1, m) && call_parens(file, after + 1).is_some() {
                return Flow::SwallowedUnwrapOr((*m).to_string());
            }
        }
        return Flow::Ok; // some other adaptor continues the chain
    }
    if !file.is_punct(after, ";") {
        // `?`, `,`, `)`, `}` (tail return), `{` (match/if-let scrutinee),
        // `else`, operators… — the value flows onward.
        return Flow::Ok;
    }
    // Statement ends right after the call: find what the statement binds.
    let start = chain_start(file, name_idx);
    let Some(prev) = start.checked_sub(1) else {
        return Flow::DroppedStatement;
    };
    let t = &file.toks[prev];
    if t.is_punct("=") {
        // `let _ = chain;` vs `let x = chain;` / `x = chain;`
        if prev >= 2 && file.is_ident(prev - 1, "_") && file.is_ident(prev - 2, "let") {
            return Flow::LetUnderscore;
        }
        return Flow::Ok;
    }
    if t.is_punct(";") || matches!(t.kind, TokKind::Open(_) | TokKind::Close(_)) {
        // The chain is the entire statement and its Result is dropped.
        return Flow::DroppedStatement;
    }
    // `return chain;`, `break chain;`, `=> chain;` …
    Flow::Ok
}

impl Pass for CommErrorFlow {
    fn name(&self) -> &'static str {
        "comm-error-flow"
    }
    fn hint(&self) -> &'static str {
        "a Result<_, CommError> carries a rank-failure signal; propagate it with `?`, match it, \
         or hand it to the recovery loop (DESIGN.md §10) — never `let _ =`, `.ok()` or \
         `.unwrap_or*` it away"
    }
    fn run(&self, ws: &Workspace, sink: &mut Sink<'_>) {
        let api = harvest_comm_api(ws);
        if api.is_empty() {
            return;
        }
        for file in &ws.files {
            if file.is_test_path() {
                continue;
            }
            for i in 0..file.toks.len() {
                let t = &file.toks[i];
                if t.kind != TokKind::Ident || !api.contains(&t.text) {
                    continue;
                }
                // Method or path call only: `.name(` / `::name(`.
                let dotted = i > 0 && (file.is_punct(i - 1, ".") || file.is_punct(i - 1, "::"));
                let Some((_, close)) = call_parens(file, i) else { continue };
                if !dotted || file.in_test(i) {
                    continue;
                }
                let verdict = classify(file, i, close);
                let msg = match verdict {
                    Flow::Ok => continue,
                    Flow::SwallowedOk => format!(
                        "`.ok()` discards the CommError of `{}` — the rank-failure signal \
                         never reaches recovery",
                        t.text
                    ),
                    Flow::SwallowedUnwrapOr(m) => {
                        format!("`.{m}(…)` substitutes a default for the CommError of `{}`", t.text)
                    }
                    Flow::LetUnderscore => {
                        format!("`let _ =` swallows the Result<_, CommError> of `{}`", t.text)
                    }
                    Flow::DroppedStatement => format!(
                        "the Result<_, CommError> of `{}` is dropped by this statement",
                        t.text
                    ),
                };
                sink.emit(file, i, msg);
            }
        }
    }
}
