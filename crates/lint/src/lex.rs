//! Rust tokenizer with precise spans.
//!
//! This is the foundation of the AST engine: unlike the legacy xtask scanner
//! (which blanks comments/strings in place and pattern-matches lines), this
//! lexer produces a real token stream where every token carries its 1-based
//! `(line, col)`. Line numbers are computed from the source bytes directly,
//! so no blanking step can ever drift them — the class of bug the legacy
//! scanner had with `\`-continued string literals.
//!
//! Coverage (everything this workspace's sources contain):
//! * identifiers, raw identifiers (`r#type`), keywords (kept as identifiers),
//! * lifetimes vs char literals (`'a` vs `'a'`, `'\n'`, `'('`),
//! * string literals with escapes, raw strings `r"…"`/`r#"…"#` (any hash
//!   count), byte/C-string prefixes (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`),
//! * nested block comments, line comments (collected for the waiver index),
//! * numbers (int/float, radix prefixes, suffixes),
//! * punctuation, with `::`, `->`, `=>`, `..=`, `..`, `&&`, `||` fused.
//!
//! Prefix detection is identifier-atomic: the lexer consumes a full
//! identifier first and only then decides whether it prefixes a literal, so
//! an identifier that merely *ends* in `r` or `b` can never be mistaken for
//! a raw-string opener.

/// Delimiter kind for [`TokKind::Open`] / [`TokKind::Close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix).
    Ident,
    /// Lifetime or loop label, e.g. `'a` (without the quote in `text`).
    Lifetime,
    /// Integer literal (any radix, with suffix).
    Int,
    /// Float literal.
    Float,
    /// String literal of any flavor (plain/raw/byte/C); `text` is the
    /// *content* only, so code matchers never see quote noise.
    Str,
    /// Char or byte literal; `text` is the content.
    Char,
    /// A punctuation token (possibly fused, e.g. `::`).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for literal conventions).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment, retained for the waiver index (`// xtask: allow(rule) — why`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//` comments).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` marker.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the retained comments.
#[derive(Debug, Default)]
pub struct LexOut {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Malformed input never panics: unterminated literals and
/// comments simply run to end of file, and unknown characters become
/// single-character [`TokKind::Punct`] tokens. Lint passes degrade
/// gracefully on files the parser cannot fully make sense of.
#[must_use]
pub fn lex(src: &str) -> LexOut {
    let mut cur = Cursor { chars: src.chars().collect(), i: 0, line: 1, col: 1 };
    let mut out = LexOut::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                let _ = cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut out, line),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur, &mut out, line),
            c if is_ident_start(c) => lex_ident_or_prefixed(&mut cur, &mut out, line, col),
            c if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line, col),
            '"' => {
                let text = lex_string(&mut cur);
                out.tokens.push(Token { kind: TokKind::Str, text, line, col });
            }
            '\'' => lex_quote(&mut cur, &mut out, line, col),
            '(' | '[' | '{' | ')' | ']' | '}' => {
                let kind = match c {
                    '(' => TokKind::Open(Delim::Paren),
                    '[' => TokKind::Open(Delim::Bracket),
                    '{' => TokKind::Open(Delim::Brace),
                    ')' => TokKind::Close(Delim::Paren),
                    ']' => TokKind::Close(Delim::Bracket),
                    _ => TokKind::Close(Delim::Brace),
                };
                let _ = cur.bump();
                out.tokens.push(Token { kind, text: c.to_string(), line, col });
            }
            _ => lex_punct(&mut cur, &mut out, line, col),
        }
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut LexOut, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        let _ = cur.bump();
    }
    out.comments.push(Comment { line, end_line: line, text });
}

/// Nested block comments: depth-tracked, `*/` takes precedence over `/*` at
/// the same position exactly as in rustc's scanner.
fn lex_block_comment(cur: &mut Cursor, out: &mut LexOut, line: u32) {
    let mut text = String::new();
    let mut depth = 0u32;
    loop {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push_str("/*");
                let _ = cur.bump();
                let _ = cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push_str("*/");
                let _ = cur.bump();
                let _ = cur.bump();
                if depth == 0 {
                    break;
                }
            }
            (Some(c), _) => {
                text.push(c);
                let _ = cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
    out.comments.push(Comment { line, end_line: cur.line, text });
}

/// Consumes an identifier and decides whether it prefixes a literal
/// (`r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`, `cr#"…"#`, `b'x'`, `r#ident`).
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut LexOut, line: u32, col: u32) {
    let mut ident = String::new();
    while let Some(c) = cur.peek(0) {
        if is_ident_cont(c) {
            ident.push(c);
            let _ = cur.bump();
        } else {
            break;
        }
    }

    let raw_capable = matches!(ident.as_str(), "r" | "br" | "cr");
    let plain_str_prefix = matches!(ident.as_str(), "b" | "c");
    match cur.peek(0) {
        // Raw string r"…" / r#"…"# (any hash count), possibly byte/C.
        Some('"' | '#') if raw_capable => {
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                for _ in 0..=hashes {
                    let _ = cur.bump(); // hashes + opening quote
                }
                let text = lex_raw_string_body(cur, hashes);
                out.tokens.push(Token { kind: TokKind::Str, text, line, col });
                return;
            }
            // `r#ident` raw identifier (hashes == 1, no quote).
            if ident == "r" && hashes == 1 {
                let _ = cur.bump(); // '#'
                ident.push('#');
                while let Some(c) = cur.peek(0) {
                    if is_ident_cont(c) {
                        ident.push(c);
                        let _ = cur.bump();
                    } else {
                        break;
                    }
                }
            }
            out.tokens.push(Token { kind: TokKind::Ident, text: ident, line, col });
        }
        // Byte/C string b"…" / c"…".
        Some('"') if plain_str_prefix => {
            let text = lex_string(cur);
            out.tokens.push(Token { kind: TokKind::Str, text, line, col });
        }
        // Byte char b'x'.
        Some('\'') if ident == "b" => {
            let _ = cur.bump(); // opening quote
            let text = lex_char_body(cur);
            out.tokens.push(Token { kind: TokKind::Char, text, line, col });
        }
        _ => out.tokens.push(Token { kind: TokKind::Ident, text: ident, line, col }),
    }
}

/// Consumes a `"…"` literal (cursor on the opening quote) and returns its
/// content. Escapes are skipped pair-wise; because the cursor tracks lines
/// itself, a `\`-continued string can never desynchronize line numbers.
fn lex_string(cur: &mut Cursor) -> String {
    let _ = cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                let _ = cur.bump(); // escaped char (incl. newline continuation)
            }
            _ => text.push(c),
        }
    }
    text
}

/// Consumes a raw-string body after the opening quote; `hashes` is the
/// opener's `#` count and the body ends only at `"` followed by that many.
fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek(1 + seen) == Some('#') {
                seen += 1;
            }
            if seen == hashes {
                for _ in 0..=hashes {
                    let _ = cur.bump(); // quote + closing hashes
                }
                return text;
            }
        }
        text.push(c);
        let _ = cur.bump();
    }
    text // unterminated: runs to EOF
}

/// Consumes a char-literal body after the opening quote.
fn lex_char_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    text
}

/// `'` disambiguation: char literal vs lifetime/label.
fn lex_quote(cur: &mut Cursor, out: &mut LexOut, line: u32, col: u32) {
    let one = cur.peek(1);
    let two = cur.peek(2);
    let is_char = match one {
        Some('\\') => true,
        Some(c) if is_ident_cont(c) => two == Some('\''),
        Some(_) => true, // '(' , '-' , … : punctuation chars are char literals
        None => true,
    };
    let _ = cur.bump(); // quote
    if is_char {
        let text = lex_char_body(cur);
        out.tokens.push(Token { kind: TokKind::Char, text, line, col });
    } else {
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if is_ident_cont(c) {
                text.push(c);
                let _ = cur.bump();
            } else {
                break;
            }
        }
        out.tokens.push(Token { kind: TokKind::Lifetime, text, line, col });
    }
}

fn lex_number(cur: &mut Cursor, out: &mut LexOut, line: u32, col: u32) {
    let mut text = String::new();
    let mut float = false;
    while let Some(c) = cur.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            let _ = cur.bump();
        } else if c == '.' && !float && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            // `1.5` consumes the dot; `0..n` leaves it for the range punct.
            float = true;
            text.push(c);
            let _ = cur.bump();
        } else {
            break;
        }
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    out.tokens.push(Token { kind, text, line, col });
}

/// Multi-character operators that matter to pass matchers are fused into one
/// token; everything else is a single-character punct.
const FUSED: &[&str] = &["::", "->", "=>", "..=", "..", "&&", "||"];

fn lex_punct(cur: &mut Cursor, out: &mut LexOut, line: u32, col: u32) {
    for f in FUSED {
        let fc: Vec<char> = f.chars().collect();
        if (0..fc.len()).all(|k| cur.peek(k) == Some(fc[k])) {
            for _ in 0..fc.len() {
                let _ = cur.bump();
            }
            out.tokens.push(Token { kind: TokKind::Punct, text: (*f).to_string(), line, col });
            return;
        }
    }
    // xtask: allow(unwrap) — peek(0) was Some in the caller's dispatch arm.
    let c = cur.bump().expect("caller peeked");
    out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line, col });
}

/// Builds the matching-delimiter table: `pair[i]` is the index of the token
/// matching the opening/closing delimiter at `i`, or `usize::MAX` for
/// non-delimiters and unbalanced delimiters.
#[must_use]
pub fn match_delims(tokens: &[Token]) -> Vec<usize> {
    let mut pair = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(usize, Delim)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Open(d) => stack.push((i, d)),
            TokKind::Close(d) => {
                // Pop to the innermost matching open; tolerate imbalance.
                if let Some(pos) = stack.iter().rposition(|&(_, od)| od == d) {
                    let (open, _) = stack[pos];
                    stack.truncate(pos);
                    pair[open] = i;
                    pair[i] = open;
                }
            }
            _ => {}
        }
    }
    pair
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_never_yield_idents() {
        let src = r##"let x = "SeqCst"; // SeqCst
            /* SeqCst /* nested SeqCst */ still */ let y = r#"SeqCst"#;"##;
        assert!(!idents(src).iter().any(|s| s == "SeqCst"));
    }

    #[test]
    fn code_tokens_survive() {
        let toks = lex("a.store(true, Ordering::SeqCst);").tokens;
        assert!(toks.iter().any(|t| t.is_ident("SeqCst")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn escaped_newline_keeps_line_numbers() {
        // The legacy scanner replaced the `\`-continued newline with a space,
        // drifting every later line; the token cursor cannot drift.
        let src = "let s = \"a\\\n   b\";\nlet x = SeqCst;\n";
        let toks = lex(src).tokens;
        let seq = toks.iter().find(|t| t.is_ident("SeqCst")).expect("found");
        assert_eq!(seq.line, 3);
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // `for"x"` never occurs in real Rust, but an ident-atomic lexer must
        // not treat the trailing `r` as a raw-string opener either way.
        let toks = lex("var \"x\" for").tokens;
        assert!(toks.iter().any(|t| t.is_ident("var")));
        assert!(toks.iter().any(|t| t.is_ident("for")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str && t.text == "x"));
    }

    #[test]
    fn raw_strings_all_hash_counts_and_prefixes() {
        for src in ["r\"a\"", "r#\"a\"#", "r##\"a\"#inner\"##", "b\"a\"", "br#\"a\"#", "cr\"a\""] {
            let toks = lex(src).tokens;
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0].kind, TokKind::Str, "{src}");
        }
        assert_eq!(lex("r##\"a\"#inner\"##").tokens[0].text, "a\"#inner");
    }

    #[test]
    fn raw_identifiers_keep_prefix() {
        let toks = lex("let r#type = r#match;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("r#type")));
        assert!(toks.iter().any(|t| t.is_ident("r#match")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; let p = '('; }").tokens;
        let lifes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn nested_block_comment_depth() {
        let out = lex("/* a /* b */ c */ let z = 2;");
        assert_eq!(out.comments.len(), 1);
        let toks = out.tokens;
        assert!(toks.iter().any(|t| t.is_ident("z")));
        assert!(!toks.iter().any(|t| t.is_ident("a") || t.is_ident("c")));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("for i in 0..n { let f = 1.5; let h = 0xFF_u32; }").tokens;
        assert!(toks.iter().any(|t| t.kind == TokKind::Float && t.text == "1.5"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Int && t.text == "0xFF_u32"));
        assert!(toks.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn delimiter_matching() {
        let toks = lex("f(a[b], {c})").tokens;
        let pair = match_delims(&toks);
        let open = toks.iter().position(|t| t.kind == TokKind::Open(Delim::Paren)).expect("open");
        assert_eq!(pair[open], toks.len() - 1);
        assert_eq!(pair[pair[open]], open);
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
