//! Minimal fixed-width table renderer for experiment output.

/// A plain-text table builder: add a header and rows, print aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align text.
                if c.chars().next().is_some_and(|ch| ch.is_ascii_digit()) {
                    line.push_str(&format!("{c:>w$}"));
                } else {
                    line.push_str(&format!("{c:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a nanosecond duration as adaptive human units.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Geometric mean of a slice (the paper's summary statistic for speedups).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
