//! Shared harness for the experiment binaries: the proxy instance suite
//! (Table I), environment knobs, and plain-text table rendering.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison).

pub mod artifact;
pub mod env;
pub mod instances;
pub mod run;
pub mod table;

pub use artifact::{
    des_run, des_run_labelled, emit, live_run, results_dir, BenchArtifact, BenchRun,
};
pub use env::{eps_default, scale_factor, seed};
pub use instances::{suite, Instance, InstanceClass};
pub use run::{paper_shape, prepare_instance, shared_baseline_shape, PreparedInstance};
pub use table::{fmt_ns, geomean, Table};
