//! `BENCH_<name>.json` emission shared by the experiment binaries.
//!
//! Every `exp_*` binary prints its human-readable tables to stdout (captured
//! into `results/*.txt` by `results/run_all.sh`) **and** writes a
//! machine-readable artifact next to them with the same numbers, in the
//! `kadabra-bench/v1` schema ([`kadabra_telemetry::bench`]). Plotting
//! scripts and `cargo xtask bench --smoke` consume the JSON; the text stays
//! the artifact of record for eyeballing.

use kadabra_cluster::{ReduceStrategy, SimConfig, SimReport};
use kadabra_core::BetweennessResult;
pub use kadabra_telemetry::{BenchArtifact, BenchRun};
use kadabra_telemetry::{CounterId, SpanId, Summary};
use std::path::PathBuf;

/// Where artifacts land: `KADABRA_RESULTS_DIR`, default `results/` (created
/// if missing) — the same directory `run_all.sh` redirects the text into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("KADABRA_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    PathBuf::from(dir)
}

/// One BENCH row from a DES report. The report's phase columns are projected
/// through a telemetry [`Summary`] so throughput and overlap come from the
/// exact same formulas as live traced runs (the one-schema rule; the DES
/// trace-conformance test in `kadabra-cluster` pins the column equality).
pub fn des_run(instance: &str, sim: &SimConfig, r: &SimReport) -> BenchRun {
    let mode = match sim.strategy {
        ReduceStrategy::IbarrierThenBlockingReduce => "des",
        ReduceStrategy::Ireduce => "des-ireduce",
        ReduceStrategy::FullyBlocking => "des-blocking",
    };
    des_run_labelled(instance, mode, sim.shape.ranks, sim.shape.threads_per_rank, r)
}

/// [`des_run`] with an explicit mode label and shape — for reports that have
/// no [`SimConfig`], like the naive fork-join simulator's.
pub fn des_run_labelled(instance: &str, mode: &str, p: usize, t: usize, r: &SimReport) -> BenchRun {
    let mut s = Summary::default();
    s.span_ns[SpanId::IbarrierWait.index()] = r.barrier_wait_ns;
    s.span_ns[SpanId::TransitionWait.index()] = r.transition_ns;
    s.span_ns[SpanId::Reduce.index()] = r.reduce_ns;
    s.span_ns[SpanId::Check.index()] = r.check_ns;
    s.span_ns[SpanId::Rebalance.index()] = r.rebalance_ns;
    s.counters[CounterId::Samples.index()] = r.samples;
    s.counters[CounterId::Epochs.index()] = r.epochs;
    s.counters[CounterId::BytesReduced.index()] = r.comm_bytes;
    s.counters[CounterId::RanksJoined.index()] = r.ranks_joined;
    s.counters[CounterId::SamplesStolen.index()] = r.samples_stolen;
    BenchRun::from_summary(instance, mode, p, t, r.total_ns(), &s)
}

/// One BENCH row from a live run's [`BetweennessResult`]. The Table-II stats
/// (which the drivers themselves derive from telemetry spans) map back onto
/// the matching [`Summary`] spans, so throughput and overlap again come from
/// the shared formulas.
pub fn live_run(instance: &str, mode: &str, p: usize, t: usize, r: &BetweennessResult) -> BenchRun {
    let mut s = Summary::default();
    s.span_ns[SpanId::IbarrierWait.index()] = r.stats.barrier_wait.as_nanos() as u64;
    s.span_ns[SpanId::TransitionWait.index()] = r.stats.transition_wait.as_nanos() as u64;
    s.span_ns[SpanId::Reduce.index()] = r.stats.reduce_time.as_nanos() as u64;
    s.span_ns[SpanId::Check.index()] = r.stats.check_time.as_nanos() as u64;
    s.counters[CounterId::Samples.index()] = r.samples;
    s.counters[CounterId::Epochs.index()] = r.stats.epochs;
    s.counters[CounterId::BytesReduced.index()] = r.stats.comm_bytes;
    BenchRun::from_summary(instance, mode, p, t, r.timings.total().as_nanos() as u64, &s)
}

/// Writes `BENCH_<name>.json` under [`results_dir`] and logs the path to
/// stderr. Emission failures are warnings, not aborts: the text tables on
/// stdout are already complete, and a read-only results directory should
/// not kill a finished multi-minute experiment.
pub fn emit(artifact: &BenchArtifact) {
    if artifact.runs.is_empty() {
        eprintln!("warning: BENCH_{}: no runs recorded; skipping artifact", artifact.name);
        return;
    }
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    match artifact.write_bench_json(&dir) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: BENCH_{}: write failed: {e}", artifact.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_core::ClusterShape;
    use kadabra_telemetry::validate_json;

    fn report() -> SimReport {
        SimReport {
            scores: vec![0.0; 4],
            samples: 9000,
            omega: 20_000,
            epochs: 4,
            ads_ns: 3_000_000,
            calibration_ns: 400_000,
            diameter_ns: 100_000,
            barrier_wait_ns: 50_000,
            reduce_ns: 10_000,
            transition_ns: 70_000,
            check_ns: 4_000,
            comm_bytes: 8192,
            total_threads: 8,
            ranks_lost: 0,
            recovery_ns: 0,
            ranks_joined: 0,
            samples_stolen: 0,
            rebalance_ns: 0,
        }
    }

    #[test]
    fn des_run_validates_and_reflects_the_report() {
        let sim = SimConfig {
            shape: ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 },
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let r = report();
        let run = des_run("proxy-orkut", &sim, &r);
        assert_eq!(run.mode, "des");
        assert_eq!(run.wall_ns, r.total_ns());
        assert_eq!(run.samples, 9000);
        assert_eq!(run.comm_bytes, 8192);
        // overlapped = barrier + transition, blocking = reduce.
        let expect = 120_000.0 / 130_000.0;
        assert!((run.reduction_overlap - expect).abs() < 1e-12);
        let mut a = BenchArtifact::new("unit", 1.0, 0.03, 42);
        a.push(run);
        validate_json(&a.to_json()).expect("artifact must validate");
    }

    #[test]
    fn ireduce_mode_is_labelled_and_fully_overlapped() {
        let sim = SimConfig {
            shape: ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
            strategy: ReduceStrategy::Ireduce,
            numa_penalty: false,
            steal: false,
        };
        let mut r = report();
        r.reduce_ns = 0; // the DES books no blocking reduce time for Ireduce
        let run = des_run("proxy-orkut", &sim, &r);
        assert_eq!(run.mode, "des-ireduce");
        assert!((run.reduction_overlap - 1.0).abs() < 1e-12);
    }
}
