//! Per-instance preparation shared by the experiment binaries.

use crate::instances::Instance;
use kadabra_cluster::{CostModel, ReduceStrategy, SimConfig};
use kadabra_core::{prepare, ClusterShape, KadabraConfig, Prepared};
use kadabra_graph::Graph;

/// Everything an experiment needs per instance: the graph (LCC), real
/// preparation (diameter, ω, calibration) and the measured cost model.
pub struct PreparedInstance {
    /// Instance name (matches [`crate::instances::Instance::name`]).
    pub name: &'static str,
    /// The paper instance this synthetic graph stands in for.
    pub proxies_for: &'static str,
    /// Largest connected component of the generated graph.
    pub graph: Graph,
    /// Algorithm configuration used for preparation.
    pub cfg: KadabraConfig,
    /// Preparation output: diameter bound, ω, calibration.
    pub prepared: Prepared,
    /// Measured per-operation cost model for the cluster simulator.
    pub cost: CostModel,
}

/// Builds, prepares and calibrates one instance. `probes` controls the
/// cost-model measurement effort.
pub fn prepare_instance(
    inst: &Instance,
    scale: f64,
    seed: u64,
    eps: f64,
    probes: usize,
) -> PreparedInstance {
    let graph = inst.build_lcc(scale, seed);
    let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
    let prepared = prepare(&graph, &cfg);
    let cost = CostModel::measure(&graph, &cfg, probes);
    PreparedInstance { name: inst.name, proxies_for: inst.proxies_for, graph, cfg, prepared, cost }
}

/// The paper's production configuration for `nodes` compute nodes: one rank
/// per NUMA socket (2 per node), 12 threads per rank, `Ibarrier` + blocking
/// `Reduce` (Sections IV-E/IV-F).
pub fn paper_shape(nodes: usize) -> SimConfig {
    SimConfig {
        shape: ClusterShape { ranks: 2 * nodes, ranks_per_node: 2, threads_per_rank: 12 },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: false,
        steal: false,
    }
}

/// The shared-memory state-of-the-art baseline (Ref. [24]): one process on
/// one compute node spanning both sockets with 24 threads — which is exactly
/// why it pays the NUMA penalty the paper measured at 20-30%.
pub fn shared_baseline_shape() -> SimConfig {
    SimConfig {
        shape: ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 24 },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: true,
        steal: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::suite;

    #[test]
    fn prepare_instance_smoke() {
        let s = suite();
        let pi = prepare_instance(&s[0], 0.05, 42, 0.1, 20);
        assert!(pi.graph.num_nodes() > 10);
        assert!(pi.prepared.omega > 0);
        assert_eq!(pi.cost.sample_ns.len(), 20);
    }

    #[test]
    fn paper_shape_matches_hardware() {
        let sim = paper_shape(16);
        assert_eq!(sim.shape.ranks, 32);
        assert_eq!(sim.shape.total_threads(), 384);
        assert_eq!(sim.shape.nodes(), 16);
        assert!(!sim.numa_penalty);
        let base = shared_baseline_shape();
        assert_eq!(base.shape.total_threads(), 24);
        assert!(base.numa_penalty);
    }
}
