//! The proxy instance suite standing in for the paper's Table I.
//!
//! The paper evaluates on KONECT/SNAP downloads up to 3.3 G edges; this
//! container has no network access and one core, so the suite consists of
//! synthetic proxies that preserve the two behavioural classes the paper's
//! results hinge on (DESIGN.md §3):
//!
//! * **road networks** (`roadNet-PA`, `roadNet-CA`, `dimacs9-NE`): sparse,
//!   high-diameter → many samples, many epochs, small frames;
//! * **complex networks** (orkut, dbpedia, wikipedia, twitter, friendster,
//!   uk-2002/2007): low diameter, power-law degrees → few epochs, large
//!   frames, communication-dominated.
//!
//! Sizes scale with `KADABRA_SCALE`; the defaults are tuned so the full
//! experiment suite completes on one core in minutes, not hours.

use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{
    gnm, grid, hyperbolic, rmat, GnmConfig, GridConfig, HyperbolicConfig, RmatConfig,
};
use kadabra_graph::Graph;

/// Behavioural class of an instance (drives expectations in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceClass {
    /// High-diameter, road-network-like.
    Road,
    /// Power-law complex network (social/hyperlink proxy).
    Complex,
    /// Geometric power-law network (hyperbolic model).
    Hyperbolic,
    /// Unstructured control.
    Control,
}

/// One suite instance: a name, its class, the paper instance it proxies,
/// and a builder.
pub struct Instance {
    /// Short identifier used in tables and CLI filters.
    pub name: &'static str,
    /// Structural family the instance belongs to.
    pub class: InstanceClass,
    /// The paper instance (Table I) this synthetic graph stands in for.
    pub proxies_for: &'static str,
    build: fn(f64, u64) -> Graph,
}

impl Instance {
    /// Builds the instance at the given scale/seed and extracts the largest
    /// connected component (the paper's preprocessing).
    pub fn build_lcc(&self, scale: f64, seed: u64) -> Graph {
        let g = (self.build)(scale, seed);
        let (lcc, _) = largest_component(&g);
        lcc
    }
}

fn dim(base: usize, scale: f64) -> usize {
    ((base as f64 * scale.sqrt()).round() as usize).max(4)
}
fn count(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(16)
}

/// The full Table-I proxy suite, ordered like the paper's table
/// (road networks first, complex networks by size).
pub fn suite() -> Vec<Instance> {
    vec![
        Instance {
            name: "road-pa",
            class: InstanceClass::Road,
            proxies_for: "roadNet-PA",
            build: |s, seed| {
                grid(GridConfig { rows: dim(110, s), cols: dim(110, s), diagonal_prob: 0.05, seed })
            },
        },
        Instance {
            name: "road-ca",
            class: InstanceClass::Road,
            proxies_for: "roadNet-CA",
            build: |s, seed| {
                grid(GridConfig {
                    rows: dim(150, s),
                    cols: dim(140, s),
                    diagonal_prob: 0.05,
                    seed: seed + 1,
                })
            },
        },
        Instance {
            name: "road-ne",
            class: InstanceClass::Road,
            proxies_for: "dimacs9-NE (high diameter)",
            build: |s, seed| {
                grid(GridConfig {
                    rows: dim(320, s),
                    cols: dim(90, s),
                    diagonal_prob: 0.02,
                    seed: seed + 2,
                })
            },
        },
        Instance {
            name: "rmat-orkut",
            class: InstanceClass::Complex,
            proxies_for: "orkut-links",
            build: |s, seed| rmat(RmatConfig::graph500(scale_pow2(13, s), 16, seed + 3)),
        },
        Instance {
            name: "rmat-dbpedia",
            class: InstanceClass::Complex,
            proxies_for: "dbpedia-link",
            build: |s, seed| rmat(RmatConfig::graph500(scale_pow2(14, s), 8, seed + 4)),
        },
        Instance {
            name: "rmat-wiki",
            class: InstanceClass::Complex,
            proxies_for: "wikipedia_link_en",
            build: |s, seed| rmat(RmatConfig::graph500(scale_pow2(15, s), 12, seed + 5)),
        },
        Instance {
            name: "rmat-twitter",
            class: InstanceClass::Complex,
            proxies_for: "twitter",
            build: |s, seed| rmat(RmatConfig::graph500(scale_pow2(16, s), 12, seed + 6)),
        },
        Instance {
            name: "hyper-friendster",
            class: InstanceClass::Hyperbolic,
            proxies_for: "friendster",
            build: |s, seed| {
                hyperbolic(HyperbolicConfig {
                    n: count(60_000, s),
                    avg_deg: 24.0,
                    alpha: 1.0,
                    seed: seed + 7,
                })
            },
        },
        Instance {
            name: "hyper-uk",
            class: InstanceClass::Hyperbolic,
            proxies_for: "dimacs10-uk-2007-05",
            build: |s, seed| {
                hyperbolic(HyperbolicConfig {
                    n: count(100_000, s),
                    avg_deg: 16.0,
                    alpha: 1.0,
                    seed: seed + 8,
                })
            },
        },
        Instance {
            name: "gnm-control",
            class: InstanceClass::Control,
            proxies_for: "(unstructured control)",
            build: |s, seed| {
                gnm(GnmConfig { n: count(30_000, s), m: count(240_000, s), seed: seed + 9 })
            },
        },
    ]
}

/// Scales a log2 size: scale 2 adds one level, scale 0.5 removes one.
fn scale_pow2(base: u32, scale: f64) -> u32 {
    let delta = scale.log2().round() as i32;
    (base as i32 + delta).clamp(6, 26) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_both_behavioural_classes() {
        let s = suite();
        assert!(s.iter().filter(|i| i.class == InstanceClass::Road).count() >= 3);
        assert!(s.iter().filter(|i| i.class == InstanceClass::Complex).count() >= 3);
        assert_eq!(s.len(), 10, "matches the paper's 10 real-world instances");
    }

    #[test]
    fn quarter_scale_instances_build_quickly() {
        for inst in suite() {
            let g = inst.build_lcc(0.1, 42);
            assert!(g.num_nodes() > 10, "{} too small", inst.name);
            assert!(g.num_edges() > 10, "{}", inst.name);
            assert!(g.check_canonical().is_ok(), "{}", inst.name);
        }
    }

    #[test]
    fn road_instances_have_high_diameter() {
        let s = suite();
        let road = s.iter().find(|i| i.name == "road-ne").unwrap();
        let g = road.build_lcc(0.25, 42);
        let (lb, _, _) = kadabra_graph::diameter::two_sweep(&g, 0);
        let rmat_inst = s.iter().find(|i| i.name == "rmat-orkut").unwrap();
        let g2 = rmat_inst.build_lcc(0.25, 42);
        let (lb2, _, _) = kadabra_graph::diameter::two_sweep(&g2, 0);
        assert!(lb > 10 * lb2, "road diameter {lb} must dwarf complex-network diameter {lb2}");
    }

    #[test]
    fn scale_pow2_clamps() {
        assert_eq!(scale_pow2(13, 1.0), 13);
        assert_eq!(scale_pow2(13, 2.0), 14);
        assert_eq!(scale_pow2(13, 0.5), 12);
        assert_eq!(scale_pow2(13, 0.25), 11);
        assert_eq!(scale_pow2(7, 0.25), 6); // clamped
    }

    #[test]
    fn builders_are_seed_deterministic() {
        let s = suite();
        let a = s[0].build_lcc(0.1, 7);
        let b = s[0].build_lcc(0.1, 7);
        assert_eq!(a, b);
    }
}
