//! **Service benchmark** backing `cargo xtask bench --smoke`: boots the
//! deterministic `kadabra-server` fixture, refines the resident tenant to
//! its schedule floor, and measures the query path — full client
//! round-trips for throughput and tail latency, and the bare estimate-cache
//! read path under the counting allocator for allocation freedom — emitting
//! `BENCH_server.json` (`kadabra-bench/v1` plus `queries_per_sec`,
//! `p50_ns`/`p99_ns`, and `read_allocs` extra columns).
//!
//! The binary is also the acceptance gate for ISSUE 7's service numbers:
//! it exits nonzero when service throughput drops below 1 000 queries/s or
//! when the cache read path allocates at all, so `cargo xtask bench
//! --smoke` (and the CI job wrapping it) fails loudly rather than emitting
//! a degraded artifact.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_server`
//! (`KADABRA_RESULTS_DIR` picks the output directory; xtask points it at
//! the repo root.)

use kadabra_alloctrack::CountingAlloc;
use kadabra_bench::{emit, seed, BenchArtifact, BenchRun};
use kadabra_server::cache::FrontierSnapshot;
use kadabra_server::testkit::{boot, TENANT};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Client round-trips in the throughput row.
const QUERIES: u64 = 20_000;

/// Reads in the allocation-gated cache row.
const READS: u64 = 50_000;

/// Acceptance floor for service throughput (queries per second).
const MIN_QPS: f64 = 1_000.0;

/// Nearest-rank percentile of an ascending-sorted latency series.
fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1] as f64
}

fn main() {
    let seed = seed();
    let server = boot(seed);
    let client = server.client();
    let tenant = server.tenant(TENANT).expect("fixture tenant");
    let floor = tenant.floor_eps();
    client.refine(TENANT, floor, 256).expect("schedule floor is reachable");
    let n = tenant.num_vertices();
    println!(
        "bench server: tenant `{TENANT}` ({n} vertices) refined to ε = {:.3}",
        tenant.achieved_eps()
    );

    // Row 1: full client round-trips — admission, telemetry span, cache
    // read — measured one query at a time for the latency distribution.
    let mut lat = Vec::with_capacity(QUERIES as usize);
    let start = Instant::now();
    for q in 0..QUERIES {
        let v = (q.wrapping_mul(7) % n as u64) as u32;
        let t0 = Instant::now();
        let est = client.vertex(TENANT, v).expect("frontier published");
        lat.push(t0.elapsed().as_nanos() as u64);
        std::hint::black_box(est);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    lat.sort_unstable();
    let qps = if wall_ns > 0 { QUERIES as f64 / (wall_ns as f64 / 1e9) } else { 0.0 };
    let (p50, p99) = (percentile(&lat, 50.0), percentile(&lat, 99.0));
    println!(
        "  service-vertex: {QUERIES} queries, {qps:.0} queries/s, p50 {p50:.0} ns, p99 {p99:.0} ns"
    );

    // Row 2: the bare cache read path under the counting allocator. A
    // warm-up pass proves the snapshot is at steady-state capacity; the
    // measured pass must not allocate at all (the lint enforces this
    // structurally, this row enforces it end to end).
    let cache = tenant.cache();
    let mut snap = FrontierSnapshot::new(n);
    assert!(cache.read_frontier_into(&mut snap), "frontier published");
    let before = ALLOC.counts();
    let t0 = Instant::now();
    for q in 0..READS {
        let v = (q.wrapping_mul(13) % n as u64) as usize;
        std::hint::black_box(cache.read_vertex(v));
        if q % 64 == 0 {
            std::hint::black_box(cache.read_frontier_into(&mut snap));
        }
    }
    let read_ns = t0.elapsed().as_nanos() as u64;
    let read_allocs = ALLOC.counts().since(&before).allocs;
    let ns_per_read = read_ns as f64 / READS as f64;
    println!("  cache-read: {READS} reads, {ns_per_read:.0} ns/read, {read_allocs} allocs");

    let mut bench = BenchArtifact::new("server", 1.0, floor, seed);
    bench.push(BenchRun {
        instance: "gnm-60".to_string(),
        mode: "service-vertex".to_string(),
        p: 1,
        t: 1,
        wall_ns,
        samples: QUERIES,
        epochs: 1,
        samples_per_sec: qps,
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("queries_per_sec".to_string(), qps),
            ("p50_ns".to_string(), p50),
            ("p99_ns".to_string(), p99),
        ],
    });
    bench.push(BenchRun {
        instance: "gnm-60".to_string(),
        mode: "cache-read".to_string(),
        p: 1,
        t: 1,
        wall_ns: read_ns,
        samples: READS,
        epochs: 1,
        samples_per_sec: if read_ns > 0 { READS as f64 / (read_ns as f64 / 1e9) } else { 0.0 },
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("read_allocs".to_string(), read_allocs as f64),
            ("ns_per_read".to_string(), ns_per_read),
        ],
    });
    emit(&bench);

    assert!(qps >= MIN_QPS, "service throughput {qps:.0} queries/s below the {MIN_QPS} floor");
    assert_eq!(read_allocs, 0, "the cache read path allocated {read_allocs} times");
}
