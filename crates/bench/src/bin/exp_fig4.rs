//! **Figure 4** — adaptive-sampling time per vertex as a function of the
//! graph size, on (a) R-MAT graphs and (b) random hyperbolic graphs, both
//! with `|E| = 30 |V|`, on 16 compute nodes.
//!
//! Paper: on R-MAT the time/|V| grows slightly superlinearly (the largest
//! graphs cost ~1.85x more per vertex than the smallest); on hyperbolic
//! graphs it is essentially flat.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_fig4`
//! The vertex counts are `2^scale` for scale in 12..=15 (shift with
//! `KADABRA_SCALE`; the paper uses 2^23..2^26, out of reach of one core).

use kadabra_bench::{
    des_run, emit, eps_default, paper_shape, scale_factor, seed, BenchArtifact, Table,
};
use kadabra_cluster::{simulate, ClusterSpec, CostModel};
use kadabra_core::{prepare, KadabraConfig};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{hyperbolic, rmat, HyperbolicConfig, RmatConfig};
use kadabra_graph::Graph;

fn run_series(
    name: &str,
    graphs: Vec<(u32, Graph)>,
    eps: f64,
    seed: u64,
    bench: &mut BenchArtifact,
) {
    let spec = ClusterSpec::default();
    let mut t = Table::new(["log2|V|", "|V| (lcc)", "|E|", "ADS time(s)", "time/|V| (ms)"]);
    let mut first_per_vertex = None;
    let mut last_per_vertex = 0.0;
    for (log_n, g) in graphs {
        let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
        let prepared = prepare(&g, &cfg);
        let cost = CostModel::measure(&g, &cfg, 300);
        let r = simulate(&g, &cfg, &prepared, &paper_shape(16), &spec, &cost);
        bench.push(des_run(&format!("{name}:2^{log_n}"), &paper_shape(16), &r));
        let ms_per_vertex = r.ads_ns as f64 / 1e6 / g.num_nodes() as f64 * 1000.0;
        first_per_vertex.get_or_insert(ms_per_vertex);
        last_per_vertex = ms_per_vertex;
        t.row([
            log_n.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            format!("{:.2}", r.ads_ns as f64 / 1e9),
            format!("{ms_per_vertex:.4}"),
        ]);
        eprintln!("  done: {name} scale {log_n}");
    }
    println!(
        "-- Fig 4{}: {name}, |E| = 30 |V|, 16 nodes --",
        if name.starts_with("R-MAT") { 'a' } else { 'b' }
    );
    t.print();
    if let Some(first) = first_per_vertex {
        println!(
            "growth factor largest/smallest time-per-vertex: {:.2}x (paper: ~1.85x on R-MAT, ~1x on hyperbolic)\n",
            last_per_vertex / first
        );
    }
}

fn main() {
    let eps = eps_default(0.01);
    let seed = seed();
    // Scales are fixed (12..=15) unless KADABRA_SCALE shifts them UP: small
    // graphs drown the measurement in termination-latency noise, so the
    // sweep never shifts below 2^12.
    let shift = scale_factor().log2().round().max(0.0) as i32;
    let scales: Vec<u32> = (12..=15).map(|s| (s + shift).clamp(12, 26) as u32).collect();
    println!(
        "Figure 4: scalability w.r.t. graph size (eps {eps}, seed {seed}, scales {scales:?})\n"
    );

    let rmat_graphs: Vec<(u32, Graph)> = scales
        .iter()
        .map(|&s| {
            let g = rmat(RmatConfig::paper(s, seed));
            let (lcc, _) = largest_component(&g);
            (s, lcc)
        })
        .collect();
    let mut bench = BenchArtifact::new("fig4", scale_factor(), eps, seed);
    run_series("R-MAT (Graph500 params)", rmat_graphs, eps, seed, &mut bench);

    let hyper_graphs: Vec<(u32, Graph)> = scales
        .iter()
        .map(|&s| {
            let g = hyperbolic(HyperbolicConfig::paper(1 << s, seed));
            let (lcc, _) = largest_component(&g);
            (s, lcc)
        })
        .collect();
    run_series("random hyperbolic (power-law 3)", hyper_graphs, eps, seed, &mut bench);
    emit(&bench);
}
