//! **Table I** — instance listing: |V|, |E|, diameter.
//!
//! Paper: ten real-world KONECT instances from 1.5M to 3.3G edges with
//! diameters from 10 (orkut) to 2098 (dimacs9-NE). This reproduction lists
//! the proxy suite (DESIGN.md §3) and verifies the same behavioural spread:
//! road proxies with diameters in the hundreds-to-thousands, complex-network
//! proxies with diameters around 10.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_table1`
//!
//! This is the one experiment with no `BENCH_*.json` artifact: it lists the
//! instances without benchmarking anything, so it has no rows in the
//! `kadabra-bench/v1` schema (which requires timed runs).

use kadabra_bench::{scale_factor, seed, suite, Table};
use kadabra_graph::diameter::{diameter, DiameterKind};
use kadabra_graph::stats::degree_stats;

fn main() {
    let scale = scale_factor();
    let seed = seed();
    println!("Table I: proxy instance suite (scale {scale}, seed {seed})\n");
    let mut table =
        Table::new(["Instance", "Proxy for", "|V|", "|E|", "Diameter", "deg-Gini", "MiB"]);
    for inst in suite() {
        let g = inst.build_lcc(scale, seed);
        let d = diameter(&g, 0, 4096);
        let diam = match d.kind {
            DiameterKind::Exact => format!("{}", d.exact()),
            DiameterKind::BoundsOnly => format!("{}..{}", d.lower, d.upper),
        };
        table.row([
            inst.name.to_string(),
            inst.proxies_for.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            diam,
            format!("{:.2}", degree_stats(&g).map_or(0.0, |s| s.gini)),
            format!("{:.1}", g.memory_bytes() as f64 / (1024.0 * 1024.0)),
        ]);
    }
    table.print();
    println!("\nPaper shape check: road proxies must have 10-100x the diameter of");
    println!("the complex-network proxies (paper: 794-2098 vs 10-45); degree Gini");
    println!("separates the near-regular road class from the power-law class.");
}
