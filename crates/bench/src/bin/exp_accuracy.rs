//! **Validation** — the probabilistic guarantee of Section I: with
//! probability ≥ 1 − δ, every estimated betweenness value is within ±ε of
//! the truth, for all vertices simultaneously, in every execution mode.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_accuracy`

use kadabra_baselines::brandes;
use kadabra_bench::{des_run, emit, eps_default, live_run, seed, BenchArtifact, Table};
use kadabra_cluster::{simulate, ClusterSpec, CostModel, ReduceStrategy, SimConfig};
use kadabra_core::{
    kadabra_epoch_mpi, kadabra_mpi_flat, kadabra_naive_parallel, kadabra_sequential,
    kadabra_shared, prepare, ClusterShape, KadabraConfig,
};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};

fn main() {
    let eps = eps_default(0.05);
    let seed0 = seed();
    println!("Accuracy validation (eps {eps}, delta 0.1)\n");

    let grid_g = grid(GridConfig { rows: 12, cols: 12, diagonal_prob: 0.05, seed: seed0 });
    let (gnm_g, _) = largest_component(&gnm(GnmConfig { n: 200, m: 700, seed: seed0 }));
    let mut bench = BenchArtifact::new("accuracy", 1.0, eps, seed0);

    for (gname, g) in [("grid-12x12", &grid_g), ("gnm-200", &gnm_g)] {
        let exact = brandes(g);
        let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed: seed0, ..Default::default() };
        let max_err = |scores: &[f64]| -> f64 {
            scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max)
        };

        let mut t = Table::new(["mode", "max |err|", "within eps", "samples"]);
        let r = kadabra_sequential(g, &cfg);
        bench.push(live_run(gname, "seq", 1, 1, &r));
        t.row([
            "sequential".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);
        let r = kadabra_shared(g, &cfg, 4);
        bench.push(live_run(gname, "shared", 1, 4, &r));
        t.row([
            "shared (epoch, T=4)".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);
        let r = kadabra_naive_parallel(g, &cfg, 4);
        bench.push(live_run(gname, "naive-parallel", 1, 4, &r));
        t.row([
            "naive parallel (T=4)".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);
        let r = kadabra_mpi_flat(g, &cfg, 4);
        bench.push(live_run(gname, "mpi", 4, 1, &r));
        t.row([
            "Algorithm 1 (P=4)".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);
        let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
        let r = kadabra_epoch_mpi(g, &cfg, shape);
        bench.push(live_run(gname, "epoch-mpi", 4, 2, &r));
        t.row([
            "Algorithm 2 (P=4,T=2)".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);
        let prepared = prepare(g, &cfg);
        let cost = CostModel::synthetic(100_000);
        let sim = SimConfig {
            shape: ClusterShape { ranks: 8, ranks_per_node: 2, threads_per_rank: 4 },
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let r = simulate(g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        bench.push(des_run(gname, &sim, &r));
        t.row([
            "DES (P=8,T=4)".into(),
            format!("{:.4}", max_err(&r.scores)),
            format!("{}", max_err(&r.scores) <= eps),
            r.samples.to_string(),
        ]);

        println!("-- instance {gname} --");
        t.print();
        println!();
    }

    emit(&bench);

    // Repeated-run guarantee: over many seeds, the failure rate must stay
    // well under delta = 0.1.
    let runs = 20;
    let exact = brandes(&grid_g);
    let mut failures = 0;
    for i in 0..runs {
        let cfg = KadabraConfig {
            epsilon: eps,
            delta: 0.1,
            seed: seed0 + 1000 + i,
            ..Default::default()
        };
        let r = kadabra_sequential(&grid_g, &cfg);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        if worst > eps {
            failures += 1;
        }
    }
    println!(
        "repeated sequential runs: {failures}/{runs} exceeded eps (guarantee allows <= {:.0}%)",
        0.1 * 100.0
    );
}
