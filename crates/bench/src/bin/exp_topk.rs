//! **Extension experiment** — adaptive top-k stopping vs. the uniform-ε run.
//!
//! The paper's introduction motivates small ε with top-vertex detection
//! ("only a handful of vertices have a betweenness score larger than
//! 0.01"); KADABRA's original paper offers a top-k mode that stops as soon
//! as the top-k is provably separated. This experiment measures how many
//! samples that saves on each instance class.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_topk`

use kadabra_bench::{emit, eps_default, live_run, scale_factor, seed, suite, BenchArtifact, Table};
use kadabra_core::{kadabra_sequential, kadabra_topk, KadabraConfig};

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.005);
    let seed = seed();
    let k = 3;
    println!("Extension: adaptive top-{k} stopping vs uniform-eps run");
    println!("(scale {scale}, eps {eps}, delta 0.1, seed {seed})\n");

    let mut t = Table::new([
        "Instance",
        "uniform samples",
        "top-k samples",
        "savings",
        "separated",
        "confirmed",
    ]);
    let mut bench = BenchArtifact::new("topk", scale, eps, seed);
    for inst in suite() {
        let g = inst.build_lcc(scale, seed);
        if g.num_nodes() <= k {
            continue;
        }
        let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
        let full = kadabra_sequential(&g, &cfg);
        let topk = kadabra_topk(&g, k, &cfg);
        bench.push(live_run(inst.name, "seq", 1, 1, &full));
        bench.push(live_run(inst.name, "topk", 1, 1, &topk.result));
        t.row([
            inst.name.to_string(),
            full.samples.to_string(),
            topk.result.samples.to_string(),
            format!("{:.1}x", full.samples as f64 / topk.result.samples as f64),
            topk.separated.to_string(),
            format!("{}/{k}", topk.confirmed.len()),
        ]);
        eprintln!("  done: {}", inst.name);
    }
    t.print();
    emit(&bench);
    println!("\nExpected shape: hub-dominated instances (complex networks) separate");
    println!("their top-k early and stop with large savings; flat-score instances");
    println!("(road networks, G(n,m)) fall back to the uniform criterion.");
}
