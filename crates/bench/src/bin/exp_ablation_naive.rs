//! **Ablation C (Section III-B)** — "simple" fork-join parallelization vs
//! the epoch-based framework, on a single simulated compute node.
//!
//! Paper: "simple parallelization techniques — such as taking a fixed number
//! of samples before each check of the stopping condition — ... fail to
//! overlap computation and aggregation [and] are known to not scale well,
//! even on shared-memory machines."
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_ablation_naive`

use kadabra_bench::{
    des_run, des_run_labelled, emit, eps_default, prepare_instance, scale_factor, seed, suite,
    BenchArtifact, Table,
};
use kadabra_cluster::{simulate, simulate_naive, ClusterSpec, ReduceStrategy, SimConfig};
use kadabra_core::ClusterShape;

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.03);
    let seed = seed();
    let spec = ClusterSpec::default();
    println!("Ablation C: naive fork-join vs epoch-based framework (one node)");
    println!("(scale {scale}, eps {eps}, seed {seed})\n");

    let instances = suite();
    let mut bench = BenchArtifact::new("ablation_naive", scale, eps, seed);
    for name in ["road-pa", "rmat-dbpedia"] {
        let inst = instances.iter().find(|i| i.name == name).unwrap();
        let pi = prepare_instance(inst, scale, seed, eps, 300);
        let mut t = Table::new([
            "threads",
            "naive ADS(s)",
            "epoch ADS(s)",
            "epoch advantage",
            "naive blocked(s)",
            "naive checks",
        ]);
        for threads in [1usize, 2, 4, 8, 16, 24] {
            let naive = simulate_naive(&pi.graph, &pi.cfg, &pi.prepared, threads, &spec, &pi.cost);
            let sim = SimConfig {
                shape: ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: threads },
                strategy: ReduceStrategy::IbarrierThenBlockingReduce,
                numa_penalty: true, // both run as one process spanning sockets
                steal: false,
            };
            let epoch = simulate(&pi.graph, &pi.cfg, &pi.prepared, &sim, &spec, &pi.cost);
            bench.push(des_run_labelled(name, "des-naive", 1, threads, &naive));
            bench.push(des_run(name, &sim, &epoch));
            t.row([
                threads.to_string(),
                format!("{:.3}", naive.ads_ns as f64 / 1e9),
                format!("{:.3}", epoch.ads_ns as f64 / 1e9),
                format!("{:.2}x", naive.ads_ns as f64 / epoch.ads_ns as f64),
                format!(
                    "{:.3}",
                    (naive.barrier_wait_ns + naive.reduce_ns + naive.check_ns) as f64 / 1e9
                ),
                naive.epochs.to_string(),
            ]);
            eprintln!("  done: {name} threads={threads}");
        }
        println!("-- instance {name} --");
        t.print();
        println!();
    }
    emit(&bench);
    println!("Expected shape: the epoch framework's advantage grows with the thread");
    println!("count — the naive scheme's barrier + non-overlapped aggregation eat the");
    println!("added parallelism.");
}
