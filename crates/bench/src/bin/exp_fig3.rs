//! **Figure 3** — (a) per-phase speedup (adaptive sampling; calibration)
//! over the shared-memory baseline, and (b) sampling throughput per compute
//! node (`samples/(time · P)`), as functions of the node count.
//!
//! Paper: the adaptive-sampling phase scales to all 16 nodes (16.1x),
//! calibration saturates because its δ-fit part is sequential, and
//! samples/(time·P) is flat — communication is almost fully overlapped.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_fig3`

use kadabra_bench::{
    des_run, emit, eps_default, geomean, paper_shape, prepare_instance, scale_factor, seed,
    shared_baseline_shape, suite, BenchArtifact, Table,
};
use kadabra_cluster::{simulate, ClusterSpec};

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.03);
    let seed = seed();
    let spec = ClusterSpec::default();
    println!("Figure 3: per-phase scalability (scale {scale}, eps {eps}, seed {seed})\n");

    let mut ads_speedups: Vec<Vec<f64>> = vec![Vec::new(); NODE_COUNTS.len()];
    let mut calib_speedups: Vec<Vec<f64>> = vec![Vec::new(); NODE_COUNTS.len()];
    let mut throughputs: Vec<Vec<f64>> = vec![Vec::new(); NODE_COUNTS.len()];
    let mut bench = BenchArtifact::new("fig3", scale, eps, seed);

    for inst in suite() {
        let pi = prepare_instance(&inst, scale, seed, eps, 300);
        let baseline =
            simulate(&pi.graph, &pi.cfg, &pi.prepared, &shared_baseline_shape(), &spec, &pi.cost);
        bench.push(des_run(pi.name, &shared_baseline_shape(), &baseline));
        for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
            let r =
                simulate(&pi.graph, &pi.cfg, &pi.prepared, &paper_shape(nodes), &spec, &pi.cost);
            bench.push(des_run(pi.name, &paper_shape(nodes), &r));
            ads_speedups[i].push(baseline.ads_ns as f64 / r.ads_ns as f64);
            calib_speedups[i].push(baseline.calibration_ns as f64 / r.calibration_ns as f64);
            let secs = r.ads_ns as f64 / 1e9;
            throughputs[i].push(r.samples as f64 / secs / nodes as f64);
        }
        eprintln!("  done: {}", pi.name);
    }

    println!("-- Fig 3a: per-phase geomean speedup over shared-memory SOTA --");
    let mut t = Table::new(["# compute nodes", "ADS speedup", "Calib. speedup", "paper shape"]);
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let note = match nodes {
            16 => "ADS 16.1x at P=16 (paper)",
            _ => "ADS near-linear; calib flattens",
        };
        t.row([
            nodes.to_string(),
            format!("{:.2}x", geomean(&ads_speedups[i])),
            format!("{:.2}x", geomean(&calib_speedups[i])),
            note.to_string(),
        ]);
    }
    t.print();

    println!("\n-- Fig 3b: sampling throughput, samples/(ADS time x nodes) --");
    let mut t2 = Table::new(["# compute nodes", "samples/(s*node), geomean", "normalized vs P=1"]);
    let base_thr = geomean(&throughputs[0]);
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let thr = geomean(&throughputs[i]);
        t2.row([nodes.to_string(), format!("{thr:.0}"), format!("{:.2}", thr / base_thr)]);
    }
    t2.print();
    emit(&bench);
    println!("\nExpected shape (paper Fig 3b): flat within ~600-1000 samples/(s*node) —");
    println!("linear sampling scalability regardless of node count.");
}
