//! **Ablation A (Section IV-D)** — epoch length tuning: how the `n0` rule
//! (samples between stopping-condition checks) trades termination latency
//! against check/communication overhead.
//!
//! Paper: "the stopping condition [must be checked] neither too rarely (to
//! avoid a high latency until the algorithm terminates) nor too often (to
//! avoid unnecessary computation)"; Ref. [24] tuned `n0 = 1000·(PT)^-1.33`.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_ablation_n0`

use kadabra_bench::{
    des_run, emit, eps_default, paper_shape, scale_factor, seed, suite, BenchArtifact, Table,
};
use kadabra_cluster::{simulate, ClusterSpec, CostModel};
use kadabra_core::prepare;

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.005);
    let seed = seed();
    let spec = ClusterSpec::default();
    println!("Ablation A: epoch length (n0 base) sweep at 16 nodes");
    println!("(scale {scale}, eps {eps}, seed {seed})\n");

    let instances = suite();
    let mut bench = BenchArtifact::new("ablation_n0", scale, eps, seed);
    for name in ["road-ca", "rmat-wiki"] {
        let inst = instances.iter().find(|i| i.name == name).unwrap();
        let g = inst.build_lcc(scale, seed);
        let mut t = Table::new([
            "n0 base",
            "n0 (PT=384)",
            "epochs",
            "samples",
            "overshoot vs best",
            "ADS time(ms)",
        ]);
        let mut min_samples = u64::MAX;
        let mut rows: Vec<(f64, u64, u64, u64, u64)> = Vec::new();
        for base in [1_000.0, 30_000.0, 300_000.0, 3_000_000.0] {
            let cfg = kadabra_core::KadabraConfig {
                epsilon: eps,
                delta: 0.1,
                seed,
                n0_base: base,
                ..Default::default()
            };
            let prepared = prepare(&g, &cfg);
            let cost = CostModel::measure(&g, &cfg, 200);
            let r = simulate(&g, &cfg, &prepared, &paper_shape(16), &spec, &cost);
            bench.push(des_run(&format!("{name}/n0={base}"), &paper_shape(16), &r));
            min_samples = min_samples.min(r.samples);
            rows.push((base, cfg.n0(384), r.epochs, r.samples, r.ads_ns));
            eprintln!("  done: {name} n0_base={base}");
        }
        for (base, n0, epochs, samples, ads_ns) in rows {
            t.row([
                format!("{base}"),
                n0.to_string(),
                epochs.to_string(),
                samples.to_string(),
                format!("{:.1}%", 100.0 * (samples as f64 / min_samples as f64 - 1.0)),
                format!("{:.2}", ads_ns as f64 / 1e6),
            ]);
        }
        println!("-- instance {name} --");
        t.print();
        println!();
    }
    emit(&bench);
    println!("Expected shape: tiny n0 => many epochs (check/communication overhead);");
    println!("huge n0 => few epochs but large sample overshoot past the stopping point.");
}
