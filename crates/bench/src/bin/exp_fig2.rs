//! **Figure 2** — (a) overall speedup of the epoch-based MPI algorithm over
//! the shared-memory state of the art, and (b) the phase-time breakdown, as
//! functions of the number of compute nodes.
//!
//! Paper: near-linear speedup for P ≤ 8 flattening afterwards (geom. mean
//! 7.4x at 16 nodes over all instances), with the sequential diameter and
//! calibration phases growing in relative weight as P rises.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_fig2`
//! Knobs: `KADABRA_SCALE`, `KADABRA_EPS` (default 0.03), `KADABRA_SEED`.

use kadabra_bench::{
    des_run, emit, eps_default, geomean, paper_shape, prepare_instance, scale_factor, seed,
    shared_baseline_shape, suite, BenchArtifact, Table,
};
use kadabra_cluster::{simulate, ClusterSpec};

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.03);
    let seed = seed();
    let spec = ClusterSpec::default();
    println!("Figure 2: parallel scalability on the instance suite");
    println!("(scale {scale}, eps {eps}, delta 0.1, seed {seed}; DES on {spec:?})\n");

    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); NODE_COUNTS.len()];
    // Phase fractions at each node count, averaged over instances:
    // [diameter, calibration, transition, barrier, reduce, check].
    let mut fractions: Vec<[f64; 6]> = vec![[0.0; 6]; NODE_COUNTS.len()];
    let mut per_instance =
        Table::new(["Instance", "P=1", "P=2", "P=4", "P=8", "P=16", "baseline ADS"]);
    let mut bench = BenchArtifact::new("fig2", scale, eps, seed);

    let instances = suite();
    for inst in &instances {
        let pi = prepare_instance(inst, scale, seed, eps, 300);
        let baseline =
            simulate(&pi.graph, &pi.cfg, &pi.prepared, &shared_baseline_shape(), &spec, &pi.cost);
        bench.push(des_run(pi.name, &shared_baseline_shape(), &baseline));
        let mut row = vec![pi.name.to_string()];
        for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
            let r =
                simulate(&pi.graph, &pi.cfg, &pi.prepared, &paper_shape(nodes), &spec, &pi.cost);
            bench.push(des_run(pi.name, &paper_shape(nodes), &r));
            let s = baseline.total_ns() as f64 / r.total_ns() as f64;
            speedups[i].push(s);
            row.push(format!("{s:.2}x"));
            let total = r.total_ns() as f64;
            fractions[i][0] += r.diameter_ns as f64 / total;
            fractions[i][1] += r.calibration_ns as f64 / total;
            fractions[i][2] += r.transition_ns as f64 / total;
            fractions[i][3] += r.barrier_wait_ns as f64 / total;
            fractions[i][4] += r.reduce_ns as f64 / total;
            fractions[i][5] += r.check_ns as f64 / total;
        }
        row.push(format!("{:.2}s", baseline.ads_ns as f64 / 1e9));
        per_instance.row(row);
        eprintln!("  done: {}", pi.name);
    }

    println!("-- Fig 2a: overall speedup over shared-memory SOTA (per instance) --");
    per_instance.print();

    let mut summary = Table::new(["# compute nodes", "geomean speedup", "paper shape"]);
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let note = match nodes {
            1 => "~1.2-1.3x (NUMA effect, Sec. IV-E)",
            16 => "7.4x geomean (paper)",
            _ => "near-linear for P<=8",
        };
        summary.row([
            nodes.to_string(),
            format!("{:.2}x", geomean(&speedups[i])),
            note.to_string(),
        ]);
    }
    println!();
    summary.print();

    println!("\n-- Fig 2b: mean fraction of running time per phase --");
    let mut breakdown = Table::new([
        "# nodes",
        "diameter",
        "calibration",
        "epoch transition",
        "ibarrier",
        "reduce",
        "check",
        "sampling(rest)",
    ]);
    let n_inst = instances.len() as f64;
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        let f: Vec<f64> = fractions[i].iter().map(|x| x / n_inst).collect();
        let rest = 1.0 - f.iter().sum::<f64>();
        breakdown.row([
            nodes.to_string(),
            format!("{:.1}%", 100.0 * f[0]),
            format!("{:.1}%", 100.0 * f[1]),
            format!("{:.1}%", 100.0 * f[2]),
            format!("{:.1}%", 100.0 * f[3]),
            format!("{:.1}%", 100.0 * f[4]),
            format!("{:.1}%", 100.0 * f[5]),
            format!("{:.1}%", 100.0 * rest),
        ]);
    }
    breakdown.print();
    emit(&bench);
    println!("\nExpected shape (paper Fig 2b): diameter+calibration fractions grow with P;");
    println!("epoch transition and ibarrier are overlapped; reduce is the only");
    println!("non-overlapped communication.");
}
