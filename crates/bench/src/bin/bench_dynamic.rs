//! **Streaming-update benchmark** backing `cargo xtask bench --smoke`:
//! converges an incremental `DynamicEngine` on a G(n, m) corpus, applies a
//! random 1% edge-update batch, and re-converges — then runs the same
//! pipeline from scratch on the mutated graph and compares the two by
//! deterministic work (edges scanned by sweeps, classification BFS, redraws
//! and refinement vs. recalibration plus a full adaptive run). Emits
//! `BENCH_dynamic.json` (`kadabra-bench/v1` plus `work_ratio`, `speedup`,
//! and `frac_invalidated` extra columns).
//!
//! The binary is the acceptance gate for the incremental path: it exits
//! nonzero when the update-and-reconverge work is not under
//! [`MAX_WORK_RATIO`] of the from-scratch run, when the speedup falls below
//! [`MIN_SPEEDUP`], or when either estimate drifts outside ε of the Brandes
//! oracle on the mutated graph — so `cargo xtask bench --smoke` (and the CI
//! job wrapping it) fails loudly rather than emitting a degraded artifact.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_dynamic`
//! (`KADABRA_RESULTS_DIR` picks the output directory; xtask points it at
//! the repo root.)

use kadabra_baselines::brandes;
use kadabra_bench::{emit, seed, BenchArtifact, BenchRun};
use kadabra_core::phases::{calibration_samples_for_thread, diameter_phase, scores_from_counts};
use kadabra_core::sampler::ThreadSampler;
use kadabra_core::{bounds, Calibration, KadabraConfig};
use kadabra_dynamic::{DynamicEngine, UpdateBatch};
use kadabra_graph::components::largest_component;
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::generators::{gnm, GnmConfig};
use kadabra_graph::{Graph, NodeId};
use kadabra_mpisim::FaultPlan;
use kadabra_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Pool shape of both engines.
const RANKS: usize = 2;
const THREADS: usize = 2;

/// Target accuracy both runs converge to.
const EPS: f64 = 0.02;

/// Acceptance ceiling: update-and-reconverge work as a fraction of the
/// from-scratch pipeline (ISSUE 8's 25% criterion).
const MAX_WORK_RATIO: f64 = 0.25;

/// Acceptance floor for the derived speedup (redundant with the ratio at
/// exactly 1/MAX_WORK_RATIO, kept as its own named gate).
const MIN_SPEEDUP: f64 = 4.0;

/// Fraction of edges touched by the update batch.
const BATCH_FRACTION: f64 = 0.01;

/// Calibration replayed at the pool's streams; returns everything the
/// engine needs plus the edges the calibration itself scanned (part of the
/// from-scratch cost that the incremental path never pays again).
fn setup(g: &Graph, seed: u64) -> (KadabraConfig, u64, u32, Calibration, u64) {
    let kcfg = KadabraConfig { epsilon: EPS, delta: 0.1, seed, ..Default::default() };
    let (vd, _) = diameter_phase(g, &kcfg);
    let omega = bounds::omega(kcfg.c, kcfg.epsilon, kcfg.delta, vd);
    let n = g.num_nodes();
    let total_threads = RANKS * THREADS;
    let mut total = vec![0u64; n + 1];
    let mut cal_edges = 0u64;
    for r in 0..RANKS {
        for t in 0..THREADS {
            let mut sampler = ThreadSampler::new(n, seed, r, t);
            let mut counts = vec![0u64; n + 1];
            let taken = calibration_samples_for_thread(
                g,
                &mut sampler,
                &mut counts[..n],
                &kcfg,
                omega,
                total_threads,
            );
            counts[n] = taken;
            cal_edges += sampler.stats.edges_scanned;
            for (a, &x) in total.iter_mut().zip(&counts) {
                *a += x;
            }
        }
    }
    let calibration = Calibration::from_counts(&total[..n], total[n], &kcfg);
    (kcfg, omega, vd, calibration, cal_edges)
}

/// A random 1% batch: half deletions of existing edges, half insertions of
/// fresh non-edges, drawn deterministically from `seed`.
fn random_batch(g: &Graph, seed: u64) -> UpdateBatch {
    let n = g.num_nodes() as NodeId;
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let k = ((edges.len() as f64 * BATCH_FRACTION).round() as usize).max(2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C_4ED1);
    let mut deletes = Vec::new();
    let mut picked = std::collections::BTreeSet::new();
    while deletes.len() < k / 2 {
        let e = edges[rng.gen_range(0..edges.len())];
        if picked.insert(e) {
            deletes.push(e);
        }
    }
    let mut inserts = Vec::new();
    while inserts.len() < k - deletes.len() {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if !g.has_edge(e.0, e.1) && picked.insert(e) {
            inserts.push(e);
        }
    }
    UpdateBatch::new(inserts, deletes).expect("batch drawn against the live edge set")
}

fn oracle_gap(global: &[u64], tau: u64, g: &Graph) -> f64 {
    let scores = scores_from_counts(&global[..g.num_nodes()], tau);
    scores.iter().zip(&brandes(g)).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

fn main() {
    let seed = seed();
    let base = {
        let g = gnm(GnmConfig { n: 300, m: 900, seed });
        let (lcc, _) = largest_component(&g);
        lcc
    };
    let n = base.num_nodes();
    let m = base.num_edges();
    let tel = Telemetry::stats_only();
    println!("bench dynamic: gnm lcc ({n} vertices, {m} edges), eps = {EPS}");

    // Incremental path: converge, snapshot the work counter, then pay only
    // for the update batch and its re-convergence.
    let (kcfg, omega, vd, calibration, _) = setup(&base, seed);
    let mut inc = DynamicEngine::new(
        base.clone(),
        kcfg,
        omega,
        vd,
        RANKS,
        THREADS,
        4,
        FaultPlan::ideal(seed),
    );
    inc.refine_until(EPS, 256, &calibration, &tel);
    let work_before = inc.work_edges();

    let batch = random_batch(&base, seed);
    let batch_len = batch.len();
    let t0 = Instant::now();
    let up = inc.apply_update(&batch, &calibration, &tel).expect("random batch applies");
    let rep = inc.refine_until(EPS, 256, &calibration, &tel);
    let update_ns = t0.elapsed().as_nanos() as u64;
    let inc_work = inc.work_edges() - work_before;
    let frac_invalidated = up.invalidated as f64 / (up.invalidated + up.retained).max(1) as f64;
    println!(
        "  incremental: {batch_len}-edge batch, {} of {} samples invalidated ({:.1}%), \
         {inc_work} edges, {:.1} ms",
        up.invalidated,
        up.invalidated + up.retained,
        100.0 * frac_invalidated,
        update_ns as f64 / 1e6
    );

    // From-scratch path on the mutated graph: diameter, calibration, and a
    // full adaptive run — the pipeline an update would otherwise re-run.
    let mutated = {
        let mut edges = Vec::new();
        inc.view().for_each_edge(|u, v| edges.push((u, v)));
        graph_from_edges(n, &edges)
    };
    let t0 = Instant::now();
    let (fs_kcfg, fs_omega, fs_vd, fs_calibration, fs_cal_edges) = setup(&mutated, seed);
    let mut fs = DynamicEngine::new(
        mutated.clone(),
        fs_kcfg,
        fs_omega,
        fs_vd,
        RANKS,
        THREADS,
        4,
        FaultPlan::ideal(seed),
    );
    let fs_rep = fs.refine_until(EPS, 256, &fs_calibration, &tel);
    let scratch_ns = t0.elapsed().as_nanos() as u64;
    let fs_work = fs.work_edges() + fs_cal_edges;
    println!("  from-scratch: {fs_work} edges, {:.1} ms", scratch_ns as f64 / 1e6);

    let work_ratio = inc_work as f64 / fs_work.max(1) as f64;
    let speedup = fs_work as f64 / inc_work.max(1) as f64;
    let inc_gap = oracle_gap(&rep.global, rep.tau, &mutated);
    let fs_gap = oracle_gap(&fs_rep.global, fs_rep.tau, &mutated);
    println!(
        "  work ratio {work_ratio:.3} (speedup {speedup:.1}x), oracle gap {inc_gap:.4} \
         incremental / {fs_gap:.4} from-scratch"
    );

    let mut bench = BenchArtifact::new("dynamic", 1.0, EPS, seed);
    bench.push(BenchRun {
        instance: format!("gnm-{n}"),
        mode: "incremental-update".to_string(),
        p: RANKS,
        t: THREADS,
        wall_ns: update_ns,
        samples: rep.tau,
        epochs: 1,
        samples_per_sec: if update_ns > 0 {
            rep.tau as f64 / (update_ns as f64 / 1e9)
        } else {
            0.0
        },
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("work_edges".to_string(), inc_work as f64),
            ("work_ratio".to_string(), work_ratio),
            ("speedup".to_string(), speedup),
            ("frac_invalidated".to_string(), frac_invalidated),
            ("oracle_gap".to_string(), inc_gap),
        ],
    });
    bench.push(BenchRun {
        instance: format!("gnm-{n}"),
        mode: "from-scratch".to_string(),
        p: RANKS,
        t: THREADS,
        wall_ns: scratch_ns,
        samples: fs_rep.tau,
        epochs: 1,
        samples_per_sec: if scratch_ns > 0 {
            fs_rep.tau as f64 / (scratch_ns as f64 / 1e9)
        } else {
            0.0
        },
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("work_edges".to_string(), fs_work as f64),
            ("oracle_gap".to_string(), fs_gap),
        ],
    });
    emit(&bench);

    assert!(
        work_ratio < MAX_WORK_RATIO,
        "incremental update cost {work_ratio:.3} of from-scratch, gate is {MAX_WORK_RATIO}"
    );
    assert!(speedup >= MIN_SPEEDUP, "speedup {speedup:.1}x below the {MIN_SPEEDUP}x floor");
    assert!(inc_gap <= EPS, "incremental estimate drifted {inc_gap:.4} from the oracle (ε {EPS})");
    assert!(fs_gap <= EPS, "from-scratch estimate off by {fs_gap:.4} (ε {EPS})");
}
