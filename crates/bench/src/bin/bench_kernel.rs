//! **Sampling-kernel benchmark** backing `cargo xtask bench --kernel`:
//! measures the single-thread hot path — `ThreadSampler::sample_batch` over
//! the balanced bidirectional BFS — on the R-MAT perf instance and emits
//! `BENCH_kernel.json` (`kadabra-bench/v1` plus `ns_per_sample` /
//! `allocs_per_sample` extra columns).
//!
//! Rows produced:
//!
//! * `kernel` — degree-descending relabeled CSR through the *default*
//!   kernel configuration (batched, B = 8; DESIGN.md §16), the exact
//!   layout + kernel every driver actually samples with (DESIGN.md §11).
//!   This row is the regression gate: `cargo xtask bench --kernel --check`
//!   fails CI when its `samples_per_sec` drops more than 15% below the
//!   committed baseline, or when `allocs_per_sample` is nonzero.
//! * `kernel-b1` / `kernel-b4` / `kernel-b64` — the batch-width sweep on the
//!   same relabeled CSR (B = 1 is the scalar kernel). Diagnostic columns:
//!   they separate batching wins from layout or algorithmic changes. Every
//!   batched row also reports the measured *row-share factor* — logical
//!   edges scanned over physical CSR entries decoded — which is exactly the
//!   decode amortization batching achieves (DESIGN.md §16 discusses why it
//!   is ≈ 1 on this cache-resident instance).
//! * `kernel-raw` — the default kernel on the same graph in generator-order
//!   labeling, so layout regressions are distinguishable from algorithmic
//!   ones. Its sampler (and batch scratch) is sized from the *raw* graph —
//!   [`ThreadSampler`] asserts the scratch matches the graph it runs on.
//!
//! The binary registers [`kadabra_alloctrack::CountingAlloc`] as its global
//! allocator; after the warm-up batch the measured batch must not allocate.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_kernel`
//! (`KADABRA_RESULTS_DIR` picks the output directory, default `results/`;
//! `KADABRA_KERNEL_ITERS` overrides the measured batch size.)

use kadabra_alloctrack::CountingAlloc;
use kadabra_bench::{emit, seed, BenchArtifact, BenchRun};
use kadabra_core::{KernelOptions, ThreadSampler};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{rmat, RmatConfig};
use kadabra_graph::Graph;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Extra samples taken before measurement starts. The warm-up also runs one
/// full batch of the measured size, so every scratch buffer — frontiers,
/// meeting cut, path, and the per-batch pair buffer (which grows with the
/// batch size) — reaches steady-state capacity before counting begins.
const WARMUP: u64 = 2_000;

fn iters() -> u64 {
    match std::env::var("KADABRA_KERNEL_ITERS") {
        Ok(s) => match s.parse::<u64>() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!("warning: ignoring invalid KADABRA_KERNEL_ITERS={s:?}; using default");
                100_000
            }
        },
        Err(_) => 100_000,
    }
}

fn measure(
    instance: &str,
    mode: &str,
    g: &Graph,
    iters: u64,
    seed: u64,
    kernel: KernelOptions,
) -> BenchRun {
    // Scratch is sized from the graph actually measured — `sample_batch`
    // asserts this, so a row can never silently run with foreign scratch.
    let mut sampler = ThreadSampler::with_kernel(g.num_nodes(), seed, 0, 0, kernel);
    let mut interior_visits = 0u64;
    sampler.sample_batch(g, WARMUP, |interior| interior_visits += interior.len() as u64);
    sampler.sample_batch(g, iters, |interior| interior_visits += interior.len() as u64);

    let before = ALLOC.counts();
    let occ_before = sampler.kernel_occupancy();
    let phys_before = sampler.kernel_physical_edges();
    let edges_before = sampler.stats.edges_scanned;
    let start = Instant::now();
    sampler.sample_batch(g, iters, |interior| interior_visits += interior.len() as u64);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let allocs = ALLOC.counts().since(&before).allocs;
    let occ_after = sampler.kernel_occupancy();
    let rounds = occ_after.0 - occ_before.0;
    let lane_rounds = occ_after.1 - occ_before.1;
    let occupancy = if rounds > 0 { lane_rounds as f64 / rounds as f64 } else { 0.0 };
    let edges_delta = sampler.stats.edges_scanned - edges_before;
    let edges_per_sample = edges_delta as f64 / iters as f64;
    let phys_delta = sampler.kernel_physical_edges() - phys_before;
    let row_share = if phys_delta > 0 { edges_delta as f64 / phys_delta as f64 } else { 0.0 };

    let ns_per_sample = wall_ns as f64 / iters as f64;
    let samples_per_sec = if wall_ns > 0 { iters as f64 / (wall_ns as f64 / 1e9) } else { 0.0 };
    let allocs_per_sample = allocs as f64 / iters as f64;
    println!(
        "  {instance} {mode}: {iters} samples, {ns_per_sample:.0} ns/sample, \
         {samples_per_sec:.0} samples/s, {allocs} allocs ({allocs_per_sample:.4}/sample, \
         {interior_visits} interior visits, {edges_per_sample:.0} edges/sample, \
         B={} occ={occupancy:.2} share={row_share:.2})",
        kernel.batch_width
    );
    BenchRun {
        instance: instance.to_string(),
        mode: mode.to_string(),
        p: 1,
        t: 1,
        wall_ns,
        samples: iters,
        epochs: 1,
        samples_per_sec,
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("ns_per_sample".to_string(), ns_per_sample),
            ("allocs_per_sample".to_string(), allocs_per_sample),
            ("batch_width".to_string(), kernel.batch_width as f64),
            ("batch_occupancy".to_string(), occupancy),
            ("row_share_factor".to_string(), row_share),
        ],
    }
}

fn main() {
    let seed = seed();
    let iters = iters();
    let (g, _) = largest_component(&rmat(RmatConfig::graph500(14, 8, 1)));
    println!(
        "bench kernel: rmat-s14-lcc ({} vertices, {} edges), {iters} samples/mode",
        g.num_nodes(),
        g.num_edges()
    );

    let mut bench = BenchArtifact::new("kernel", 1.0, 0.0, seed);
    let (rg, _perm) = g.relabel_by_degree();
    // Gate row: default kernel (batched, B = 8) on the production layout.
    bench.push(measure("rmat-s14-lcc", "kernel", &rg, iters, seed, KernelOptions::default()));
    // Batch-width sweep (diagnostic; B = 1 is the scalar kernel).
    for width in [1usize, 4, 64] {
        let mode = format!("kernel-b{width}");
        bench.push(measure("rmat-s14-lcc", &mode, &rg, iters, seed, KernelOptions::batched(width)));
    }
    bench.push(measure("rmat-s14-lcc", "kernel-raw", &g, iters, seed, KernelOptions::default()));
    emit(&bench);
}
