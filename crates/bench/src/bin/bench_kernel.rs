//! **Sampling-kernel benchmark** backing `cargo xtask bench --kernel`:
//! measures the single-thread hot path — `ThreadSampler::sample_batch` over
//! the balanced bidirectional BFS — on the R-MAT perf instance and emits
//! `BENCH_kernel.json` (`kadabra-bench/v1` plus `ns_per_sample` /
//! `allocs_per_sample` extra columns).
//!
//! Two rows are produced:
//!
//! * `kernel` — degree-descending relabeled CSR, the layout every driver
//!   actually samples on (DESIGN.md §11). This row is the regression gate:
//!   `cargo xtask bench --kernel --check` fails CI when its `samples_per_sec`
//!   drops more than 15% below the committed baseline, or when
//!   `allocs_per_sample` is nonzero.
//! * `kernel-raw` — the same graph in generator-order labeling, kept as a
//!   diagnostic column so layout regressions are distinguishable from
//!   algorithmic ones.
//!
//! The binary registers [`kadabra_alloctrack::CountingAlloc`] as its global
//! allocator; after the warm-up batch the measured batch must not allocate.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_kernel`
//! (`KADABRA_RESULTS_DIR` picks the output directory, default `results/`;
//! `KADABRA_KERNEL_ITERS` overrides the measured batch size.)

use kadabra_alloctrack::CountingAlloc;
use kadabra_bench::{emit, seed, BenchArtifact, BenchRun};
use kadabra_core::ThreadSampler;
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{rmat, RmatConfig};
use kadabra_graph::Graph;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Extra samples taken before measurement starts. The warm-up also runs one
/// full batch of the measured size, so every scratch buffer — frontiers,
/// meeting cut, path, and the per-batch pair buffer (which grows with the
/// batch size) — reaches steady-state capacity before counting begins.
const WARMUP: u64 = 2_000;

fn iters() -> u64 {
    match std::env::var("KADABRA_KERNEL_ITERS") {
        Ok(s) => match s.parse::<u64>() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!("warning: ignoring invalid KADABRA_KERNEL_ITERS={s:?}; using default");
                100_000
            }
        },
        Err(_) => 100_000,
    }
}

fn measure(instance: &str, mode: &str, g: &Graph, iters: u64, seed: u64) -> BenchRun {
    let mut sampler = ThreadSampler::new(g.num_nodes(), seed, 0, 0);
    let mut interior_visits = 0u64;
    sampler.sample_batch(g, WARMUP, |interior| interior_visits += interior.len() as u64);
    sampler.sample_batch(g, iters, |interior| interior_visits += interior.len() as u64);

    let before = ALLOC.counts();
    let start = Instant::now();
    sampler.sample_batch(g, iters, |interior| interior_visits += interior.len() as u64);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let allocs = ALLOC.counts().since(&before).allocs;

    let ns_per_sample = wall_ns as f64 / iters as f64;
    let samples_per_sec = if wall_ns > 0 { iters as f64 / (wall_ns as f64 / 1e9) } else { 0.0 };
    let allocs_per_sample = allocs as f64 / iters as f64;
    println!(
        "  {instance} {mode}: {iters} samples, {ns_per_sample:.0} ns/sample, \
         {samples_per_sec:.0} samples/s, {allocs} allocs ({allocs_per_sample:.4}/sample, \
         {interior_visits} interior visits)"
    );
    BenchRun {
        instance: instance.to_string(),
        mode: mode.to_string(),
        p: 1,
        t: 1,
        wall_ns,
        samples: iters,
        epochs: 1,
        samples_per_sec,
        reduction_overlap: 0.0,
        comm_bytes: 0,
        extras: vec![
            ("ns_per_sample".to_string(), ns_per_sample),
            ("allocs_per_sample".to_string(), allocs_per_sample),
        ],
    }
}

fn main() {
    let seed = seed();
    let iters = iters();
    let (g, _) = largest_component(&rmat(RmatConfig::graph500(14, 8, 1)));
    println!(
        "bench kernel: rmat-s14-lcc ({} vertices, {} edges), {iters} samples/mode",
        g.num_nodes(),
        g.num_edges()
    );

    let mut bench = BenchArtifact::new("kernel", 1.0, 0.0, seed);
    let (rg, _perm) = g.relabel_by_degree();
    bench.push(measure("rmat-s14-lcc", "kernel", &rg, iters, seed));
    bench.push(measure("rmat-s14-lcc", "kernel-raw", &g, iters, seed));
    emit(&bench);
}
