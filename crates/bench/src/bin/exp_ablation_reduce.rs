//! **Ablation B (Section IV-F)** — global-reduction strategy:
//! `MPI_Ireduce` vs `MPI_Ibarrier` + blocking `MPI_Reduce` vs a fully
//! blocking reduce.
//!
//! Paper: "MPI_Ireduce often progresses much slowlier than MPI_Reduce in
//! common MPI implementations. Hence ... we first perform a non-blocking
//! barrier followed by a blocking MPI_Reduce. ... switching to a fully
//! blocking approach was again detrimental to performance."
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_ablation_reduce`

use kadabra_bench::{
    des_run, emit, eps_default, prepare_instance, scale_factor, seed, suite, BenchArtifact, Table,
};
use kadabra_cluster::{simulate, ClusterSpec, NetworkModel, ReduceStrategy, SimConfig};
use kadabra_core::ClusterShape;

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.005);
    let seed = seed();
    // The paper's operating point has state frames of 100s of MiB to GiB per
    // epoch, i.e. frame-transfer times that are a material fraction of an
    // epoch. Our scaled-down instances have KiB-scale frames, so to place the
    // ablation at the same operating point the interconnect bandwidth is
    // scaled down proportionally (latency and topology untouched).
    let spec = ClusterSpec {
        network: NetworkModel {
            alpha_ns: 2_000,
            bytes_per_ns: 0.25,
            ireduce_progress_penalty: 4.0,
        },
        ..ClusterSpec::default()
    };
    println!("Ablation B: reduction strategy sweep on hyper-uk");
    println!(
        "(scale {scale}, eps {eps}, seed {seed}; ireduce progress penalty {}x;\n bandwidth scaled to {} GB/s to match the paper's frame-size/epoch ratio)\n",
        spec.network.ireduce_progress_penalty, spec.network.bytes_per_ns
    );

    let instances = suite();
    let inst = instances.iter().find(|i| i.name == "hyper-uk").unwrap();
    let pi = prepare_instance(inst, scale, seed, eps, 300);

    let mut t = Table::new([
        "# nodes",
        "ibarrier+reduce (ms)",
        "ireduce (ms)",
        "fully blocking (ms)",
        "best",
    ]);
    let mut bench = BenchArtifact::new("ablation_reduce", scale, eps, seed);
    for nodes in [2usize, 4, 8, 16] {
        let shape = ClusterShape { ranks: 2 * nodes, ranks_per_node: 2, threads_per_rank: 12 };
        let mut times = Vec::new();
        for strategy in [
            ReduceStrategy::IbarrierThenBlockingReduce,
            ReduceStrategy::Ireduce,
            ReduceStrategy::FullyBlocking,
        ] {
            let sim = SimConfig { shape, strategy, numa_penalty: false, steal: false };
            let r = simulate(&pi.graph, &pi.cfg, &pi.prepared, &sim, &spec, &pi.cost);
            bench.push(des_run(pi.name, &sim, &r));
            times.push(r.ads_ns);
        }
        let best = ["ibarrier+reduce", "ireduce", "blocking"]
            [times.iter().enumerate().min_by_key(|(_, &t)| t).unwrap().0];
        t.row([
            nodes.to_string(),
            format!("{:.2}", times[0] as f64 / 1e6),
            format!("{:.2}", times[1] as f64 / 1e6),
            format!("{:.2}", times[2] as f64 / 1e6),
            best.to_string(),
        ]);
        eprintln!("  done: {nodes} nodes");
    }
    t.print();
    emit(&bench);
    println!("\nExpected shape (paper Sec. IV-F): the slow-progressing MPI_Ireduce");
    println!("falls behind clearly as node counts grow (its latency gates every");
    println!("epoch turnover). The ibarrier-vs-fully-blocking gap depends on leader");
    println!("arrival skew: the paper's cluster has OS/NUMA jitter that makes the");
    println!("overlap of the non-blocking barrier pay off; the DES only models");
    println!("sampling-time variance, so the two blocking variants are near-tied");
    println!("here (ibarrier+reduce is never worse by construction).");
}
