//! **Smoke benchmark** backing `cargo xtask bench --smoke`: runs a tiny
//! generated instance through the sequential, flat-MPI and epoch-MPI
//! drivers and emits `BENCH_smoke.json` (`kadabra-bench/v1`). The xtask
//! wrapper validates the artifact against the schema, so this binary plus
//! the validator form the CI guard against schema drift.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_smoke`
//! (`KADABRA_RESULTS_DIR` picks the output directory; xtask points it at
//! the repo root.)

use kadabra_bench::{emit, live_run, seed, BenchArtifact};
use kadabra_core::{
    kadabra_epoch_mpi, kadabra_mpi_flat, kadabra_sequential, ClusterShape, KadabraConfig,
};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, GnmConfig};

fn main() {
    let eps = 0.08;
    let seed = seed();
    let (g, _) = largest_component(&gnm(GnmConfig { n: 80, m: 220, seed }));
    let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
    println!("bench smoke: gnm-80 ({} vertices, {} edges)", g.num_nodes(), g.num_edges());

    let mut bench = BenchArtifact::new("smoke", 1.0, eps, seed);
    bench.push(live_run("gnm-80", "seq", 1, 1, &kadabra_sequential(&g, &cfg)));
    bench.push(live_run("gnm-80", "mpi", 2, 1, &kadabra_mpi_flat(&g, &cfg, 2)));
    let shape = ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 };
    bench.push(live_run("gnm-80", "epoch-mpi", 2, 2, &kadabra_epoch_mpi(&g, &cfg, shape)));
    for r in &bench.runs {
        println!(
            "  {} {}: {} samples, {} epochs, {:.0} samples/s, overlap {:.3}",
            r.instance, r.mode, r.samples, r.epochs, r.samples_per_sec, r.reduction_overlap
        );
    }
    emit(&bench);
}
