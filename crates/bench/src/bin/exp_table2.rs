//! **Table II** — per-instance statistics of the epoch-based MPI algorithm
//! on 16 compute nodes: epochs, samples, seconds in the non-blocking
//! barrier, communication volume per epoch, adaptive-sampling time.
//!
//! Paper: road networks take the most samples (3.9-5.3M) and epochs
//! (496-638) but the least communication per epoch (265-478 MiB); the
//! billion-edge instances finish in as few as 2 epochs but move up to
//! 25 GiB per epoch.
//!
//! Run: `cargo run --release -p kadabra-bench --bin exp_table2`

use kadabra_bench::{
    des_run, emit, eps_default, paper_shape, prepare_instance, scale_factor, seed, suite,
    BenchArtifact, InstanceClass, Table,
};
use kadabra_cluster::{simulate, ClusterSpec};

fn main() {
    let scale = scale_factor();
    let eps = eps_default(0.03);
    let seed = seed();
    let spec = ClusterSpec::default();
    println!("Table II: per-instance statistics on 16 compute nodes");
    println!("(scale {scale}, eps {eps}, delta 0.1, seed {seed})\n");

    let mut table =
        Table::new(["Instance", "Class", "Ep.", "Samples", "B(s)", "Com.(MiB/ep)", "Time(s)"]);
    let mut road = (0u64, 0.0f64); // (epochs, comm) accumulators for the shape check
    let mut complex = (0u64, 0.0f64);
    let mut road_n = 0u64;
    let mut complex_n = 0u64;
    let mut bench = BenchArtifact::new("table2", scale, eps, seed);
    for inst in suite() {
        let class = inst.class;
        let pi = prepare_instance(&inst, scale, seed, eps, 300);
        let r = simulate(&pi.graph, &pi.cfg, &pi.prepared, &paper_shape(16), &spec, &pi.cost);
        bench.push(des_run(pi.name, &paper_shape(16), &r));
        table.row([
            pi.name.to_string(),
            format!("{class:?}"),
            r.epochs.to_string(),
            r.samples.to_string(),
            format!("{:.2}", r.barrier_wait_ns as f64 / 1e9),
            format!("{:.1}", r.comm_mib_per_epoch()),
            format!("{:.2}", r.ads_ns as f64 / 1e9),
        ]);
        match class {
            InstanceClass::Road => {
                road.0 += r.epochs;
                road.1 += r.comm_mib_per_epoch();
                road_n += 1;
            }
            InstanceClass::Complex | InstanceClass::Hyperbolic => {
                complex.0 += r.epochs;
                complex.1 += r.comm_mib_per_epoch();
                complex_n += 1;
            }
            InstanceClass::Control => {}
        }
        eprintln!("  done: {}", pi.name);
    }
    table.print();
    emit(&bench);

    println!("\nShape check (paper Table II):");
    println!(
        "  road networks:    avg {} epochs, {:.1} MiB/epoch  (paper: many epochs, small frames)",
        road.0 / road_n.max(1),
        road.1 / road_n.max(1) as f64
    );
    println!(
        "  complex networks: avg {} epochs, {:.1} MiB/epoch  (paper: few epochs, large frames)",
        complex.0 / complex_n.max(1),
        complex.1 / complex_n.max(1) as f64
    );
}
