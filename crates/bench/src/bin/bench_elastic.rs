//! **Elasticity benchmark** backing `cargo xtask bench --smoke`: quantifies
//! the two headline claims of the elastic scale-out work (DESIGN.md §15) on
//! the DES virtual timeline, plus one live grow through the elastic driver.
//!
//! 1. *Rank join pays for itself*: a run that doubles its world at round 1
//!    (paying the newcomers' bootstrap — diameter replay, calibration
//!    replay, admission barrier) must finish the adaptive phase at least
//!    [`MIN_GROW_SPEEDUP`]× faster than the static continuation.
//! 2. *Steal decouples round latency from the straggler factor*: without
//!    stealing, quadrupling a straggler's factor must stretch the run by
//!    more than [`MIN_NOSTEAL_GROWTH`]×; with stealing the same change must
//!    stay under [`MAX_STEAL_GROWTH`]× (the straggler keeps only
//!    `n0/factor`, so the factor nearly cancels).
//! 3. *The guarantee survives a live grow*: `kadabra_mpi_flat_elastic`
//!    admits both standbys mid-run and still lands within ε of Brandes.
//!
//! Emits `BENCH_elastic.json` (`kadabra-bench/v1` plus `speedup`,
//! `ranks_joined`, `samples_stolen`, and `oracle_gap` extra columns) and
//! exits nonzero when any gate fails — so `cargo xtask bench --smoke` (and
//! the CI job wrapping it) fails loudly rather than emitting a degraded
//! artifact.
//!
//! Run: `cargo run --release -p kadabra-bench --bin bench_elastic`
//! (`KADABRA_RESULTS_DIR` picks the output directory; xtask points it at
//! the repo root.)

use kadabra_baselines::brandes;
use kadabra_bench::{des_run_labelled, emit, seed, BenchArtifact};
use kadabra_cluster::{
    simulate, simulate_perturbed, ClusterSpec, CostModel, ReduceStrategy, SimConfig,
};
use kadabra_core::{
    kadabra_mpi_flat_elastic, prepare, ClusterShape, ElasticOptions, KadabraConfig,
};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};
use kadabra_mpisim::FaultPlan;
use std::time::Instant;

/// Acceptance floor: virtual-time speedup of the grown run over the static
/// continuation (ISSUE 9's 1.2× criterion).
const MIN_GROW_SPEEDUP: f64 = 1.2;

/// Without stealing, a 4× hotter straggler must stretch the run this much…
const MIN_NOSTEAL_GROWTH: f64 = 2.0;

/// …and with stealing the same change must plateau under this.
const MAX_STEAL_GROWTH: f64 = 1.3;

fn main() {
    let seed = seed();
    // Tight enough that the adaptive phase runs well past the join round, so
    // the doubled world has rounds left to pay back the newcomers' bootstrap.
    let eps = 0.035;
    let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
    let cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
    let prepared = prepare(&g, &cfg);
    let cost = CostModel::synthetic(100_000); // 0.1 ms per sample
    let spec = ClusterSpec::default();
    println!("bench elastic: grid-8x8 ({} vertices), eps = {eps}", g.num_nodes());

    let mut bench = BenchArtifact::new("elastic", 1.0, eps, seed);

    // Gate 1: mid-run join beats the static continuation on virtual time.
    let sim = SimConfig {
        shape: ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: false,
        steal: false,
    };
    let static_run = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
    let join_plan = FaultPlan::ideal(seed).with_join(1, 2);
    let grown = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&join_plan));
    let grow_speedup = static_run.ads_ns as f64 / grown.ads_ns.max(1) as f64;
    println!(
        "  grow: static {:.1} ms -> grown {:.1} ms ({:.2}x, {} ranks joined, \
         rebalance {:.2} ms)",
        static_run.ads_ns as f64 / 1e6,
        grown.ads_ns as f64 / 1e6,
        grow_speedup,
        grown.ranks_joined,
        grown.rebalance_ns as f64 / 1e6
    );
    bench.push(des_run_labelled("grid-8x8", "des-static", 2, 2, &static_run));
    let mut row = des_run_labelled("grid-8x8", "des-grown", 2, 2, &grown);
    row.extras.push(("speedup".to_string(), grow_speedup));
    bench.push(row);

    // Gate 2: steal flattens the straggler-factor curve.
    let shape4 = SimConfig {
        shape: ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 },
        ..sim
    };
    let stealing4 = SimConfig { steal: true, ..shape4 };
    let run = |sim: &SimConfig, factor: u64| {
        let plan = FaultPlan::ideal(seed).with_straggler(1, factor);
        simulate_perturbed(&g, &cfg, &prepared, sim, &spec, &cost, Some(&plan))
    };
    let (nosteal4, nosteal16) = (run(&shape4, 4), run(&shape4, 16));
    let (steal4, steal16) = (run(&stealing4, 4), run(&stealing4, 16));
    let growth_nosteal = nosteal16.ads_ns as f64 / nosteal4.ads_ns.max(1) as f64;
    let growth_steal = steal16.ads_ns as f64 / steal4.ads_ns.max(1) as f64;
    println!(
        "  steal: factor 4 -> 16 stretches {growth_nosteal:.2}x without steal, \
         {growth_steal:.2}x with steal ({} samples stolen at 16x)",
        steal16.samples_stolen
    );
    for (label, r) in [
        ("des-straggler4", &nosteal4),
        ("des-straggler16", &nosteal16),
        ("des-steal4", &steal4),
        ("des-steal16", &steal16),
    ] {
        bench.push(des_run_labelled("grid-8x8", label, 4, 2, r));
    }

    // Gate 3: the real elastic driver grows mid-run and keeps ε.
    let (live_g, _) = largest_component(&gnm(GnmConfig { n: 80, m: 220, seed }));
    let live_cfg = KadabraConfig { epsilon: eps, delta: 0.1, seed, ..Default::default() };
    let opts = ElasticOptions::all(FaultPlan::ideal(seed ^ 0xE1A5).with_join(1, 2));
    let t0 = Instant::now();
    let live = kadabra_mpi_flat_elastic(&live_g, &live_cfg, 2, 2, &opts);
    let live_ns = t0.elapsed().as_nanos() as u64;
    live.assert_invariants();
    let exact = brandes(&live_g);
    let oracle_gap =
        live.result.scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!(
        "  live: {} ranks joined, {} samples stolen, oracle gap {oracle_gap:.4}, {:.1} ms",
        live.ranks_joined,
        live.samples_stolen,
        live_ns as f64 / 1e6
    );
    let mut row = kadabra_bench::live_run("gnm-80", "elastic-grow", 2, 2, &live.result);
    // The elastic driver runs with telemetry off, so the result carries no
    // recorded phase timings — stamp the measured end-to-end wall time.
    row.wall_ns = live_ns;
    row.samples_per_sec =
        if live_ns > 0 { live.result.samples as f64 / (live_ns as f64 / 1e9) } else { 0.0 };
    row.extras.push(("ranks_joined".to_string(), live.ranks_joined as f64));
    row.extras.push(("samples_stolen".to_string(), live.samples_stolen as f64));
    row.extras.push(("oracle_gap".to_string(), oracle_gap));
    bench.push(row);

    emit(&bench);

    assert_eq!(grown.ranks_joined, 2, "the DES join point must admit both standbys");
    assert!(
        grow_speedup >= MIN_GROW_SPEEDUP,
        "grow speedup {grow_speedup:.2}x below the {MIN_GROW_SPEEDUP}x floor"
    );
    assert!(
        growth_nosteal > MIN_NOSTEAL_GROWTH,
        "static latency must track the straggler factor: {growth_nosteal:.2}x"
    );
    assert!(
        growth_steal < MAX_STEAL_GROWTH,
        "stolen latency must plateau: {growth_steal:.2}x, gate is {MAX_STEAL_GROWTH}x"
    );
    assert_eq!(
        live.ranks_joined, 2,
        "the live join must admit both standbys [{}]",
        live.plan_summary
    );
    assert!(
        oracle_gap <= eps,
        "live elastic estimate drifted {oracle_gap:.4} from the oracle (ε {eps}) [{}]",
        live.plan_summary
    );
}
