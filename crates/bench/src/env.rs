//! Environment knobs shared by all experiment binaries.
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `KADABRA_SCALE` | Multiplies instance sizes (0.25 = quick smoke run, 4 = large) | 1.0 |
//! | `KADABRA_EPS`   | Overrides the experiment's ε | per experiment |
//! | `KADABRA_SEED`  | Master RNG seed | 42 |

/// Instance-size multiplier from `KADABRA_SCALE`.
pub fn scale_factor() -> f64 {
    parse_env("KADABRA_SCALE", 1.0, |v: f64| v > 0.0 && v <= 64.0)
}

/// ε from `KADABRA_EPS`, falling back to the experiment's default.
pub fn eps_default(default: f64) -> f64 {
    parse_env("KADABRA_EPS", default, |v: f64| v > 0.0 && v < 1.0)
}

/// Master seed from `KADABRA_SEED`.
pub fn seed() -> u64 {
    parse_env("KADABRA_SEED", 42u64, |_| true)
}

fn parse_env<T: std::str::FromStr + Copy>(name: &str, default: T, valid: impl Fn(T) -> bool) -> T {
    match std::env::var(name) {
        Ok(s) => match s.parse::<T>() {
            Ok(v) if valid(v) => v,
            _ => {
                eprintln!("warning: ignoring invalid {name}={s:?}; using default");
                default
            }
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // Tests run without these vars set in CI; guard against interference
        // by only asserting when absent.
        if std::env::var("KADABRA_SCALE").is_err() {
            assert_eq!(scale_factor(), 1.0);
        }
        if std::env::var("KADABRA_EPS").is_err() {
            assert_eq!(eps_default(0.03), 0.03);
        }
        if std::env::var("KADABRA_SEED").is_err() {
            assert_eq!(seed(), 42);
        }
    }
}
