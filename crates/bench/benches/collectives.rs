//! Micro-benchmark: simulated-MPI collective throughput — the state-frame
//! reduction is the paper's only non-overlapped communication, so its
//! in-process cost bounds how fast simulated epochs can turn over.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kadabra_mpisim::Universe;

fn bench_reduce_vectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_reduce_sum");
    group.sample_size(10);
    for &len in &[1_000usize, 100_000] {
        for &ranks in &[2usize, 4] {
            group.throughput(Throughput::Bytes((len * ranks * 8) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), len),
                &(len, ranks),
                |b, &(len, ranks)| {
                    b.iter(|| {
                        Universe::run(ranks, |comm| {
                            let data = vec![comm.rank() as u64; len];
                            comm.reduce_sum_u64(0, &data).expect("healthy world").map(|v| v[0])
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_barrier_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_ibarrier_round");
    group.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Universe::run(ranks, |comm| {
                    for _ in 0..8 {
                        let mut req = comm.ibarrier().expect("healthy world");
                        while !req.test().expect("healthy world") {
                            std::hint::spin_loop();
                        }
                    }
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduce_vectors, bench_barrier_round);
criterion_main!(benches);
