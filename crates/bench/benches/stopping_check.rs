//! Micro-benchmark: the stopping-condition evaluation (`CHECKFORSTOP`).
//!
//! The paper checks on a single process because "evaluating the stopping
//! condition is indeed cheaper than the aggregation required for the check";
//! this bench quantifies the O(|V|) check cost that claim rests on, plus the
//! δ-calibration binary search of phase 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kadabra_core::bounds::stopping_condition;
use kadabra_core::{Calibration, KadabraConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_counts(n: usize, tau: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..tau / 10)).collect()
}

fn bench_stopping_condition(c: &mut Criterion) {
    // The cost that matters is the check *near termination*, where every
    // vertex must be inspected (the all-vertices scan); a failing check
    // short-circuits on the first unhappy vertex and costs almost nothing.
    // Use a generous epsilon so the scan runs to completion.
    let mut group = c.benchmark_group("stopping_condition_full_scan");
    let cfg = KadabraConfig::new(0.01, 0.1);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let tau = 50_000u64;
        let counts = synthetic_counts(n, tau, 1);
        let calib = Calibration::from_counts(&counts, tau, &cfg);
        let result =
            stopping_condition(&counts, tau, 0.9, 10_000_000, &calib.delta_l, &calib.delta_u);
        assert!(result, "full-scan configuration must pass every vertex");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                stopping_condition(
                    std::hint::black_box(&counts),
                    tau,
                    0.9,
                    10_000_000,
                    &calib.delta_l,
                    &calib.delta_u,
                )
            });
        });
    }
    group.finish();
}

fn bench_delta_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_calibration_fit");
    group.sample_size(20);
    let cfg = KadabraConfig::new(0.01, 0.1);
    for &n in &[10_000usize, 100_000] {
        let counts = synthetic_counts(n, 5_000, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &counts, |b, counts| {
            b.iter(|| Calibration::from_counts(std::hint::black_box(counts), 5_000, &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stopping_condition, bench_delta_calibration);
criterion_main!(benches);
