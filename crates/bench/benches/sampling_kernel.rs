//! Micro-benchmark: the batched sampling kernel on the perf R-MAT instance,
//! in both CSR labelings. Interactive companion to `bench_kernel` (which
//! feeds the `cargo xtask bench --kernel --check` regression gate): use this
//! to A/B kernel changes locally with criterion's statistics before
//! re-recording `BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kadabra_core::ThreadSampler;
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{rmat, RmatConfig};

/// Samples per measured batch — large enough to amortize batch setup, small
/// enough for criterion to take many measurements.
const BATCH: u64 = 256;

fn bench_sampling_kernel(c: &mut Criterion) {
    let (raw, _) = largest_component(&rmat(RmatConfig::graph500(14, 8, 1)));
    let (relabeled, _) = raw.relabel_by_degree();
    let mut group = c.benchmark_group("sampling_kernel");
    group.sample_size(30);
    group.throughput(Throughput::Elements(BATCH));
    for (name, g) in [("relabeled", &relabeled), ("raw", &raw)] {
        let mut sampler = ThreadSampler::new(g.num_nodes(), 7, 0, 0);
        // Warm the scratch buffers so steady-state cost is what's measured.
        sampler.sample_batch(g, 2_000, |_| {});
        group.bench_with_input(BenchmarkId::from_parameter(name), g, |b, g| {
            b.iter(|| {
                let mut interior_visits = 0u64;
                sampler.sample_batch(g, BATCH, |interior| {
                    interior_visits += interior.len() as u64;
                });
                std::hint::black_box(interior_visits)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling_kernel);
criterion_main!(benches);
