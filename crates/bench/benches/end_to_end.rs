//! End-to-end algorithm comparison on one small instance: exact Brandes vs
//! the fixed-sample RK baseline vs adaptive KADABRA. This is the in-miniature
//! version of the paper's Section II argument — exact is hopeless at scale,
//! adaptivity beats fixed-size sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use kadabra_baselines::{brandes, rk_betweenness, RkConfig};
use kadabra_core::{kadabra_sequential, KadabraConfig};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{rmat, RmatConfig};

fn bench_algorithms(c: &mut Criterion) {
    let (g, _) = largest_component(&rmat(RmatConfig::graph500(11, 8, 3)));
    let mut group = c.benchmark_group("betweenness_algorithms");
    group.sample_size(10);

    group.bench_function("brandes_exact", |b| b.iter(|| brandes(&g)));

    let cfg = KadabraConfig::new(0.02, 0.1);
    group.bench_function("kadabra_adaptive_eps0.02", |b| {
        b.iter(|| kadabra_sequential(&g, &cfg).samples);
    });

    let rk_cfg = RkConfig { epsilon: 0.02, delta: 0.1, vertex_diameter: 10, seed: 3 };
    group.bench_function("rk_fixed_eps0.02", |b| {
        b.iter(|| rk_betweenness(&g, rk_cfg).samples);
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
