//! Micro-benchmark: overhead of the epoch framework's wait-free hot path.
//!
//! Ref. [24]'s claim is that recording a sample and checking for an epoch
//! transition cost almost nothing next to the sample itself (a BFS). This
//! bench measures `record_sample` and `check_transition` in isolation and
//! the full transition + aggregation cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kadabra_epoch::EpochFramework;

fn bench_record_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_record_sample");
    for &path_len in &[0usize, 8, 64, 512] {
        let fw = EpochFramework::new(100_000, 1);
        let h = fw.handle(0);
        let interior: Vec<u32> = (0..path_len as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(path_len), &interior, |b, interior| {
            b.iter(|| h.record_sample(std::hint::black_box(interior)));
        });
    }
    group.finish();
}

fn bench_check_transition_noop(c: &mut Criterion) {
    let fw = EpochFramework::new(1024, 2);
    let mut h = fw.handle(1);
    c.bench_function("epoch_check_transition_noop", |b| {
        b.iter(|| std::hint::black_box(fw.check_transition(&mut h)));
    });
}

fn bench_full_epoch_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_full_cycle");
    group.sample_size(20);
    for &n in &[1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || EpochFramework::new(n, 1),
                |fw| {
                    let mut h = fw.handle(0);
                    let mut acc = vec![0u64; n];
                    for e in 0..4u32 {
                        h.record_sample(&[0, 1, 2]);
                        fw.force_transition(&mut h, e);
                        assert!(fw.transition_done(e));
                        std::hint::black_box(fw.aggregate_epoch(e, &mut acc));
                    }
                    acc
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record_sample, bench_check_transition_noop, bench_full_epoch_cycle);
criterion_main!(benches);
