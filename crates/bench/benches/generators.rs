//! Micro-benchmark: graph generation throughput. The Fig. 4 sweeps
//! regenerate R-MAT and hyperbolic instances per scale, so generator speed
//! bounds experiment turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kadabra_graph::generators::{
    gnm, grid, hyperbolic, rmat, GnmConfig, GridConfig, HyperbolicConfig, RmatConfig,
};

fn bench_rmat(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_rmat");
    group.sample_size(10);
    for &scale in &[10u32, 12, 14] {
        let edges = (1u64 << scale) * 8;
        group.throughput(Throughput::Elements(edges));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| rmat(RmatConfig::graph500(scale, 8, 1)).num_edges());
        });
    }
    group.finish();
}

fn bench_hyperbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_hyperbolic");
    group.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                hyperbolic(HyperbolicConfig { n, avg_deg: 12.0, alpha: 1.0, seed: 1 }).num_edges()
            });
        });
    }
    group.finish();
}

fn bench_grid_and_gnm(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_other");
    group.sample_size(10);
    group.bench_function("grid_200x200", |b| {
        b.iter(|| {
            grid(GridConfig { rows: 200, cols: 200, diagonal_prob: 0.05, seed: 1 }).num_edges()
        });
    });
    group.bench_function("gnm_50k_400k", |b| {
        b.iter(|| gnm(GnmConfig { n: 50_000, m: 400_000, seed: 1 }).num_edges());
    });
    group.finish();
}

criterion_group!(benches, bench_rmat, bench_hyperbolic, bench_grid_and_gnm);
criterion_main!(benches);
