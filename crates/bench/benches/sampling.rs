//! Micro-benchmark: per-sample cost of the bidirectional shortest-path
//! sampler across graph classes — the quantity the paper bounds at
//! "<10 milliseconds" per sample and the dominant term of the adaptive
//! sampling phase. Also compares against a unidirectional σ-BFS to show the
//! bidirectional win (improvement (ii) of KADABRA, Section III-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kadabra_core::ThreadSampler;
use kadabra_graph::bfs::sigma_bfs;
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{grid, hyperbolic, rmat, GridConfig, HyperbolicConfig, RmatConfig};
use kadabra_graph::Graph;

fn graphs() -> Vec<(&'static str, Graph)> {
    let (rm, _) = largest_component(&rmat(RmatConfig::graph500(12, 8, 1)));
    let (hy, _) = largest_component(&hyperbolic(HyperbolicConfig {
        n: 6_000,
        avg_deg: 12.0,
        alpha: 1.0,
        seed: 1,
    }));
    let gr = grid(GridConfig { rows: 70, cols: 70, diagonal_prob: 0.05, seed: 1 });
    vec![("rmat-s12", rm), ("hyperbolic-6k", hy), ("grid-70x70", gr)]
}

fn bench_bidirectional_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("bidirectional_sample");
    group.sample_size(30);
    for (name, g) in graphs() {
        let mut sampler = ThreadSampler::new(g.num_nodes(), 7, 0, 0);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let interior = sampler.sample(g);
                std::hint::black_box(interior.len())
            });
        });
    }
    group.finish();
}

fn bench_unidirectional_bfs(c: &mut Criterion) {
    // The full-SSSP alternative that RK-style samplers would use.
    let mut group = c.benchmark_group("unidirectional_sigma_bfs");
    group.sample_size(20);
    for (name, g) in graphs() {
        let mut src = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                src = (src + 17) % g.num_nodes() as u32;
                std::hint::black_box(sigma_bfs(g, src).order.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bidirectional_sample, bench_unidirectional_bfs);
criterion_main!(benches);
