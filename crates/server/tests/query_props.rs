//! Property tests of the query/refine interface: for random seeds and
//! random query/refine interleavings, frozen-stage answers must be
//! bit-identical across servers that served different query traffic, and
//! every answer must stay within its reported accuracy of a from-scratch
//! Brandes oracle.
//!
//! Cases are few but each boots two full service fixtures; the value is in
//! the randomized interleaving coordinates, not the case count.

use kadabra_server::testkit::{boot, corpus_graph, TENANT};
use kadabra_server::{Client, QueryError, QueryScratch, Server};
use proptest::prelude::*;

/// Exact betweenness for the fixture graph at `seed`.
fn oracle(seed: u64) -> Vec<f64> {
    kadabra_baselines::brandes(&corpus_graph(seed))
}

/// Issues `burst` assorted read queries; every answer must be self-
/// consistent and within its *reported* ε of the oracle.
fn query_burst(c: &Client, sc: &mut QueryScratch, exact: &[f64], burst: usize, probe: usize) {
    let n = exact.len();
    let mut scores = Vec::new();
    let mut top = Vec::new();
    for q in 0..burst {
        let v = ((probe + 7 * q) % n) as u32;
        match c.vertex(TENANT, v) {
            Ok(est) => {
                assert!(est.lower <= est.estimate && est.estimate <= est.upper);
                let err = (est.estimate - exact[v as usize]).abs();
                assert!(err <= est.eps, "vertex {v}: err {err} > reported eps {}", est.eps);
            }
            Err(QueryError::NotReady { .. }) => {}
            Err(e) => panic!("unexpected query error: {e}"),
        }
        if q % 3 == 0 {
            if let Ok(meta) = c.topk_into(TENANT, 5, sc, &mut top) {
                assert_eq!(top.len(), 5);
                assert!(meta.tau > 0);
            }
        }
        if q % 4 == 0 {
            if let Ok(meta) = c.estimate_into(TENANT, 0.5, sc, &mut scores) {
                let worst =
                    scores.iter().zip(exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
                assert!(worst <= meta.eps, "stage answer err {worst} > {}", meta.eps);
            }
        }
    }
}

/// Refines stage by stage with query bursts in between, then returns every
/// frozen-stage vector (as f64 bits, for exact comparison).
fn serve_interleaved(
    server: &Server,
    exact: &[f64],
    bursts: [usize; 4],
    probe: usize,
) -> Vec<Vec<u64>> {
    let c = server.client();
    let mut sc = c.scratch(TENANT).expect("fixture tenant");
    let schedule = server.tenant(TENANT).expect("fixture tenant").schedule();
    let mut frozen = Vec::new();
    let mut scores = Vec::new();
    for (i, &eps) in schedule.iter().enumerate() {
        query_burst(&c, &mut sc, exact, bursts[i % bursts.len()], probe + i);
        c.refine(TENANT, eps, 256).expect("schedule stage is reachable");
        let meta = c.estimate_into(TENANT, eps, &mut sc, &mut scores).expect("stage frozen");
        assert!(meta.eps <= eps);
        frozen.push(scores.iter().map(|s| s.to_bits()).collect());
    }
    frozen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Two servers at the same seed, fed *different* query interleavings,
    /// must freeze bit-identical stage answers — queries are invisible to
    /// the sampling schedule. Every answer along the way must satisfy its
    /// reported accuracy against the Brandes oracle.
    #[test]
    fn query_interleavings_are_invisible_to_frozen_answers(
        seed in 0u64..32,
        burst_a in 0usize..6,
        burst_b in 0usize..6,
        probe in 0usize..32,
    ) {
        let exact = oracle(seed);
        let a = boot(seed);
        let b = boot(seed);
        let frozen_a =
            serve_interleaved(&a, &exact, [burst_a, 0, burst_a + 2, 1], probe);
        let frozen_b =
            serve_interleaved(&b, &exact, [burst_b, burst_b + 1, 0, 3], probe + 13);
        prop_assert_eq!(
            frozen_a,
            frozen_b,
            "frozen stages diverged under different query traffic (seed {})",
            seed
        );
    }

    /// Refine is idempotent at an already-met target: zero extra rounds, and
    /// the frontier's answers do not move.
    #[test]
    fn refine_at_met_target_is_a_no_op(seed in 0u64..32) {
        let s = boot(seed);
        let c = s.client();
        let out1 = c.refine(TENANT, 0.3, 256).expect("reachable");
        let before = s.tenant(TENANT).expect("tenant").cache().publish_count();
        let out2 = c.refine(TENANT, 0.3, 256).expect("already met");
        prop_assert_eq!(out2.rounds_run, 0);
        prop_assert_eq!(out2.tau, out1.tau);
        let after = s.tenant(TENANT).expect("tenant").cache().publish_count();
        prop_assert_eq!(before, after, "a no-op refine must not publish");
    }
}
