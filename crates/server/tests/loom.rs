//! Model-checked verification of the estimate cache's publish/read protocol
//! (ISSUE 7: "a loom model of the cache's publish/read protocol").
//!
//! Run with `cargo test -p kadabra-server --features loom` (wired into
//! `cargo xtask loom`). Each scenario runs under `loom::model`, which
//! explores thread interleavings *and* every stale value a `Relaxed` load
//! may legally return:
//!
//! * [`frontier_reads_are_never_torn`] — a reader racing the seqlock writer
//!   only ever returns one publication's complete contents (the invariant
//!   links every word of a publication, so any mix is detected).
//! * [`vertex_reads_agree_with_their_tau`] — the scalar read path holds the
//!   same snapshot consistency as the bulk one.
//! * [`frozen_stages_are_write_once`] — once a stage reads ready, its
//!   contents are complete and every later read is bit-identical.
//! * [`seqlock_without_recheck_is_caught`] — **negative control**: a
//!   minimal seqlock replica with the final `seq` re-check deleted is
//!   rejected by the checker, proving the model can see the torn reads the
//!   real protocol rules out.

#![cfg(feature = "loom")]

use kadabra_server::cache::{EstimateCache, FrontierSnapshot, StageSnapshot};
use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::Arc;

fn model(f: impl Fn() + Send + Sync + 'static) {
    let mut b = loom::model::Builder::new();
    b.preemption_bound = Some(2);
    b.check(f);
}

/// Publications are invariant-linked: publication `i` writes counts
/// `[i, 10·i]`, τ = `11·i`, round = `i`. Any torn mix violates the sum.
fn assert_consistent(counts: &[u64], tau: u64, round: u64) {
    assert_eq!(counts[0], round, "counts[0] torn");
    assert_eq!(counts[1], 10 * round, "counts[1] torn");
    assert_eq!(tau, 11 * round, "tau from a different publication than counts");
}

#[test]
fn frontier_reads_are_never_torn() {
    model(|| {
        let c = Arc::new(EstimateCache::new(2, &[0.5]));
        let writer = {
            let c = Arc::clone(&c);
            loom::thread::spawn(move || {
                for i in 1..=2u64 {
                    c.publish_frontier(&[i, 10 * i], 11 * i, 0.6, i);
                }
            })
        };
        let mut snap = FrontierSnapshot::new(2);
        loop {
            if c.read_frontier_into(&mut snap) {
                assert_consistent(&snap.counts, snap.tau, snap.round);
                if snap.round == 2 {
                    break;
                }
            }
            loom::thread::yield_now();
        }
        writer.join().expect("writer");
        assert!(c.read_frontier_into(&mut snap));
        assert_consistent(&snap.counts, snap.tau, snap.round);
        assert_eq!(snap.round, 2, "the final publication must win");
    });
}

#[test]
fn vertex_reads_agree_with_their_tau() {
    model(|| {
        let c = Arc::new(EstimateCache::new(2, &[0.5]));
        let writer = {
            let c = Arc::clone(&c);
            loom::thread::spawn(move || {
                for i in 1..=2u64 {
                    c.publish_frontier(&[i, 10 * i], 11 * i, 0.6, i);
                }
            })
        };
        loop {
            if let Some(r) = c.read_vertex(1) {
                assert_eq!(r.count, 10 * r.round, "count from a different publication");
                assert_eq!(r.tau, 11 * r.round, "tau from a different publication");
                if r.round == 2 {
                    break;
                }
            }
            loom::thread::yield_now();
        }
        writer.join().expect("writer");
    });
}

#[test]
fn frozen_stages_are_write_once() {
    model(|| {
        // Schedule [0.5]: the first publication (ε = 0.4) freezes the stage;
        // the second (ε = 0.2) must not move it.
        let c = Arc::new(EstimateCache::new(2, &[0.5]));
        let writer = {
            let c = Arc::clone(&c);
            loom::thread::spawn(move || {
                c.publish_frontier(&[1, 10], 11, 0.4, 1);
                c.publish_frontier(&[2, 20], 22, 0.2, 2);
            })
        };
        let mut st = StageSnapshot::new(2);
        loop {
            if c.read_stage_into(0, &mut st) {
                // Ready implies complete: the freezing publication's words.
                assert_consistent(&st.counts, st.tau, st.round);
                assert_eq!(st.round, 1, "a frozen stage moved");
                break;
            }
            loom::thread::yield_now();
        }
        writer.join().expect("writer");
        let first = st.clone();
        assert!(c.read_stage_into(0, &mut st));
        assert_eq!(st.counts, first.counts, "stage re-read differs");
        assert_eq!((st.tau, st.round), (first.tau, first.round));
    });
}

/// A reader racing a generation bump plus re-freeze must return either one
/// generation's complete frozen contents or `false` — never a blend of the
/// pre- and post-update graphs (the mixed-generation hazard of streaming
/// updates, DESIGN.md §14). Publications are invariant-linked as above, so
/// any cross-generation mix trips `assert_consistent`.
#[test]
fn stage_reads_never_blend_generations() {
    model(|| {
        let c = Arc::new(EstimateCache::new(2, &[0.5]));
        c.publish_frontier(&[1, 10], 11, 0.4, 1); // freezes under generation 0
        let writer = {
            let c = Arc::clone(&c);
            loom::thread::spawn(move || {
                c.bump_generation();
                c.publish_frontier(&[2, 20], 22, 0.4, 2); // re-freezes under generation 1
            })
        };
        let mut st = StageSnapshot::new(2);
        if c.read_stage_into(0, &mut st) {
            assert_consistent(&st.counts, st.tau, st.round);
            assert!(st.round == 1 || st.round == 2);
        }
        writer.join().expect("writer");
        assert!(c.read_stage_into(0, &mut st), "post-update freeze must be readable");
        assert_consistent(&st.counts, st.tau, st.round);
        assert_eq!(st.round, 2, "after the join only the new generation may answer");
    });
}

/// Negative control: the seqlock's safety hinges on re-checking `seq` after
/// the data loads. Delete the re-check in a minimal replica and the checker
/// must find a schedule where a reader returns a half-written pair.
#[test]
fn seqlock_without_recheck_is_caught() {
    let failed = std::panic::catch_unwind(|| {
        model(|| {
            let seq = Arc::new(AtomicUsize::new(0));
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let writer = {
                let (seq, a, b) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
                loom::thread::spawn(move || {
                    seq.store(1, Ordering::Release);
                    a.store(7, Ordering::Release);
                    b.store(7, Ordering::Release);
                    seq.store(2, Ordering::Release);
                })
            };
            loop {
                let s1 = seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    loom::thread::yield_now();
                    continue;
                }
                let x = a.load(Ordering::Acquire);
                let y = b.load(Ordering::Acquire);
                // BUG: no `seq` re-check before trusting (x, y).
                assert_eq!(x, y, "torn pair observed");
                if s1 == 2 || x == 7 {
                    break;
                }
                loom::thread::yield_now();
            }
            writer.join().expect("writer");
        });
    });
    assert!(
        failed.is_err(),
        "the model checker failed to catch a deleted seqlock re-check; \
         the positive scenarios in this file are not trustworthy"
    );
}
