//! Centrality-as-a-service: a resident, multi-tenant betweenness server
//! over the KADABRA sampling stack (DESIGN.md §13).
//!
//! Instead of running the driver to completion per request, the server
//! keeps each named graph *resident* as a [`Tenant`]: a sampler pool
//! ([`engine::RefineEngine`], reusing Algorithm 1's batched kernel and the
//! PR 4 ledger/recovery protocol) that tightens ε round by round, publishing
//! every consistent frame into a lock-free [`cache::EstimateCache`] that
//! queries read without ever blocking refinement.
//!
//! The moving pieces:
//!
//! - **[`cache`]** — double-buffered seqlock frontier plus write-once frozen
//!   ε stages; the read path takes no locks and performs no allocation.
//! - **[`engine`]** — the resident sampler pool: deterministic fixed-length
//!   rounds, crash-fault tolerance by shrink-and-continue, ledger
//!   checkpoint/restore.
//! - **[`tenant`]** — one graph's setup phases (relabel, diameter,
//!   calibration), query read paths, and refinement entry.
//! - **[`admission`]** — per-tenant bounded in-flight/queue gate with
//!   load-shed.
//! - **[`server`]** — the [`Server`]/[`Client`] front-end; every request is
//!   a telemetry span.
//! - **[`wire`]** — line-delimited JSON over TCP, a thin shell over
//!   [`Client`].
//! - **[`testkit`]** — seed-addressed deterministic fixtures for the
//!   service-level test harness.

pub mod admission;
pub mod cache;
pub mod engine;
mod server;
mod sync;
pub mod tenant;
pub mod testkit;
pub mod wire;

pub use server::{Client, QueryError, Server, ServerConfig, SERVICE_RANK};
pub use tenant::{
    EstimateMeta, QueryScratch, RefineOutcome, ResizeOutcome, Tenant, TenantConfig, UpdateOutcome,
    VertexEstimate,
};
