//! The socket front-end: line-delimited JSON over TCP.
//!
//! One request per line, one reply per line. Requests name an `op` —
//! `vertex`, `estimate`, `topk`, `refine`, `tenants` — plus op-specific
//! fields; replies are `{"ok":true,...}` or
//! `{"ok":false,"code":...,"error":...}`. The wire layer is a thin shell
//! over [`Client`]: every connection gets its own client (and telemetry
//! writer), parsing uses the workspace's dependency-free JSON module, and
//! errors map 1:1 onto [`QueryError`] so in-process and socket callers see
//! the same semantics.

use crate::server::{Client, QueryError, Server};
use crate::sync::{AtomicBool, Ordering};
use crate::tenant::QueryScratch;
use kadabra_telemetry::json::{escape, num, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running socket front-end. Dropping it (or calling
/// [`SocketServer::shutdown`]) stops the accept loop; connection handlers
/// exit when their peer closes.
pub struct SocketServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SocketServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            // xtask: allow(comm-error-flow) — std thread join, not a
            // communicator: shutdown must complete even if the accept loop
            // panicked.
            let _ = h.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the line-delimited
    /// JSON protocol until the returned handle is shut down.
    pub fn listen(&self, addr: &str) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let inner = Arc::clone(self.inner());
        let accept = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let client = Client::from_inner(&inner);
                        std::thread::spawn(move || handle_connection(stream, client));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(SocketServer { addr: bound, stop, accept: Some(accept) })
    }
}

fn handle_connection(stream: TcpStream, client: Client) {
    let Ok(mut out) = stream.try_clone() else { return };
    let reader = BufReader::new(stream);
    let mut scratch: Option<(String, QueryScratch)> = None;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch(&client, &line, &mut scratch).unwrap_or_else(|e| error_reply(&e));
        if out.write_all(reply.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            break;
        }
        let _ = out.flush();
    }
}

fn error_reply(e: &QueryError) -> String {
    let code = match e {
        QueryError::UnknownTenant => "unknown_tenant",
        QueryError::Overloaded => "overloaded",
        QueryError::NotReady { .. } => "not_ready",
        QueryError::UnsatisfiableEps { .. } => "unsatisfiable_eps",
        QueryError::BadVertex => "bad_vertex",
        QueryError::NotDynamic => "not_dynamic",
        QueryError::NotResizable => "not_resizable",
        QueryError::BadUpdate(_) => "bad_update",
        QueryError::BadRequest(_) => "bad_request",
    };
    format!(
        "{{\"ok\":false,\"code\":\"{}\",\"error\":\"{}\"}}",
        escape(code),
        escape(&e.to_string())
    )
}

fn bad(why: &str) -> QueryError {
    QueryError::BadRequest(why.to_string())
}

/// Parses an optional `[[u,v],...]` field (absent means empty).
fn edge_list(
    req: &kadabra_telemetry::json::Json,
    key: &str,
) -> Result<Vec<(u32, u32)>, QueryError> {
    let mut out = Vec::new();
    let Some(arr) = req.get(key).and_then(Json::as_array) else { return Ok(out) };
    for e in arr {
        let pair = e.as_array().ok_or_else(|| bad("edges must be [u,v] pairs"))?;
        if pair.len() != 2 {
            return Err(bad("edges must be [u,v] pairs"));
        }
        let mut ends = [0u32; 2];
        for (slot, j) in ends.iter_mut().zip(pair) {
            let x = j.as_f64().ok_or_else(|| bad("edge endpoints must be numbers"))?;
            if x < 0.0 || x.fract() != 0.0 {
                return Err(bad("edge endpoints must be non-negative integers"));
            }
            *slot = x as u32;
        }
        out.push((ends[0], ends[1]));
    }
    Ok(out)
}

/// Parses one request line and runs it against the client, reusing one
/// scratch per connection (re-sized when the tenant changes).
fn dispatch(
    client: &Client,
    line: &str,
    scratch: &mut Option<(String, QueryScratch)>,
) -> Result<String, QueryError> {
    let req = Json::parse(line).map_err(|e| bad(&format!("invalid json: {e}")))?;
    let op = req.get("op").and_then(Json::as_str).ok_or_else(|| bad("missing op"))?;
    if op == "tenants" {
        let names: Vec<String> =
            client.tenant_names().iter().map(|n| format!("\"{}\"", escape(n))).collect();
        return Ok(format!("{{\"ok\":true,\"tenants\":[{}]}}", names.join(",")));
    }
    let tenant = req.get("tenant").and_then(Json::as_str).ok_or_else(|| bad("missing tenant"))?;
    let sc = match scratch {
        Some((name, sc)) if name == tenant => sc,
        _ => {
            let fresh = client.scratch(tenant)?;
            *scratch = Some((tenant.to_string(), fresh));
            // xtask: allow(unwrap) — assigned Some on the line above.
            &mut scratch.as_mut().unwrap().1
        }
    };
    match op {
        "vertex" => {
            let v = req.get("v").and_then(Json::as_f64).ok_or_else(|| bad("missing v"))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(bad("v must be a non-negative integer"));
            }
            let est = client.vertex(tenant, v as u32)?;
            Ok(format!(
                "{{\"ok\":true,\"vertex\":{},\"estimate\":{},\"lower\":{},\"upper\":{},\"eps\":{},\"tau\":{},\"round\":{}}}",
                est.vertex,
                num(est.estimate),
                num(est.lower),
                num(est.upper),
                num(est.eps),
                est.tau,
                est.round
            ))
        }
        "estimate" => {
            let eps = req.get("eps").and_then(Json::as_f64).ok_or_else(|| bad("missing eps"))?;
            let mut scores = Vec::new();
            let meta = client.estimate_into(tenant, eps, sc, &mut scores)?;
            let body: Vec<String> = scores.iter().map(|&s| num(s)).collect();
            Ok(format!(
                "{{\"ok\":true,\"eps\":{},\"tau\":{},\"round\":{},\"scores\":[{}]}}",
                num(meta.eps),
                meta.tau,
                meta.round,
                body.join(",")
            ))
        }
        "topk" => {
            let k = req.get("k").and_then(Json::as_f64).ok_or_else(|| bad("missing k"))?;
            if k < 1.0 || k.fract() != 0.0 {
                return Err(bad("k must be a positive integer"));
            }
            let mut top = Vec::new();
            let meta = client.topk_into(tenant, k as usize, sc, &mut top)?;
            let body: Vec<String> = top
                .iter()
                .map(|&(v, s)| format!("{{\"vertex\":{},\"score\":{}}}", v, num(s)))
                .collect();
            Ok(format!(
                "{{\"ok\":true,\"eps\":{},\"tau\":{},\"round\":{},\"top\":[{}]}}",
                num(meta.eps),
                meta.tau,
                meta.round,
                body.join(",")
            ))
        }
        "update" => {
            let inserts = edge_list(&req, "inserts")?;
            let deletes = edge_list(&req, "deletes")?;
            if inserts.is_empty() && deletes.is_empty() {
                return Err(bad("update needs at least one insert or delete"));
            }
            let rounds = req.get("refine_rounds").and_then(Json::as_f64).unwrap_or(64.0);
            if rounds < 0.0 || rounds.fract() != 0.0 {
                return Err(bad("refine_rounds must be a non-negative integer"));
            }
            let out = client.update(tenant, &inserts, &deletes, rounds as u32)?;
            Ok(format!(
                "{{\"ok\":true,\"seq\":{},\"invalidated\":{},\"retained\":{},\"tau\":{},\"achieved\":{},\"generation\":{},\"live\":{},\"compacted\":{}}}",
                out.seq,
                out.invalidated,
                out.retained,
                out.tau,
                num(out.achieved),
                out.generation,
                out.live,
                out.compacted
            ))
        }
        "refine" => {
            let eps = req.get("eps").and_then(Json::as_f64).ok_or_else(|| bad("missing eps"))?;
            let rounds = req.get("max_rounds").and_then(Json::as_f64).unwrap_or(64.0);
            if rounds < 1.0 || rounds.fract() != 0.0 {
                return Err(bad("max_rounds must be a positive integer"));
            }
            let out = client.refine(tenant, eps, rounds as u32)?;
            Ok(format!(
                "{{\"ok\":true,\"achieved\":{},\"tau\":{},\"rounds_run\":{},\"live\":{}}}",
                num(out.achieved),
                out.tau,
                out.rounds_run,
                out.live
            ))
        }
        other => Err(bad(&format!("unknown op {other:?}"))),
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use crate::server::{Server, ServerConfig};
    use crate::tenant::TenantConfig;
    use kadabra_graph::generators::{grid, GridConfig};
    use kadabra_telemetry::json::Json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn ask(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> Json {
        stream.write_all(req.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("newline");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        Json::parse(&line).expect("reply json")
    }

    #[test]
    fn socket_round_trip_all_ops() {
        let s = Server::new(ServerConfig { deterministic: true, background_refine: false });
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        s.add_tenant("grid", &g, &TenantConfig::new(23));
        let mut sock = s.listen("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(sock.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        let r = ask(&mut stream, &mut reader, r#"{"op":"tenants"}"#);
        let names = r.get("tenants").and_then(Json::as_array).expect("tenants");
        assert_eq!(names.len(), 1);

        let r = ask(
            &mut stream,
            &mut reader,
            r#"{"op":"refine","tenant":"grid","eps":0.25,"max_rounds":64}"#,
        );
        assert!(matches!(r.get("ok"), Some(Json::Bool(true))), "refine ok: {r:?}");

        let r = ask(&mut stream, &mut reader, r#"{"op":"vertex","tenant":"grid","v":12}"#);
        assert!(r.get("tau").and_then(Json::as_f64).expect("tau") > 0.0);

        let r = ask(&mut stream, &mut reader, r#"{"op":"topk","tenant":"grid","k":5}"#);
        assert_eq!(r.get("top").and_then(Json::as_array).expect("top").len(), 5);

        let r = ask(&mut stream, &mut reader, r#"{"op":"estimate","tenant":"grid","eps":0.3}"#);
        assert_eq!(r.get("scores").and_then(Json::as_array).expect("scores").len(), g.num_nodes());

        let r = ask(&mut stream, &mut reader, r#"{"op":"vertex","tenant":"nope","v":0}"#);
        assert_eq!(r.get("code").and_then(Json::as_str), Some("unknown_tenant"));

        let r = ask(&mut stream, &mut reader, r#"{"op":"vertex","tenant":"grid"}"#);
        assert_eq!(r.get("code").and_then(Json::as_str), Some("bad_request"));

        // A static tenant rejects updates with a typed code.
        let r =
            ask(&mut stream, &mut reader, r#"{"op":"update","tenant":"grid","inserts":[[0,24]]}"#);
        assert_eq!(r.get("code").and_then(Json::as_str), Some("not_dynamic"));

        sock.shutdown();
    }

    #[test]
    fn socket_update_round_trip_on_a_dynamic_tenant() {
        let s = crate::testkit::boot_dynamic(31);
        let mut sock = s.listen("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(sock.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        let r = ask(
            &mut stream,
            &mut reader,
            r#"{"op":"refine","tenant":"gnm","eps":0.3,"max_rounds":64}"#,
        );
        assert!(matches!(r.get("ok"), Some(Json::Bool(true))), "refine ok: {r:?}");
        let tau = r.get("tau").and_then(Json::as_f64).expect("tau");

        let r = ask(
            &mut stream,
            &mut reader,
            r#"{"op":"update","tenant":"gnm","inserts":[[0,7]],"deletes":[],"refine_rounds":4}"#,
        );
        let reply = if matches!(r.get("ok"), Some(Json::Bool(true))) {
            r
        } else {
            // Edge {0,7} may already exist in the seeded corpus — delete it
            // instead; exactly one of the two must apply.
            assert_eq!(r.get("code").and_then(Json::as_str), Some("bad_update"));
            ask(
                &mut stream,
                &mut reader,
                r#"{"op":"update","tenant":"gnm","deletes":[[0,7]],"refine_rounds":4}"#,
            )
        };
        assert!(matches!(reply.get("ok"), Some(Json::Bool(true))), "update ok: {reply:?}");
        assert_eq!(reply.get("seq").and_then(Json::as_f64), Some(1.0));
        let inv = reply.get("invalidated").and_then(Json::as_f64).expect("invalidated");
        let ret = reply.get("retained").and_then(Json::as_f64).expect("retained");
        assert_eq!(inv + ret, tau, "classification must cover every retained sample");
        assert!(reply.get("generation").and_then(Json::as_f64).expect("generation") >= 1.0);

        // Queries still answer on the new generation.
        let r = ask(&mut stream, &mut reader, r#"{"op":"vertex","tenant":"gnm","v":3}"#);
        assert!(r.get("tau").and_then(Json::as_f64).expect("tau") > 0.0);

        let r = ask(&mut stream, &mut reader, r#"{"op":"update","tenant":"gnm"}"#);
        assert_eq!(r.get("code").and_then(Json::as_str), Some("bad_request"));

        sock.shutdown();
    }
}
