//! The shared estimate cache: the lock-free core of the serving layer
//! (DESIGN.md §13).
//!
//! Two structures, one writer, many readers:
//!
//! * the **frontier** — the tightest estimate published so far, stored in a
//!   two-slot seqlock. The sampler pool (the single writer; exclusivity is
//!   the tenant's engine mutex) writes the *inactive* slot and flips the
//!   active index, so readers are never blocked and never see a torn
//!   snapshot;
//! * the **ε-schedule stages** — write-once-per-generation slots, one per
//!   scheduled ε, frozen at the first publication whose achieved ε meets
//!   the stage. A frozen stage never changes again *within a generation*,
//!   which is what makes `estimate` answers bit-reproducible from
//!   `(plan, seed)` regardless of how queries and refinement interleave:
//!   the answer at a requested ε always comes from that ε's designated
//!   stage, not from the moving frontier.
//!
//! # Generations (streaming updates, DESIGN.md §14)
//!
//! A dynamic tenant's graph changes under the cache. Every answer frozen
//! before an update batch describes the *old* graph, so the batch must
//! fence them off: [`EstimateCache::bump_generation`] clears every stage's
//! readiness word and retires the frontier **before** incrementing the
//! generation counter, and each stage freeze records the generation it
//! froze under (`ready_gen = generation + 1`). A stage read loads the
//! readiness word on both sides of the data copy and retries on mismatch,
//! so a reader racing a bump-and-refreeze either gets one generation's
//! complete frozen contents or `false` — never a blend of the pre- and
//! post-update graphs. (The generation counter is monotone, so the ABA
//! pattern — clear, refreeze, same word value — cannot occur.)
//!
//! # Coherence protocol
//!
//! Writer, per frontier publication (into the slot readers are *not*
//! directed at): store odd `seq` (Relaxed), store every data word
//! (Release), store even `seq` (Release), flip `active` (Release). Reader:
//! load `active` (Acquire), load `seq` (Acquire, retry if odd), load data
//! words (Acquire), reload `seq` (Acquire, retry on mismatch).
//!
//! Why a reader can never return a mixed snapshot: suppose a reader's data
//! load observes a value from publication *P*. That Acquire load
//! synchronizes with the writer's Release store, so *P*'s earlier odd-`seq`
//! store happens-before the reader's final `seq` load — the reader must see
//! `seq` odd or past *P*, the check fails, and it retries. If every data
//! load observed pre-*P* values, the snapshot is the consistent previous
//! one. Either way the returned snapshot is exactly one publication's
//! contents. `tests/loom.rs` model-checks this argument, including a
//! negative control with the re-check deleted.
//!
//! The read path is allocation- and lock-free — enforced structurally by
//! the `hot-loop-hygiene` lint pass, which scans the bodies of
//! [`EstimateCache::read_frontier_into`], [`EstimateCache::read_vertex`]
//! and [`EstimateCache::read_stage_into`], and empirically by the
//! `bench_server` zero-allocation gate.

use crate::sync::{AtomicU64, AtomicUsize, Ordering};

/// One seqlock slot of the frontier.
struct Slot {
    /// Even = stable, odd = mid-write. Incremented twice per publication.
    seq: AtomicU64,
    /// Per-vertex path counts c̃(v), internal (relabeled) vertex order.
    counts: Box<[AtomicU64]>,
    /// Total samples τ behind `counts`.
    tau: AtomicU64,
    /// Achieved ε of this publication (`f64::to_bits`).
    eps_bits: AtomicU64,
    /// Refinement round that produced this publication.
    round: AtomicU64,
}

impl Slot {
    fn new(n: usize) -> Self {
        Slot {
            seq: AtomicU64::new(0),
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            tau: AtomicU64::new(0),
            eps_bits: AtomicU64::new(0),
            round: AtomicU64::new(0),
        }
    }
}

/// One write-once-per-generation ε-schedule stage.
struct Stage {
    /// The scheduled ε this stage freezes at (immutable).
    eps: f64,
    /// 0 while unfrozen; `g + 1` (Release, after the data words) once
    /// frozen under cache generation `g`. Cleared back to 0 only by
    /// [`EstimateCache::bump_generation`].
    ready_gen: AtomicU64,
    /// Frozen per-vertex counts.
    counts: Box<[AtomicU64]>,
    /// Frozen τ.
    tau: AtomicU64,
    /// Round at which the stage froze.
    round: AtomicU64,
}

/// Scratch for one frontier read; reusing it across queries keeps the read
/// path allocation-free.
#[derive(Debug, Clone)]
pub struct FrontierSnapshot {
    /// Per-vertex counts, internal vertex order (length n).
    pub counts: Vec<u64>,
    /// Total samples τ.
    pub tau: u64,
    /// Achieved ε of the snapshot.
    pub eps: f64,
    /// Refinement round of the snapshot.
    pub round: u64,
}

impl FrontierSnapshot {
    /// An empty snapshot sized for an `n`-vertex tenant.
    pub fn new(n: usize) -> Self {
        FrontierSnapshot { counts: vec![0; n], tau: 0, eps: 1.0, round: 0 }
    }
}

/// Scratch for one stage read (same layout as [`FrontierSnapshot`], minus
/// the moving ε — a stage's ε is part of the schedule).
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// Per-vertex counts, internal vertex order (length n).
    pub counts: Vec<u64>,
    /// Total samples τ.
    pub tau: u64,
    /// Round at which the stage froze.
    pub round: u64,
}

impl StageSnapshot {
    /// An empty snapshot sized for an `n`-vertex tenant.
    pub fn new(n: usize) -> Self {
        StageSnapshot { counts: vec![0; n], tau: 0, round: 0 }
    }
}

/// One vertex's frontier read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexRead {
    /// The vertex's path count c̃(v) (internal id).
    pub count: u64,
    /// Total samples τ.
    pub tau: u64,
    /// Achieved ε of the publication the read hit.
    pub eps: f64,
    /// Refinement round of that publication.
    pub round: u64,
}

/// Sentinel for "no publication yet".
const NO_ACTIVE: usize = usize::MAX;

/// The per-tenant estimate cache. See the module docs for the protocol.
pub struct EstimateCache {
    n: usize,
    slots: [Slot; 2],
    /// Index of the slot readers should use; `NO_ACTIVE` until the first
    /// publication.
    active: AtomicUsize,
    stages: Box<[Stage]>,
    /// Graph generation the cache is serving; bumped by each update batch.
    generation: AtomicU64,
    /// Total frontier publications (diagnostics).
    publishes: AtomicU64,
}

impl EstimateCache {
    /// A cache for an `n`-vertex tenant with the given ε schedule
    /// (strictly descending, all in (0, 1)).
    pub fn new(n: usize, schedule: &[f64]) -> Self {
        assert!(n > 0, "empty tenant");
        assert!(!schedule.is_empty(), "empty ε schedule");
        assert!(
            schedule.windows(2).all(|w| w[0] > w[1]),
            "ε schedule must be strictly descending: {schedule:?}"
        );
        assert!(schedule.iter().all(|&e| e > 0.0 && e < 1.0), "ε out of (0,1): {schedule:?}");
        EstimateCache {
            n,
            slots: [Slot::new(n), Slot::new(n)],
            active: AtomicUsize::new(NO_ACTIVE),
            stages: schedule
                .iter()
                .map(|&eps| Stage {
                    eps,
                    ready_gen: AtomicU64::new(0),
                    counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
                    tau: AtomicU64::new(0),
                    round: AtomicU64::new(0),
                })
                .collect(),
            generation: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        }
    }

    /// Number of vertices the cache serves.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The ε schedule.
    pub fn schedule(&self) -> Vec<f64> {
        self.stages.iter().map(|s| s.eps).collect()
    }

    /// The designated stage for a requested ε: the loosest scheduled ε that
    /// still satisfies the request. `None` if the request is tighter than
    /// the schedule floor.
    pub fn stage_for(&self, eps: f64) -> Option<usize> {
        self.stages.iter().position(|s| s.eps <= eps)
    }

    /// Whether stage `i` has frozen under the current generation.
    pub fn stage_ready(&self, i: usize) -> bool {
        self.stages[i].ready_gen.load(Ordering::Acquire) != 0
    }

    /// The graph generation the cache is serving (0 until the first
    /// [`EstimateCache::bump_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Fences off every answer derived from the pre-update graph (single
    /// writer: callers hold the tenant's engine mutex). Order matters:
    /// stages are cleared *first*, then the frontier is retired, then the
    /// generation advances — so by the time readers can observe the new
    /// generation, no old-graph answer is reachable. Until the first
    /// post-update publication, readers see "not ready" rather than stale
    /// data. Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        for stage in self.stages.iter() {
            stage.ready_gen.store(0, Ordering::Release);
        }
        self.active.store(NO_ACTIVE, Ordering::Release);
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The scheduled ε of stage `i`.
    pub fn stage_eps(&self, i: usize) -> f64 {
        self.stages[i].eps
    }

    /// Total frontier publications so far.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Acquire)
    }

    /// Publishes a new frontier (single writer: callers hold the tenant's
    /// engine mutex). Also freezes every not-yet-ready stage whose
    /// scheduled ε is met by `eps`.
    pub fn publish_frontier(&self, counts: &[u64], tau: u64, eps: f64, round: u64) {
        assert_eq!(counts.len(), self.n, "frontier frame length mismatch");
        let cur = self.active.load(Ordering::Acquire);
        let target = if cur == NO_ACTIVE { 0 } else { 1 - cur };
        let slot = &self.slots[target];
        // Odd seq marks the slot mid-write; sequenced before the data
        // stores, so any reader that consumes one of them must notice.
        let s = slot.seq.load(Ordering::Acquire);
        slot.seq.store(s + 1, Ordering::Release);
        for (i, &c) in counts.iter().enumerate() {
            slot.counts[i].store(c, Ordering::Release);
        }
        slot.tau.store(tau, Ordering::Release);
        slot.eps_bits.store(eps.to_bits(), Ordering::Release);
        slot.round.store(round, Ordering::Release);
        slot.seq.store(s + 2, Ordering::Release);
        self.active.store(target, Ordering::Release);
        self.publishes.fetch_add(1, Ordering::Release);
        let gen_word = self.generation.load(Ordering::Acquire) + 1;
        for stage in self.stages.iter() {
            if eps <= stage.eps && stage.ready_gen.load(Ordering::Acquire) == 0 {
                for (a, &c) in stage.counts.iter().zip(counts) {
                    a.store(c, Ordering::Release);
                }
                stage.tau.store(tau, Ordering::Release);
                stage.round.store(round, Ordering::Release);
                stage.ready_gen.store(gen_word, Ordering::Release);
            }
        }
    }

    /// Reads a consistent frontier snapshot into `out`. Returns `false` if
    /// nothing has been published yet. Lock- and allocation-free; `out`
    /// must be sized for this cache.
    pub fn read_frontier_into(&self, out: &mut FrontierSnapshot) -> bool {
        debug_assert_eq!(out.counts.len(), self.n);
        loop {
            let idx = self.active.load(Ordering::Acquire);
            if idx == NO_ACTIVE {
                return false;
            }
            let slot = &self.slots[idx];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                core::hint::spin_loop();
                continue;
            }
            for (o, a) in out.counts.iter_mut().zip(slot.counts.iter()) {
                *o = a.load(Ordering::Acquire);
            }
            out.tau = slot.tau.load(Ordering::Acquire);
            out.eps = f64::from_bits(slot.eps_bits.load(Ordering::Acquire));
            out.round = slot.round.load(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return true;
            }
        }
    }

    /// Reads one vertex's frontier entry (internal id). `None` until the
    /// first publication. Lock- and allocation-free.
    pub fn read_vertex(&self, v: usize) -> Option<VertexRead> {
        debug_assert!(v < self.n);
        loop {
            let idx = self.active.load(Ordering::Acquire);
            if idx == NO_ACTIVE {
                return None;
            }
            let slot = &self.slots[idx];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                core::hint::spin_loop();
                continue;
            }
            let count = slot.counts[v].load(Ordering::Acquire);
            let tau = slot.tau.load(Ordering::Acquire);
            let eps = f64::from_bits(slot.eps_bits.load(Ordering::Acquire));
            let round = slot.round.load(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return Some(VertexRead { count, tau, eps, round });
            }
        }
    }

    /// Reads frozen stage `i` into `out`. Returns `false` while the stage
    /// has not frozen (under the current generation). Lock- and
    /// allocation-free; a `true` result is bit-stable for as long as the
    /// generation holds. The readiness word is re-checked after the data
    /// copy: if an update batch cleared-and-refroze the stage mid-read, the
    /// generation words differ (the counter is monotone) and the read
    /// retries instead of returning a mixed-generation snapshot.
    pub fn read_stage_into(&self, i: usize, out: &mut StageSnapshot) -> bool {
        debug_assert_eq!(out.counts.len(), self.n);
        let stage = &self.stages[i];
        loop {
            let g1 = stage.ready_gen.load(Ordering::Acquire);
            if g1 == 0 {
                return false;
            }
            for (o, a) in out.counts.iter_mut().zip(stage.counts.iter()) {
                *o = a.load(Ordering::Acquire);
            }
            out.tau = stage.tau.load(Ordering::Acquire);
            out.round = stage.round.load(Ordering::Acquire);
            let g2 = stage.ready_gen.load(Ordering::Acquire);
            if g1 == g2 {
                return true;
            }
            core::hint::spin_loop();
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn unpublished_cache_reads_empty() {
        let c = EstimateCache::new(3, &[0.5, 0.1]);
        let mut snap = FrontierSnapshot::new(3);
        assert!(!c.read_frontier_into(&mut snap));
        assert!(c.read_vertex(0).is_none());
        let mut st = StageSnapshot::new(3);
        assert!(!c.read_stage_into(0, &mut st));
        assert_eq!(c.publish_count(), 0);
        assert_eq!(c.num_vertices(), 3);
    }

    #[test]
    fn frontier_reads_see_the_latest_publication() {
        let c = EstimateCache::new(3, &[0.5, 0.1]);
        c.publish_frontier(&[1, 2, 3], 6, 0.4, 0);
        c.publish_frontier(&[10, 20, 30], 60, 0.2, 1);
        let mut snap = FrontierSnapshot::new(3);
        assert!(c.read_frontier_into(&mut snap));
        assert_eq!(snap.counts, vec![10, 20, 30]);
        assert_eq!(snap.tau, 60);
        assert_eq!(snap.eps, 0.2);
        assert_eq!(snap.round, 1);
        let v = c.read_vertex(2).expect("published");
        assert_eq!((v.count, v.tau, v.round), (30, 60, 1));
        assert_eq!(c.publish_count(), 2);
    }

    #[test]
    fn stages_freeze_once_and_stay_bit_stable() {
        let c = EstimateCache::new(2, &[0.5, 0.1]);
        c.publish_frontier(&[1, 1], 2, 0.3, 0); // freezes stage 0 only
        assert!(c.stage_ready(0));
        assert!(!c.stage_ready(1));
        let mut st = StageSnapshot::new(2);
        assert!(c.read_stage_into(0, &mut st));
        assert_eq!((st.counts.clone(), st.tau, st.round), (vec![1, 1], 2, 0));
        // A tighter later publication freezes stage 1 but must not move
        // stage 0.
        c.publish_frontier(&[5, 7], 12, 0.05, 3);
        assert!(c.stage_ready(1));
        assert!(c.read_stage_into(0, &mut st));
        assert_eq!((st.counts.clone(), st.tau, st.round), (vec![1, 1], 2, 0));
        assert!(c.read_stage_into(1, &mut st));
        assert_eq!((st.counts, st.tau, st.round), (vec![5, 7], 12, 3));
    }

    #[test]
    fn stage_selection_follows_the_schedule() {
        let c = EstimateCache::new(2, &[0.5, 0.25, 0.1]);
        assert_eq!(c.stage_for(0.6), Some(0));
        assert_eq!(c.stage_for(0.5), Some(0));
        assert_eq!(c.stage_for(0.3), Some(1));
        assert_eq!(c.stage_for(0.1), Some(2));
        assert_eq!(c.stage_for(0.05), None);
        assert_eq!(c.schedule(), vec![0.5, 0.25, 0.1]);
        assert_eq!(c.stage_eps(1), 0.25);
    }

    #[test]
    #[should_panic(expected = "strictly descending")]
    fn non_descending_schedule_is_rejected() {
        let _ = EstimateCache::new(2, &[0.1, 0.5]);
    }

    #[test]
    fn generation_bump_fences_all_old_graph_answers() {
        let c = EstimateCache::new(2, &[0.5, 0.1]);
        c.publish_frontier(&[3, 4], 7, 0.05, 2); // freezes both stages
        assert!(c.stage_ready(0) && c.stage_ready(1));
        assert_eq!(c.generation(), 0);

        assert_eq!(c.bump_generation(), 1);
        // Every pre-update answer is now unreachable: frontier retired,
        // stages unfrozen.
        let mut snap = FrontierSnapshot::new(2);
        assert!(!c.read_frontier_into(&mut snap));
        assert!(c.read_vertex(0).is_none());
        let mut st = StageSnapshot::new(2);
        assert!(!c.read_stage_into(0, &mut st) && !c.read_stage_into(1, &mut st));

        // The first post-update publication re-freezes under generation 1
        // with new-graph data only.
        c.publish_frontier(&[30, 40], 70, 0.3, 5);
        assert!(c.read_frontier_into(&mut snap));
        assert_eq!((snap.counts.clone(), snap.tau, snap.round), (vec![30, 40], 70, 5));
        assert!(c.stage_ready(0) && !c.stage_ready(1));
        assert!(c.read_stage_into(0, &mut st));
        assert_eq!((st.counts.clone(), st.tau, st.round), (vec![30, 40], 70, 5));
        assert_eq!(c.generation(), 1);
    }
}
