//! A tenant: one named resident graph with its own sampler pool, estimate
//! cache, δ calibration, and admission gate.
//!
//! Building a tenant runs the same setup phases as the flat driver —
//! degree-relabel (PR 5), iFUB diameter, calibration with per-rank sampler
//! streams — so a tenant's estimates are comparable sample-for-sample with a
//! `kadabra_mpi_flat` run at the same seed and rank count. Queries read the
//! [`EstimateCache`] without touching the engine; refinement locks the
//! engine and advances it in deterministic fixed-length rounds.

use crate::admission::{Admission, AdmissionConfig};
use crate::cache::{EstimateCache, FrontierSnapshot, StageSnapshot};
use crate::engine::{EngineCheckpoint, RefineEngine};
use crate::sync::{AtomicU64, Ordering};
use crate::QueryError;
use kadabra_core::bounds::{self, f_bound, g_bound};
use kadabra_core::calibration::Calibration;
use kadabra_core::phases::{calibration_samples_for_thread, diameter_phase};
use kadabra_core::sampler::ThreadSampler;
use kadabra_core::KadabraConfig;
use kadabra_dynamic::{DynamicEngine, UpdateBatch};
use kadabra_graph::{Graph, NodeId, Permutation};
use kadabra_mpisim::FaultPlan;
use kadabra_telemetry::{CounterId, EventWriter, SpanId, Telemetry};
use parking_lot::Mutex;

/// How a tenant is provisioned.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Resident sampler ranks in the tenant's pool.
    pub pool_ranks: usize,
    /// Failure probability δ of every guarantee the tenant hands out.
    pub delta: f64,
    /// Master seed; with the same seed, graph, and fault plan the tenant's
    /// whole cache history is bit-reproducible.
    pub seed: u64,
    /// Strictly descending ε stages; the last entry is the floor the
    /// background pool refines toward, and the tightest `estimate` queries
    /// can ask for.
    pub schedule: Vec<f64>,
    /// Reduction epochs per engine round — the determinism quantum (see
    /// [`RefineEngine`]).
    pub max_epochs_per_round: u32,
    /// Base of the epoch-length rule (smaller epochs = finer-grained
    /// rounds); defaults to the driver's `KadabraConfig` default.
    pub n0_base: f64,
    /// Rounds run synchronously at build time, so the cache is warm before
    /// the first query.
    pub warmup_rounds: u32,
    /// Per-tenant admission limits.
    pub admission: AdmissionConfig,
    /// Fault plan for the pool's collectives (crash faults included — the
    /// chaos harness injects them here).
    pub plan: FaultPlan,
    /// Provision the pool as an incremental [`DynamicEngine`] that accepts
    /// streaming edge updates ([`Tenant::update`]). Static tenants reject
    /// updates with [`QueryError::NotDynamic`].
    pub dynamic: bool,
}

impl TenantConfig {
    /// Service defaults at the given seed: 2 ranks, δ = 0.1, a four-stage
    /// schedule down to ε = 0.06, ideal (fault-free) delivery.
    pub fn new(seed: u64) -> Self {
        TenantConfig {
            pool_ranks: 2,
            delta: 0.1,
            seed,
            schedule: vec![0.5, 0.25, 0.12, 0.06],
            max_epochs_per_round: 2,
            n0_base: KadabraConfig::default().n0_base,
            warmup_rounds: 1,
            admission: AdmissionConfig::default(),
            plan: FaultPlan::ideal(seed),
            dynamic: false,
        }
    }

    /// Panics on nonsense: empty/non-descending schedules, out-of-range δ,
    /// an empty pool.
    pub fn validate(&self) {
        assert!(self.pool_ranks >= 1, "pool_ranks must be >= 1");
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta must be in (0, 1)");
        assert!(!self.schedule.is_empty(), "schedule must have at least one stage");
        for w in self.schedule.windows(2) {
            assert!(w[1] < w[0], "schedule must be strictly descending");
        }
        for &e in &self.schedule {
            assert!(e > 0.0 && e < 1.0, "stage epsilons must be in (0, 1)");
        }
        assert!(self.max_epochs_per_round >= 1, "rounds must run at least one epoch");
        assert!(self.n0_base >= 1.0, "n0_base must be at least 1");
    }
}

/// Reusable per-client query buffers: queries fill these in place, so the
/// steady-state read path performs no allocation (enforced by the
/// hot-loop-hygiene lint on the cache and measured by `bench_server`).
pub struct QueryScratch {
    /// Frontier snapshot target.
    pub frontier: FrontierSnapshot,
    /// Frozen-stage snapshot target.
    pub stage: StageSnapshot,
    /// Index permutation reused by top-k selection.
    pub idx: Vec<u32>,
}

impl QueryScratch {
    /// Scratch sized for an `n`-vertex tenant.
    pub fn new(n: usize) -> Self {
        QueryScratch {
            frontier: FrontierSnapshot::new(n),
            stage: StageSnapshot::new(n),
            idx: (0..n as u32).collect(),
        }
    }
}

/// A per-vertex answer: the point estimate plus its two-sided confidence
/// interval at the tenant's δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexEstimate {
    /// The queried vertex (original id).
    pub vertex: NodeId,
    /// Betweenness point estimate c̃/τ.
    pub estimate: f64,
    /// Lower confidence bound `max(0, b̃ − f)`.
    pub lower: f64,
    /// Upper confidence bound `min(1, b̃ + g)`.
    pub upper: f64,
    /// Accuracy of the frontier the answer came from.
    pub eps: f64,
    /// Samples behind the answer.
    pub tau: u64,
    /// Engine round that published the answer.
    pub round: u64,
}

/// Metadata accompanying a full-vector or top-k answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateMeta {
    /// Accuracy of the snapshot the answer came from (a frozen stage ε for
    /// `estimate`, the live frontier ε for `topk`).
    pub eps: f64,
    /// Samples behind the answer.
    pub tau: u64,
    /// Engine round that published the snapshot.
    pub round: u64,
}

/// What an update call achieved (dynamic tenants only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Sequence number the batch was assigned in the tenant's delta log.
    pub seq: u64,
    /// Retained samples that crossed the batch and were redrawn.
    pub invalidated: u64,
    /// Retained samples kept as-is (provably unaffected).
    pub retained: u64,
    /// Confirmed samples after the update (and any follow-up refinement).
    pub tau: u64,
    /// Accuracy the maintained frame supports on the updated graph.
    pub achieved: f64,
    /// Cache generation the post-update answers publish under.
    pub generation: u64,
    /// Sampler ranks still alive.
    pub live: usize,
    /// Whether the delta log compacted back into a fresh CSR.
    pub compacted: bool,
}

/// What a resize call achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeOutcome {
    /// Fresh ranks added to the pool.
    pub joined: usize,
    /// Ranks retired from the pool (their ledgers folded into a survivor).
    pub shed: usize,
    /// Pool size after the call.
    pub live: usize,
    /// Cache generation the post-resize frontier publishes under
    /// (unchanged when the call was a no-op).
    pub generation: u64,
    /// Confirmed samples after the call — always conserved across resizes.
    pub tau: u64,
}

/// What a refine call achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOutcome {
    /// Accuracy after the call.
    pub achieved: f64,
    /// Confirmed samples after the call.
    pub tau: u64,
    /// Engine rounds actually run (0 if the target was already met).
    pub rounds_run: u32,
    /// Sampler ranks still alive.
    pub live: usize,
}

/// The tenant's sampler pool: a static [`RefineEngine`], or the
/// incremental [`DynamicEngine`] whose retained sample population is
/// maintained across streaming edge updates.
enum TenantEngine {
    Static(Box<RefineEngine>),
    Dynamic(Box<DynamicEngine>),
}

impl TenantEngine {
    fn live(&self) -> usize {
        match self {
            TenantEngine::Static(e) => e.live(),
            TenantEngine::Dynamic(e) => e.live(),
        }
    }

    fn last_achieved(&self) -> f64 {
        match self {
            TenantEngine::Static(e) => e.last_achieved(),
            TenantEngine::Dynamic(e) => e.last_achieved(),
        }
    }

    fn last_tau(&self) -> u64 {
        match self {
            TenantEngine::Static(e) => e.last_tau(),
            TenantEngine::Dynamic(e) => e.last_tau(),
        }
    }

    /// The sample cap currently in force (the dynamic engine's ω ratchets
    /// up as updates stretch the graph).
    fn omega(&self) -> u64 {
        match self {
            TenantEngine::Static(e) => e.omega(),
            TenantEngine::Dynamic(e) => e.omega(),
        }
    }
}

/// One resident graph and everything needed to answer queries about it.
pub struct Tenant {
    name: String,
    /// Degree-relabeled working graph (cache-aware layout, PR 5). For
    /// dynamic tenants this is the *base snapshot*; the live graph evolves
    /// inside the engine's delta log.
    g: Graph,
    perm: Permutation,
    vd: u32,
    /// Provisioned pool size — what an elastic refine sheds back to.
    base_ranks: usize,
    /// Sample cap in force; mirrors the dynamic engine's ratcheting ω so
    /// the lock-free confidence-interval path stays honest after updates.
    omega: AtomicU64,
    floor: f64,
    delta: f64,
    calibration: Calibration,
    cache: EstimateCache,
    engine: Mutex<TenantEngine>,
    admission: Admission,
}

impl Tenant {
    /// Provisions a tenant: relabel, diameter, calibration (mirroring the
    /// flat driver's per-rank streams at `pool_ranks`), engine, and
    /// `warmup_rounds` synchronous rounds so the cache starts warm.
    pub fn build(name: &str, g: &Graph, cfg: &TenantConfig, tel: &Telemetry) -> Tenant {
        cfg.validate();
        assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
        let (rg, perm) = g.relabel_by_degree();
        let n = rg.num_nodes();
        // xtask: allow(unwrap) — validate() rejects empty schedules.
        let floor = *cfg.schedule.last().unwrap();
        let kcfg = KadabraConfig {
            epsilon: floor,
            delta: cfg.delta,
            seed: cfg.seed,
            n0_base: cfg.n0_base,
            ..Default::default()
        };
        kcfg.validate();
        let (vd, _) = diameter_phase(&rg, &kcfg);
        let omega = bounds::omega(kcfg.c, floor, cfg.delta, vd);

        // Calibration, sequentially replaying each pool rank's stream so the
        // δ budgets match what `kadabra_mpi_flat` at the same (seed, ranks)
        // would derive.
        let mut total = vec![0u64; n + 1];
        for r in 0..cfg.pool_ranks {
            let mut sampler = ThreadSampler::new(n, cfg.seed, r, 0);
            let mut counts = vec![0u64; n + 1];
            let taken = calibration_samples_for_thread(
                &rg,
                &mut sampler,
                &mut counts[..n],
                &kcfg,
                omega,
                cfg.pool_ranks,
            );
            counts[n] = taken;
            for (a, &x) in total.iter_mut().zip(&counts) {
                *a += x;
            }
        }
        let calibration = Calibration::from_counts(&total[..n], total[n], &kcfg);

        let engine = if cfg.dynamic {
            // One sampling thread per rank: the dynamic pool's adaptive
            // streams then coincide with the static engine's, so a dynamic
            // tenant that never receives an update samples identically.
            TenantEngine::Dynamic(Box::new(DynamicEngine::new(
                rg.clone(),
                kcfg,
                omega,
                vd,
                cfg.pool_ranks,
                1,
                cfg.max_epochs_per_round,
                cfg.plan.clone(),
            )))
        } else {
            TenantEngine::Static(Box::new(RefineEngine::new(
                n,
                kcfg,
                omega,
                cfg.pool_ranks,
                cfg.max_epochs_per_round,
                cfg.plan.clone(),
            )))
        };
        let tenant = Tenant {
            name: name.to_string(),
            g: rg,
            perm,
            vd,
            base_ranks: cfg.pool_ranks,
            omega: AtomicU64::new(omega),
            floor,
            delta: cfg.delta,
            calibration,
            cache: EstimateCache::new(n, &cfg.schedule),
            engine: Mutex::new(engine),
            admission: Admission::new(cfg.admission),
        };
        if cfg.warmup_rounds > 0 {
            let w = tel.writer(crate::SERVICE_RANK, 0);
            // Refine toward the floor with a `warmup_rounds` budget: the
            // cache is guaranteed at least one publication before the first
            // query.
            tenant.refine(0.0, cfg.warmup_rounds, tel, &w);
        }
        tenant
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vertex count of the resident graph.
    pub fn num_vertices(&self) -> usize {
        self.g.num_nodes()
    }

    /// The tightest ε the schedule reaches.
    pub fn floor_eps(&self) -> f64 {
        self.floor
    }

    /// The ε schedule.
    pub fn schedule(&self) -> Vec<f64> {
        self.cache.schedule()
    }

    /// Sample cap ω for the schedule floor (ratchets up on dynamic tenants
    /// as updates stretch the graph).
    pub fn omega(&self) -> u64 {
        self.omega.load(Ordering::Relaxed)
    }

    /// Whether this tenant accepts streaming edge updates.
    pub fn is_dynamic(&self) -> bool {
        matches!(&*self.engine.lock(), TenantEngine::Dynamic(_))
    }

    /// Vertex-diameter upper bound used to derive ω.
    pub fn vertex_diameter(&self) -> u32 {
        self.vd
    }

    /// Failure probability δ of the tenant's guarantees.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The admission gate (exposed for the front-end and tests).
    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    /// The estimate cache (exposed for tests and the bench harness).
    pub fn cache(&self) -> &EstimateCache {
        &self.cache
    }

    /// The accuracy currently published in the frontier (1.0 before the
    /// first publication).
    pub fn achieved_eps(&self) -> f64 {
        self.cache.read_vertex(0).map_or(1.0, |r| r.eps)
    }

    /// Advances the engine until the frontier supports `target_eps` (clamped
    /// at the schedule floor), up to `max_rounds` rounds, publishing each
    /// round's frame to the cache. Deterministic: round boundaries never
    /// depend on the caller, only the number of rounds run does.
    pub fn refine(
        &self,
        target_eps: f64,
        max_rounds: u32,
        tel: &Telemetry,
        w: &EventWriter,
    ) -> RefineOutcome {
        let target = target_eps.max(self.floor);
        let mut eng = self.engine.lock();
        let mut rounds = 0u32;
        while rounds < max_rounds
            && eng.live() > 0
            && eng.last_achieved() > target
            && eng.last_tau() < eng.omega()
        {
            let (global, tau, achieved, round) = match &mut *eng {
                TenantEngine::Static(e) => {
                    let rep = e.step(&self.g, &self.calibration, tel);
                    (rep.global, rep.tau, rep.achieved, rep.round)
                }
                TenantEngine::Dynamic(e) => {
                    let rep = e.refine(&self.calibration, tel);
                    (rep.global, rep.tau, rep.achieved, rep.round)
                }
            };
            let sp = w.begin(SpanId::CachePublish);
            self.cache.publish_frontier(&global[..self.g.num_nodes()], tau, achieved, round);
            w.end(sp);
            rounds += 1;
        }
        RefineOutcome {
            achieved: eng.last_achieved(),
            tau: eng.last_tau(),
            rounds_run: rounds,
            live: eng.live(),
        }
    }

    /// Provisioned pool size (what [`Tenant::refine_elastic`] sheds back to).
    pub fn base_ranks(&self) -> usize {
        self.base_ranks
    }

    /// Sampler ranks currently in the pool.
    pub fn pool_ranks(&self) -> usize {
        self.engine.lock().live()
    }

    /// Elastically resizes the pool to `ranks` sampler ranks at a round
    /// boundary (static tenants only — dynamic pools own their retained
    /// samples per rank and return [`QueryError::NotResizable`]).
    ///
    /// Under the engine lock: the pool grows with fresh-stream ranks or
    /// sheds its youngest ranks (folding their ledgers into a survivor —
    /// `[Σc̃, τ]` is conserved either way), the cache generation is bumped,
    /// and the current frame is re-published as the first frontier of the
    /// new generation, so readers never see answers that straddle the
    /// membership change. A no-op resize leaves the generation alone.
    pub fn resize(
        &self,
        ranks: usize,
        _tel: &Telemetry,
        w: &EventWriter,
    ) -> Result<ResizeOutcome, QueryError> {
        assert!(ranks >= 1, "a pool needs at least one sampler rank");
        let mut eng = self.engine.lock();
        let TenantEngine::Static(e) = &mut *eng else {
            return Err(QueryError::NotResizable);
        };
        if e.live() == ranks {
            return Ok(ResizeOutcome {
                joined: 0,
                shed: 0,
                live: ranks,
                generation: self.cache.generation(),
                tau: e.last_tau(),
            });
        }
        let sp = w.begin(SpanId::Rebalance);
        let (joined, shed) = e.resize(ranks);
        if joined > 0 {
            w.count(CounterId::RanksJoined, joined as u64);
        }
        let generation = self.cache.bump_generation();
        let global = e.current_frame();
        let n = self.g.num_nodes();
        let tau = global[n];
        if tau > 0 {
            self.cache.publish_frontier(&global[..n], tau, e.last_achieved(), e.round());
        }
        w.end(sp);
        Ok(ResizeOutcome { joined, shed, live: e.live(), generation, tau })
    }

    /// Refines toward `target_eps` within a hard budget of `round_budget`
    /// engine rounds, elastically resizing the pool under deadline pressure:
    /// if the first half of the budget ends short of the target, the pool
    /// grows to `max_ranks` (publishing post-grow frontiers under a new
    /// cache generation) and spends the rest of the budget at the wider
    /// size; afterwards — target met or budget exhausted — the pool sheds
    /// back to its provisioned size. Deterministic: the grow decision
    /// depends only on round counts and the engine's own ε trajectory.
    ///
    /// Dynamic tenants never resize; for them this is plain [`Tenant::refine`].
    pub fn refine_elastic(
        &self,
        target_eps: f64,
        round_budget: u32,
        max_ranks: usize,
        tel: &Telemetry,
        w: &EventWriter,
    ) -> RefineOutcome {
        assert!(max_ranks >= 1);
        let target = target_eps.max(self.floor);
        let probe_budget = (round_budget / 2).max(1).min(round_budget);
        let mut out = self.refine(target_eps, probe_budget, tel, w);
        if out.achieved > target && round_budget > probe_budget {
            // Deadline pressure: half the budget is gone and the target is
            // still out of reach — grow (where possible) and spend the rest
            // of the budget at the wider size.
            if self.pool_ranks() < max_ranks {
                let _ = self.resize(max_ranks, tel, w);
            }
            let rest = self.refine(target_eps, round_budget - probe_budget, tel, w);
            out = RefineOutcome { rounds_run: out.rounds_run + rest.rounds_run, ..rest };
        }
        if self.pool_ranks() > self.base_ranks {
            // Idle again (or out of budget): shed back to the provisioned
            // size so the grown capacity does not outlive the pressure.
            if let Ok(r) = self.resize(self.base_ranks, tel, w) {
                out.live = r.live;
            }
        }
        out
    }

    /// Checkpoints the engine's ledgers (see
    /// [`crate::engine::RefineEngine::checkpoint`]).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        match &*self.engine.lock() {
            TenantEngine::Static(e) => e.checkpoint(),
            TenantEngine::Dynamic(e) => EngineCheckpoint {
                round: e.rounds(),
                generation: 0,
                images: e.checkpoint_ledgers(),
            },
        }
    }

    /// Applies one batch of edge updates to a dynamic tenant (original
    /// vertex ids). Under the engine lock: the batch enters the delta log,
    /// exactly the invalidated samples are redrawn, the cache generation is
    /// bumped — retiring every answer about the old graph — and the
    /// maintained post-update frame is published under the new generation,
    /// so readers never see a mixed-generation answer. Afterwards up to
    /// `refine_rounds` rounds re-converge the invalidated mass toward the
    /// schedule floor.
    pub fn update(
        &self,
        inserts: &[(NodeId, NodeId)],
        deletes: &[(NodeId, NodeId)],
        refine_rounds: u32,
        tel: &Telemetry,
        w: &EventWriter,
    ) -> Result<UpdateOutcome, QueryError> {
        let n = self.g.num_nodes();
        let map = |pairs: &[(NodeId, NodeId)]| -> Result<Vec<(NodeId, NodeId)>, QueryError> {
            pairs
                .iter()
                .map(|&(u, v)| {
                    if (u as usize) >= n || (v as usize) >= n {
                        return Err(QueryError::BadVertex);
                    }
                    Ok((self.perm.to_new(u), self.perm.to_new(v)))
                })
                .collect()
        };
        let batch = UpdateBatch::new(map(inserts)?, map(deletes)?)
            .map_err(|e| QueryError::BadUpdate(e.to_string()))?;

        let mut eng = self.engine.lock();
        let TenantEngine::Dynamic(dyn_eng) = &mut *eng else {
            return Err(QueryError::NotDynamic);
        };
        let sp = w.begin(SpanId::Update);
        let rep = dyn_eng
            .apply_update(&batch, &self.calibration, tel)
            .map_err(|e| QueryError::BadUpdate(e.to_string()))?;
        self.omega.store(dyn_eng.omega(), Ordering::Relaxed);
        let generation = self.cache.bump_generation();
        self.cache.publish_frontier(&rep.global[..n], rep.tau, rep.achieved, dyn_eng.rounds());
        w.end(sp);
        drop(eng);

        let mut out = UpdateOutcome {
            seq: rep.seq,
            invalidated: rep.invalidated,
            retained: rep.retained,
            tau: rep.tau,
            achieved: rep.achieved,
            generation,
            live: rep.live,
            compacted: rep.compacted,
        };
        if refine_rounds > 0 {
            let r = self.refine(0.0, refine_rounds, tel, w);
            out.achieved = r.achieved;
            out.tau = r.tau;
            out.live = r.live;
        }
        Ok(out)
    }

    /// Answers a per-vertex query from the frontier: point estimate plus the
    /// Bernstein confidence interval at the tenant's δ. Lock- and
    /// allocation-free.
    pub fn vertex_estimate(&self, v: NodeId) -> Result<VertexEstimate, QueryError> {
        if (v as usize) >= self.g.num_nodes() {
            return Err(QueryError::BadVertex);
        }
        let j = self.perm.to_new(v);
        let read =
            self.cache.read_vertex(j as usize).ok_or(QueryError::NotReady { achieved: 1.0 })?;
        let b = read.count as f64 / read.tau.max(1) as f64;
        let omega = self.omega.load(Ordering::Relaxed);
        let f = f_bound(b, self.calibration.delta_l[j as usize], omega, read.tau);
        let g = g_bound(b, self.calibration.delta_u[j as usize], omega, read.tau);
        Ok(VertexEstimate {
            vertex: v,
            estimate: b,
            lower: (b - f).max(0.0),
            upper: (b + g).min(1.0),
            eps: read.eps,
            tau: read.tau,
            round: read.round,
        })
    }

    /// Answers a full-vector query at accuracy `eps` from the matching
    /// *frozen stage* (never the moving frontier), so repeated calls are
    /// bit-identical regardless of concurrent refinement. `out` is filled in
    /// original (pre-relabel) vertex order.
    pub fn estimate_into(
        &self,
        eps: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<f64>,
    ) -> Result<EstimateMeta, QueryError> {
        let stage =
            self.cache.stage_for(eps).ok_or(QueryError::UnsatisfiableEps { floor: self.floor })?;
        if !self.cache.read_stage_into(stage, &mut scratch.stage) {
            return Err(QueryError::NotReady { achieved: self.achieved_eps() });
        }
        let n = self.g.num_nodes();
        if out.len() != n {
            out.resize(n, 0.0);
        }
        let tau = scratch.stage.tau.max(1) as f64;
        for (j, &c) in scratch.stage.counts.iter().enumerate() {
            out[self.perm.to_old(j as NodeId) as usize] = c as f64 / tau;
        }
        Ok(EstimateMeta {
            eps: self.cache.stage_eps(stage),
            tau: scratch.stage.tau,
            round: scratch.stage.round,
        })
    }

    /// Answers a top-k query from the frontier. Ties break like
    /// `BetweennessResult::top_k`: descending score, then ascending original
    /// vertex id. `out` receives `(vertex, score)` pairs.
    pub fn topk_into(
        &self,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<EstimateMeta, QueryError> {
        if !self.cache.read_frontier_into(&mut scratch.frontier) {
            return Err(QueryError::NotReady { achieved: 1.0 });
        }
        let n = self.g.num_nodes();
        let counts = &scratch.frontier.counts;
        let perm = &self.perm;
        for (i, slot) in scratch.idx.iter_mut().enumerate() {
            *slot = i as u32;
        }
        scratch.idx.sort_unstable_by(|&a, &b| {
            counts[b as usize]
                .cmp(&counts[a as usize])
                .then_with(|| perm.to_old(a).cmp(&perm.to_old(b)))
        });
        let tau = scratch.frontier.tau.max(1) as f64;
        out.clear();
        for &j in scratch.idx.iter().take(k.min(n)) {
            out.push((perm.to_old(j), counts[j as usize] as f64 / tau));
        }
        Ok(EstimateMeta {
            eps: scratch.frontier.eps,
            tau: scratch.frontier.tau,
            round: scratch.frontier.round,
        })
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use kadabra_graph::generators::{grid, GridConfig};

    fn small_tenant(seed: u64) -> (Tenant, Telemetry) {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let tel = Telemetry::stats_only();
        let cfg = TenantConfig { warmup_rounds: 2, ..TenantConfig::new(seed) };
        let t = Tenant::build("grid", &g, &cfg, &tel);
        (t, tel)
    }

    #[test]
    fn warmup_makes_the_frontier_readable() {
        let (t, _tel) = small_tenant(3);
        assert!(t.achieved_eps() < 1.0, "warmup must publish a frontier");
        let v = t.vertex_estimate(12).expect("frontier answer");
        assert!(v.tau > 0);
        assert!(v.lower <= v.estimate && v.estimate <= v.upper);
    }

    #[test]
    fn bad_vertex_is_rejected() {
        let (t, _tel) = small_tenant(3);
        assert!(matches!(t.vertex_estimate(10_000), Err(QueryError::BadVertex)));
    }

    #[test]
    fn estimate_requires_a_frozen_stage() {
        let (t, tel) = small_tenant(4);
        let mut scratch = QueryScratch::new(t.num_vertices());
        let mut out = Vec::new();
        // ε tighter than the floor is unsatisfiable by construction.
        assert!(matches!(
            t.estimate_into(0.001, &mut scratch, &mut out),
            Err(QueryError::UnsatisfiableEps { .. })
        ));
        // Refine to the coarsest stage, which must then answer.
        let w = tel.writer(7, 0);
        let outcome = t.refine(t.schedule()[0], 64, &tel, &w);
        assert!(outcome.achieved <= t.schedule()[0]);
        let meta = t.estimate_into(t.schedule()[0], &mut scratch, &mut out).expect("stage frozen");
        assert_eq!(out.len(), t.num_vertices());
        assert!(meta.tau > 0);
        let sum: f64 = out.iter().sum();
        assert!(sum > 0.0);
    }

    fn small_dynamic_tenant(seed: u64) -> (Tenant, Telemetry) {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let tel = Telemetry::stats_only();
        let cfg = TenantConfig { dynamic: true, warmup_rounds: 2, ..TenantConfig::new(seed) };
        let t = Tenant::build("grid", &g, &cfg, &tel);
        (t, tel)
    }

    #[test]
    fn static_tenants_reject_updates() {
        let (t, tel) = small_tenant(3);
        let w = tel.writer(7, 0);
        assert!(!t.is_dynamic());
        assert_eq!(t.update(&[(0, 24)], &[], 0, &tel, &w).unwrap_err(), QueryError::NotDynamic);
    }

    #[test]
    fn dynamic_update_bumps_the_generation_and_stays_answerable() {
        let (t, tel) = small_dynamic_tenant(11);
        let w = tel.writer(7, 0);
        t.refine(0.25, 64, &tel, &w);
        let gen_before = t.cache().generation();
        let v_before = t.vertex_estimate(12).expect("pre-update answer");

        // A valid batch: one chord in, one grid edge out.
        let out = t.update(&[(0, 24)], &[(0, 1)], 8, &tel, &w).expect("update applies");
        assert_eq!(out.seq, 1);
        assert!(out.generation > gen_before, "update must retire the old generation");
        assert_eq!(out.invalidated + out.retained, v_before.tau, "τ conserved across the batch");
        let v_after = t.vertex_estimate(12).expect("post-update answer");
        assert!(v_after.tau > 0);

        // Bad batches are typed: unknown vertex, then a duplicate insert.
        let w2 = tel.writer(8, 0);
        assert_eq!(t.update(&[(0, 10_000)], &[], 0, &tel, &w2).unwrap_err(), QueryError::BadVertex);
        assert!(matches!(
            t.update(&[(0, 24)], &[], 0, &tel, &w2).unwrap_err(),
            QueryError::BadUpdate(_)
        ));
    }

    #[test]
    fn dynamic_tenant_without_updates_matches_the_static_pool() {
        // Same seed, same pool: until the first update arrives, the dynamic
        // engine must publish the exact frames the static engine publishes.
        let (ts, tel_s) = small_tenant(21);
        let (td, tel_d) = small_dynamic_tenant(21);
        let (ws, wd) = (tel_s.writer(7, 0), tel_d.writer(7, 0));
        let s = ts.refine(ts.floor_eps(), 64, &tel_s, &ws);
        let d = td.refine(td.floor_eps(), 64, &tel_d, &wd);
        assert_eq!(s.tau, d.tau, "stream-for-stream identical pools diverged");
        assert_eq!(s.achieved, d.achieved);
        let mut sc_s = QueryScratch::new(ts.num_vertices());
        let mut sc_d = QueryScratch::new(td.num_vertices());
        let (mut out_s, mut out_d) = (Vec::new(), Vec::new());
        ts.estimate_into(ts.floor_eps(), &mut sc_s, &mut out_s).expect("static stage");
        td.estimate_into(td.floor_eps(), &mut sc_d, &mut out_d).expect("dynamic stage");
        assert_eq!(out_s, out_d, "estimate vectors diverged");
    }

    #[test]
    fn resize_bumps_generation_and_conserves_tau() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let tel = Telemetry::stats_only();
        // Small rounds against a tight floor keep ω several rounds away, so
        // the pool still has headroom to refine after the resizes below.
        let cfg = TenantConfig {
            warmup_rounds: 2,
            n0_base: 200.0,
            schedule: vec![0.5, 0.25, 0.05],
            ..TenantConfig::new(7)
        };
        let t = Tenant::build("grid", &g, &cfg, &tel);
        let w = tel.writer(7, 0);
        t.refine(0.25, 8, &tel, &w);
        let tau_before = t.vertex_estimate(12).expect("frontier ready").tau;
        let gen_before = t.cache().generation();

        let grown = t.resize(4, &tel, &w).expect("static pools resize");
        assert_eq!((grown.joined, grown.shed, grown.live), (2, 0, 4));
        assert!(grown.generation > gen_before, "grow must retire the old generation");
        assert_eq!(grown.tau, tau_before, "τ conserved across grow");
        let v = t.vertex_estimate(12).expect("post-grow frontier published");
        assert_eq!(v.tau, tau_before);

        let shed = t.resize(1, &tel, &w).expect("static pools shed");
        assert_eq!((shed.joined, shed.shed, shed.live), (0, 3, 1));
        assert_eq!(shed.tau, tau_before, "τ conserved across shed");
        // And the narrow pool keeps refining.
        let r = t.refine(t.floor_eps(), 4, &tel, &w);
        assert!(r.tau > tau_before);
        // A no-op resize leaves the generation alone.
        let gen = t.cache().generation();
        assert_eq!(t.resize(1, &tel, &w).expect("no-op resize").generation, gen);
    }

    #[test]
    fn dynamic_tenants_reject_resize() {
        let (t, tel) = small_dynamic_tenant(7);
        let w = tel.writer(7, 0);
        assert_eq!(t.resize(4, &tel, &w).unwrap_err(), QueryError::NotResizable);
        assert_eq!(t.pool_ranks(), 2);
    }

    #[test]
    fn elastic_refine_grows_under_pressure_and_sheds_after() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let tel = Telemetry::stats_only();
        // No warmup, small rounds, and a tight floor: the first half of a
        // small budget cannot reach the floor, so the deadline-pressure grow
        // must fire.
        let cfg = TenantConfig {
            warmup_rounds: 0,
            n0_base: 200.0,
            schedule: vec![0.5, 0.05],
            ..TenantConfig::new(9)
        };
        let t = Tenant::build("grid", &g, &cfg, &tel);
        let w = tel.writer(7, 0);
        let out = t.refine_elastic(t.floor_eps(), 6, 6, &tel, &w);
        assert!(out.rounds_run > 0);
        assert_eq!(t.pool_ranks(), t.base_ranks(), "grown capacity must be shed when idle");
        assert!(t.cache().generation() >= 2, "grow and shed each retire a generation");
        assert!(t.achieved_eps() < 1.0);
        // Deterministic: an identically provisioned tenant lands on the
        // same post-elastic state.
        let tel2 = Telemetry::stats_only();
        let t2 = Tenant::build("grid", &g, &cfg, &tel2);
        let w2 = tel2.writer(7, 0);
        let out2 = t2.refine_elastic(t2.floor_eps(), 6, 6, &tel2, &w2);
        assert_eq!(out.tau, out2.tau, "elastic refine diverged across identical tenants");
        assert_eq!(out.achieved, out2.achieved);
    }

    #[test]
    fn topk_is_sorted_and_tie_broken() {
        let (t, tel) = small_tenant(5);
        let w = tel.writer(7, 0);
        t.refine(0.25, 64, &tel, &w);
        let mut scratch = QueryScratch::new(t.num_vertices());
        let mut top = Vec::new();
        let meta = t.topk_into(10, &mut scratch, &mut top).expect("frontier ready");
        assert_eq!(top.len(), 10);
        assert!(meta.tau > 0);
        for pair in top.windows(2) {
            let ((va, sa), (vb, sb)) = (pair[0], pair[1]);
            assert!(sa > sb || (sa == sb && va < vb), "order violated: {pair:?}");
        }
    }
}
