//! Deterministic service fixtures for the test harness and the bench
//! binary.
//!
//! Everything here is seed-addressed: the same seed produces the same
//! graph, the same tenant provisioning, and (with background refinement
//! off and the deterministic telemetry clock) a bit-identical cache
//! history — the property the conformance and chaos suites assert.

use crate::server::{Server, ServerConfig};
use crate::tenant::TenantConfig;
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, GnmConfig};
use kadabra_graph::Graph;
use kadabra_mpisim::FaultPlan;

/// Name every fixture tenant is registered under.
pub const TENANT: &str = "gnm";

/// The fixture corpus: the largest component of a seed-addressed G(n, m)
/// graph — connected, irregular, small enough for a Brandes oracle.
pub fn corpus_graph(seed: u64) -> Graph {
    let g = gnm(GnmConfig { n: 60, m: 150, seed });
    let (lcc, _) = largest_component(&g);
    lcc
}

/// Fixture tenant provisioning at `seed`: 3 pool ranks, a schedule down to
/// ε = 0.08, fault-free delivery. Shared by the conformance suite, the
/// chaos suite (which swaps in a crashing plan), and `bench_server`.
pub fn tenant_config(seed: u64) -> TenantConfig {
    TenantConfig {
        pool_ranks: 3,
        schedule: vec![0.5, 0.3, 0.15, 0.08],
        // Small epochs: the schedule freezes stage by stage over several
        // rounds instead of collapsing into the first publication.
        n0_base: 150.0,
        warmup_rounds: 1,
        ..TenantConfig::new(seed)
    }
}

/// Boots a deterministic server (no background refinement, logical-clock
/// telemetry) with [`TENANT`] loaded from [`corpus_graph`] at `seed`.
pub fn boot(seed: u64) -> Server {
    boot_with_plan(seed, FaultPlan::ideal(seed))
}

/// [`boot`] with an explicit fault plan for the tenant's pool — the chaos
/// suite injects rank crashes here.
pub fn boot_with_plan(seed: u64, plan: FaultPlan) -> Server {
    let server = Server::new(ServerConfig { deterministic: true, background_refine: false });
    let g = corpus_graph(seed);
    let cfg = TenantConfig { plan, ..tenant_config(seed) };
    server.add_tenant(TENANT, &g, &cfg);
    server
}

/// [`boot`], but the tenant is provisioned dynamically: it accepts
/// streaming edge updates through `update` while keeping the same corpus,
/// schedule, and determinism contract.
pub fn boot_dynamic(seed: u64) -> Server {
    boot_dynamic_with_plan(seed, FaultPlan::ideal(seed))
}

/// [`boot_dynamic`] with an explicit fault plan — the dynamic chaos suite
/// injects a rank crash that fires mid-update-batch here.
pub fn boot_dynamic_with_plan(seed: u64, plan: FaultPlan) -> Server {
    let server = Server::new(ServerConfig { deterministic: true, background_refine: false });
    let g = corpus_graph(seed);
    let cfg = TenantConfig { dynamic: true, plan, ..tenant_config(seed) };
    server.add_tenant(TENANT, &g, &cfg);
    server
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn fixture_graph_is_connected_and_nontrivial() {
        let g = corpus_graph(8);
        assert!(g.num_nodes() >= 20, "lcc too small: {}", g.num_nodes());
    }

    #[test]
    fn boot_is_queryable_after_warmup() {
        let s = boot(8);
        let t = s.tenant(TENANT).expect("fixture tenant");
        assert!(t.achieved_eps() < 1.0, "warmup must publish");
    }
}
