//! Atomic indirection: `std` atomics in production, loom's modelled atomics
//! under `--features loom` — the same pattern every concurrent crate in the
//! workspace uses, so `cargo xtask loom` checks the estimate cache's
//! publish/read protocol against the simulated memory model.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
