//! Per-tenant admission control (DESIGN.md §13): a bounded in-flight gauge
//! plus a bounded waiter queue, with load-shed instead of unbounded
//! buffering.
//!
//! A query first tries to take an in-flight slot; if the tenant is at its
//! concurrency cap it may join the bounded waiter queue (spinning with
//! yields — queries are short), and once both bounds are hit the request is
//! shed immediately with [`crate::QueryError::Overloaded`]. All counters
//! are Relaxed: they gate work, they do not publish data.

use crate::sync::{AtomicU32, AtomicU64, Ordering};

/// Admission limits for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries executing concurrently.
    pub max_in_flight: u32,
    /// Maximum queries waiting for an in-flight slot; beyond this, shed.
    pub max_queued: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { max_in_flight: 64, max_queued: 256 }
    }
}

/// The admission gate. One per tenant.
pub struct Admission {
    cfg: AdmissionConfig,
    in_flight: AtomicU32,
    queued: AtomicU32,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// The load-shed outcome: both the in-flight cap and the waiter queue were
/// full when the query arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed;

/// An admitted query; releases its in-flight slot on drop.
pub struct Permit<'a> {
    gate: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Admission {
    /// A gate with the given limits (`max_in_flight` floored at 1).
    pub fn new(cfg: AdmissionConfig) -> Self {
        let cfg = AdmissionConfig { max_in_flight: cfg.max_in_flight.max(1), ..cfg };
        Admission {
            cfg,
            in_flight: AtomicU32::new(0),
            queued: AtomicU32::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// CAS the in-flight gauge up if below the cap.
    fn try_slot(&self) -> bool {
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        while cur < self.cfg.max_in_flight {
            match self.in_flight.compare_exchange(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }

    /// Admits one query, waiting in the bounded queue if the tenant is at
    /// its concurrency cap. [`Shed`] means the request was load-shed: both
    /// the in-flight cap and the waiter queue were full.
    pub fn admit(&self) -> Result<Permit<'_>, Shed> {
        if self.try_slot() {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { gate: self });
        }
        // Join the bounded waiter queue.
        let mut q = self.queued.load(Ordering::Relaxed);
        loop {
            if q >= self.cfg.max_queued {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Shed);
            }
            match self.queued.compare_exchange(q, q + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => q = now,
            }
        }
        // Queued: spin-yield until an in-flight slot frees up. Queries are
        // short, so waiters drain quickly; the bound above caps how many
        // threads can ever be parked here.
        loop {
            if self.try_slot() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { gate: self });
            }
            std::thread::yield_now();
        }
    }

    /// Queries admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Queries shed so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> u32 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The configured limits.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn permits_release_on_drop() {
        let a = Admission::new(AdmissionConfig { max_in_flight: 2, max_queued: 0 });
        let p1 = a.admit().expect("first");
        let p2 = a.admit().expect("second");
        assert_eq!(a.in_flight(), 2);
        assert!(a.admit().is_err(), "third must shed with an empty queue");
        assert_eq!(a.shed(), 1);
        drop(p1);
        let p3 = a.admit().expect("slot freed");
        assert_eq!(a.in_flight(), 2);
        drop(p2);
        drop(p3);
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.admitted(), 3);
    }

    #[test]
    fn queued_waiter_eventually_admits() {
        let a = std::sync::Arc::new(Admission::new(AdmissionConfig {
            max_in_flight: 1,
            max_queued: 4,
        }));
        let p = a.admit().expect("holder");
        let waiter = {
            let a = std::sync::Arc::clone(&a);
            std::thread::spawn(move || a.admit().is_ok())
        };
        // Give the waiter time to queue, then release the slot so it can
        // take over.
        for _ in 0..64 {
            std::thread::yield_now();
        }
        drop(p);
        assert!(waiter.join().expect("waiter thread"), "queued waiter must admit");
        assert_eq!(a.shed(), 0);
    }

    #[test]
    fn zero_cap_is_floored_to_one() {
        let a = Admission::new(AdmissionConfig { max_in_flight: 0, max_queued: 0 });
        assert!(a.admit().is_ok());
        assert_eq!(a.config().max_in_flight, 1);
    }
}
