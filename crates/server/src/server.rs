//! The service front-end: a resident [`Server`] owning named tenants, and
//! per-thread [`Client`] handles that answer queries through the admission
//! gate with every request recorded as a telemetry span.
//!
//! Queries (`vertex`, `estimate`, `topk`) only read the estimate cache —
//! they never block on the engine. `refine` locks the tenant's engine and
//! advances it in deterministic rounds. An optional background worker per
//! tenant keeps refining toward the schedule floor until it is reached, so
//! an idle server converges to its tightest ε on its own.

use crate::engine::EngineCheckpoint;
use crate::sync::{AtomicBool, AtomicU32, Ordering};
use crate::tenant::{
    EstimateMeta, QueryScratch, RefineOutcome, Tenant, TenantConfig, UpdateOutcome, VertexEstimate,
};
use kadabra_graph::{Graph, NodeId};
use kadabra_telemetry::{CounterId, EventWriter, SpanId, Telemetry};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Telemetry rank id of service-side writers (tenant warmup); client and
/// background-worker writers are offset from it. Far above any sampler rank
/// so event streams sort service activity after pool activity.
pub const SERVICE_RANK: u32 = 1 << 16;

/// Why a query was not answered.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// No tenant with that name is resident.
    UnknownTenant,
    /// The tenant's admission gate shed the request (in-flight cap and
    /// waiter queue both full).
    Overloaded,
    /// The cache cannot answer yet at the requested accuracy; `achieved` is
    /// the accuracy it currently supports (1.0 before the first round).
    NotReady {
        /// Currently supported accuracy.
        achieved: f64,
    },
    /// The requested ε is tighter than the tenant's schedule floor.
    UnsatisfiableEps {
        /// The tightest ε the tenant will ever serve.
        floor: f64,
    },
    /// The queried vertex id is out of range.
    BadVertex,
    /// The tenant was provisioned statically and cannot accept streaming
    /// edge updates.
    NotDynamic,
    /// The tenant's pool cannot be elastically resized (dynamic pools own
    /// their retained-sample population per rank, so [`crate::Tenant::resize`]
    /// only applies to static pools).
    NotResizable,
    /// The update batch was structurally invalid or inconsistent with the
    /// tenant's live graph (the message carries the delta-log diagnosis).
    BadUpdate(String),
    /// The request itself was malformed (wire front-end only).
    BadRequest(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTenant => write!(f, "unknown tenant"),
            QueryError::Overloaded => write!(f, "overloaded: request shed by admission control"),
            QueryError::NotReady { achieved } => {
                write!(f, "not ready: cache supports eps {achieved} so far")
            }
            QueryError::UnsatisfiableEps { floor } => {
                write!(f, "unsatisfiable eps: schedule floor is {floor}")
            }
            QueryError::BadVertex => write!(f, "vertex id out of range"),
            QueryError::NotDynamic => {
                write!(f, "not dynamic: tenant does not accept streaming updates")
            }
            QueryError::NotResizable => {
                write!(f, "not resizable: dynamic pools cannot change rank count")
            }
            QueryError::BadUpdate(why) => write!(f, "bad update: {why}"),
            QueryError::BadRequest(why) => write!(f, "bad request: {why}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// How the server is provisioned.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Use the deterministic telemetry clock (chaos/conformance runs); the
    /// default wall clock otherwise.
    pub deterministic: bool,
    /// Spawn one background worker per tenant that refines toward the
    /// schedule floor. Disable for deterministic test fixtures that drive
    /// refinement explicitly.
    pub background_refine: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { deterministic: false, background_refine: true }
    }
}

pub(crate) struct Inner {
    pub(crate) tel: Arc<Telemetry>,
    pub(crate) tenants: Mutex<Vec<Arc<Tenant>>>,
    next_client: AtomicU32,
    background: bool,
    stop: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    pub(crate) fn find(&self, name: &str) -> Result<Arc<Tenant>, QueryError> {
        self.tenants
            .lock()
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or(QueryError::UnknownTenant)
    }
}

/// The resident service. Owns the tenants, the telemetry registry, and the
/// background refinement workers; [`Server::client`] hands out per-thread
/// query handles.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// An empty server.
    pub fn new(cfg: ServerConfig) -> Self {
        let tel =
            if cfg.deterministic { Telemetry::deterministic(0) } else { Telemetry::stats_only() };
        Server {
            inner: Arc::new(Inner {
                tel: Arc::new(tel),
                tenants: Mutex::new(Vec::new()),
                next_client: AtomicU32::new(0),
                background: cfg.background_refine,
                stop: Arc::new(AtomicBool::new(false)),
                workers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Loads `g` as tenant `name` (setup phases + warmup run synchronously;
    /// the call returns with the tenant queryable). Panics if the name is
    /// already taken.
    pub fn add_tenant(&self, name: &str, g: &Graph, cfg: &TenantConfig) {
        assert!(self.inner.find(name).is_err(), "tenant {name:?} is already resident");
        let tenant = Arc::new(Tenant::build(name, g, cfg, &self.inner.tel));
        self.inner.tenants.lock().push(Arc::clone(&tenant));
        if self.inner.background {
            let tel = Arc::clone(&self.inner.tel);
            let stop = Arc::clone(&self.inner.stop);
            let worker_id = SERVICE_RANK + 4096 + self.inner.workers.lock().len() as u32;
            let handle = std::thread::spawn(move || {
                let w = tel.writer(worker_id, 0);
                let floor = tenant.floor_eps();
                while !stop.load(Ordering::Relaxed) {
                    let out = tenant.refine(floor, 1, &tel, &w);
                    if out.rounds_run == 0 || out.achieved <= floor || out.live == 0 {
                        break; // converged (or the whole pool died)
                    }
                }
            });
            self.inner.workers.lock().push(handle);
        }
    }

    /// The tenant handle, if resident.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>, QueryError> {
        self.inner.find(name)
    }

    /// Names of the resident tenants, in load order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.inner.tenants.lock().iter().map(|t| t.name().to_string()).collect()
    }

    /// The server's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.tel
    }

    /// A fresh per-thread query handle with its own telemetry writer (one
    /// client per thread — the writer is single-writer by contract).
    pub fn client(&self) -> Client {
        Client::from_inner(&self.inner)
    }

    /// Checkpoints a tenant's sampling state (see
    /// [`crate::engine::RefineEngine::checkpoint`]).
    pub fn checkpoint(&self, name: &str) -> Result<EngineCheckpoint, QueryError> {
        Ok(self.inner.find(name)?.checkpoint())
    }

    pub(crate) fn inner(&self) -> &Arc<Inner> {
        &self.inner
    }

    /// Waits for every background worker to converge to its tenant's
    /// schedule floor (returns immediately when background refinement is
    /// off).
    pub fn drain_background(&self) {
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for h in workers {
            // xtask: allow(comm-error-flow) — std thread join, not a
            // communicator: a panicked worker already tore down its own
            // refinement loop; draining must not propagate its panic.
            let _ = h.join();
        }
    }

    /// Stops background refinement and joins the workers.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.drain_background();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A per-thread query handle. All query methods go through the tenant's
/// admission gate and record a telemetry span; answers come from the
/// estimate cache only ([`Client::refine`] is the one engine-touching call).
pub struct Client {
    inner: Arc<Inner>,
    w: EventWriter,
}

impl Client {
    pub(crate) fn from_inner(inner: &Arc<Inner>) -> Client {
        let idx = inner.next_client.fetch_add(1, Ordering::Relaxed);
        let w = inner.tel.writer(SERVICE_RANK + 1 + idx, 0);
        Client { inner: Arc::clone(inner), w }
    }

    /// Scratch buffers sized for the named tenant.
    pub fn scratch(&self, tenant: &str) -> Result<QueryScratch, QueryError> {
        Ok(QueryScratch::new(self.inner.find(tenant)?.num_vertices()))
    }

    /// Names of the resident tenants, in load order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.inner.tenants.lock().iter().map(|t| t.name().to_string()).collect()
    }

    /// Admission + span + served/shed accounting around one query body.
    fn guarded<T>(
        &self,
        t: &Tenant,
        span: SpanId,
        f: impl FnOnce() -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        let sp = self.w.begin(span);
        let res = match t.admission().admit() {
            Ok(_permit) => {
                let r = f();
                self.w.count(CounterId::QueriesServed, 1);
                r
            }
            Err(_) => {
                self.w.count(CounterId::QueriesShed, 1);
                Err(QueryError::Overloaded)
            }
        };
        self.w.end(sp);
        res
    }

    /// Per-vertex estimate with its confidence interval, from the frontier.
    pub fn vertex(&self, tenant: &str, v: NodeId) -> Result<VertexEstimate, QueryError> {
        let t = self.inner.find(tenant)?;
        self.guarded(&t, SpanId::Query, || t.vertex_estimate(v))
    }

    /// Full estimate vector at accuracy `eps`, from the matching frozen
    /// stage (bit-stable across calls). `out` is filled in original vertex
    /// order.
    pub fn estimate_into(
        &self,
        tenant: &str,
        eps: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<f64>,
    ) -> Result<EstimateMeta, QueryError> {
        let t = self.inner.find(tenant)?;
        self.guarded(&t, SpanId::Query, || t.estimate_into(eps, scratch, out))
    }

    /// Top-k vertices by estimated betweenness, from the frontier.
    pub fn topk_into(
        &self,
        tenant: &str,
        k: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<EstimateMeta, QueryError> {
        let t = self.inner.find(tenant)?;
        self.guarded(&t, SpanId::Query, || t.topk_into(k, scratch, out))
    }

    /// Accuracy-on-deadline: refines the tenant until the frontier supports
    /// `eps`, running at most `max_rounds` engine rounds. Errs with
    /// [`QueryError::UnsatisfiableEps`] below the schedule floor;
    /// [`QueryError::NotReady`] when the budget ran out first (the partial
    /// progress is still published).
    pub fn refine(
        &self,
        tenant: &str,
        eps: f64,
        max_rounds: u32,
    ) -> Result<RefineOutcome, QueryError> {
        let t = self.inner.find(tenant)?;
        if eps < t.floor_eps() {
            return Err(QueryError::UnsatisfiableEps { floor: t.floor_eps() });
        }
        self.guarded(&t, SpanId::Refine, || {
            let out = t.refine(eps, max_rounds, &self.inner.tel, &self.w);
            if out.achieved > eps {
                return Err(QueryError::NotReady { achieved: out.achieved });
            }
            Ok(out)
        })
    }

    /// Applies one batch of edge updates (original vertex ids) to a dynamic
    /// tenant, then re-refines for up to `refine_rounds` rounds. Errs with
    /// [`QueryError::NotDynamic`] on static tenants and
    /// [`QueryError::BadUpdate`] on batches the delta log rejects.
    pub fn update(
        &self,
        tenant: &str,
        inserts: &[(NodeId, NodeId)],
        deletes: &[(NodeId, NodeId)],
        refine_rounds: u32,
    ) -> Result<UpdateOutcome, QueryError> {
        let t = self.inner.find(tenant)?;
        self.guarded(&t, SpanId::Update, || {
            t.update(inserts, deletes, refine_rounds, &self.inner.tel, &self.w)
        })
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use kadabra_graph::generators::{grid, GridConfig};

    fn fixture() -> Server {
        let s = Server::new(ServerConfig { deterministic: true, background_refine: false });
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        s.add_tenant("grid", &g, &TenantConfig::new(17));
        s
    }

    #[test]
    fn unknown_tenant_is_typed() {
        let s = fixture();
        let c = s.client();
        assert_eq!(c.vertex("nope", 0).unwrap_err(), QueryError::UnknownTenant);
    }

    #[test]
    fn refine_then_query_round_trip() {
        let s = fixture();
        let c = s.client();
        let out = c.refine("grid", 0.25, 64).expect("refine to 0.25");
        assert!(out.achieved <= 0.25);
        let v = c.vertex("grid", 12).expect("vertex answer");
        assert!(v.tau > 0);
        let mut scratch = c.scratch("grid").expect("tenant");
        let mut top = Vec::new();
        let meta = c.topk_into("grid", 5, &mut scratch, &mut top).expect("topk");
        assert_eq!(top.len(), 5);
        assert!(meta.eps <= 0.25);
    }

    #[test]
    fn refine_below_floor_is_rejected_without_admission() {
        let s = fixture();
        let c = s.client();
        let e = c.refine("grid", 1e-9, 1).unwrap_err();
        assert!(matches!(e, QueryError::UnsatisfiableEps { .. }));
    }

    #[test]
    fn background_worker_converges_to_the_floor() {
        let s = Server::new(ServerConfig { deterministic: true, background_refine: true });
        let g = grid(GridConfig { rows: 4, cols: 4, diagonal_prob: 0.0, seed: 0 });
        s.add_tenant("grid", &g, &TenantConfig::new(3));
        s.drain_background();
        let t = s.tenant("grid").expect("resident");
        assert!(
            t.achieved_eps() <= t.floor_eps(),
            "idle server must converge to the floor, got {}",
            t.achieved_eps()
        );
    }

    #[test]
    fn served_and_shed_counters_flow_to_telemetry() {
        let s = fixture();
        let c = s.client();
        c.refine("grid", 0.5, 64).expect("refine");
        let _ = c.vertex("grid", 0);
        let summary = s.telemetry().summary();
        let served = summary.counter(CounterId::QueriesServed);
        assert!(served >= 2, "refine + vertex must count as served, got {served}");
    }
}
