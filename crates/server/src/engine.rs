//! The resident sampler pool: Algorithm 1's adaptive loop, re-hosted as a
//! stateful engine that survives across queries.
//!
//! The flat driver (`kadabra_core::mpi`) runs diameter → calibration →
//! adaptive sampling once and returns. A resident tenant instead keeps the
//! per-rank sampling state — sampler stream, [`SampleLedger`] checkpoint,
//! local frame — alive between *rounds*, where each round is a fixed number
//! of reduction epochs executed inside one [`Universe`] run. Fixing the
//! epoch count per round (instead of stopping when a query's target ε is
//! reached) is what makes the service deterministic: the state after round
//! `r` is a pure function of `(graph, config, fault plan, seed)` and never
//! of which queries happened to be in flight (DESIGN.md §13).
//!
//! Crash faults follow the PR 4 protocol: a rank that observes its own
//! [`CommError::RankFailed`] leaves the pool (its slot empties), survivors
//! shrink the communicator and rebuild the global frame from their ledgers
//! via [`shrink_and_rebuild`], and later rounds run on the smaller pool —
//! [`FaultPlan::reseeded`] keeps the delivery knobs but drops the crash
//! schedule, so a scheduled crash fires exactly once.

use kadabra_core::calibration::Calibration;
use kadabra_core::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use kadabra_core::{CheckpointError, KadabraConfig, SampleLedger};
use kadabra_graph::Graph;
use kadabra_mpisim::{CommError, Communicator, FaultPlan, Universe};
use kadabra_telemetry::{CounterId, SpanId, Telemetry};
use parking_lot::Mutex;

/// Per-rank resident sampling state, parked in its slot between rounds.
struct RankState {
    /// The rank's adaptive sampling stream (survives across rounds, so no
    /// sample is ever replayed).
    sampler: ThreadSampler,
    /// Every frame whose reduction this rank observed — the recovery and
    /// checkpoint source of truth.
    ledger: SampleLedger,
    /// S_loc: samples drawn but not yet globally confirmed.
    s_loc: Vec<u64>,
}

/// One slot of the pool: a stable identity plus the parked state. The slot
/// stays (empty) after its rank dies so checkpoint images keep their ids.
struct EngineSlot {
    /// The rank's original pool index — stable across shrinks, used as the
    /// telemetry rank and the sampler stream id.
    id: usize,
    state: Mutex<Option<RankState>>,
}

/// What one engine round produced.
pub struct RoundReport {
    /// Σ survivor ledgers after the round: per-vertex counts plus τ in the
    /// last slot. Empty when no rank survived.
    pub global: Vec<u64>,
    /// Total confirmed samples after the round.
    pub tau: u64,
    /// The accuracy the global frame now supports: `max_v max(f, g)` under
    /// the tenant's calibrated δ budgets (floored at the schedule floor once
    /// τ ≥ ω, where the a-priori bound takes over).
    pub achieved: f64,
    /// Ranks still alive after the round.
    pub live: usize,
    /// Round index that just completed (0-based).
    pub round: u64,
}

/// A serialized engine image: the survivors' ledgers plus enough metadata
/// to resume sampling on fresh streams (see [`RefineEngine::restore`]).
pub struct EngineCheckpoint {
    /// Rounds completed when the image was taken.
    pub round: u64,
    /// Stream generation of the engine that produced the image.
    pub generation: u32,
    /// `(slot id, ledger bytes)` per live rank.
    pub images: Vec<(usize, Vec<u8>)>,
}

/// The resident sampler pool for one tenant.
pub struct RefineEngine {
    n: usize,
    kcfg: KadabraConfig,
    omega: u64,
    max_epochs_per_round: u32,
    base_plan: FaultPlan,
    slots: Vec<EngineSlot>,
    round: u64,
    /// Slots ever created — the next fresh slot id. Grown slots get ids
    /// past every id this engine has handed out (alive or dead), so their
    /// sampler streams never collide with any earlier rank's.
    spawned: usize,
    /// Bumped on [`RefineEngine::restore`]: restored samplers draw from
    /// fresh streams (offset `ADS_STREAM_OFFSET + generation`), so a
    /// restored engine never replays samples the checkpoint already counted.
    generation: u32,
    last_achieved: f64,
    last_tau: u64,
}

impl RefineEngine {
    /// A fresh pool of `ranks` resident samplers.
    ///
    /// `kcfg.epsilon` is the tenant's schedule floor (the tightest ε the
    /// service will ever chase); `omega` is the cap derived from it.
    pub fn new(
        n: usize,
        kcfg: KadabraConfig,
        omega: u64,
        ranks: usize,
        max_epochs_per_round: u32,
        base_plan: FaultPlan,
    ) -> Self {
        assert!(ranks >= 1, "a pool needs at least one sampler rank");
        assert!(max_epochs_per_round >= 1, "a round must run at least one epoch");
        let slots = (0..ranks)
            .map(|id| EngineSlot {
                id,
                state: Mutex::new(Some(RankState {
                    sampler: ThreadSampler::with_kernel(
                        n,
                        kcfg.seed,
                        id,
                        ADS_STREAM_OFFSET,
                        kcfg.kernel,
                    ),
                    ledger: SampleLedger::new(n),
                    s_loc: vec![0u64; n + 1],
                })),
            })
            .collect();
        RefineEngine {
            n,
            kcfg,
            omega,
            max_epochs_per_round,
            base_plan,
            slots,
            round: 0,
            spawned: ranks,
            generation: 0,
            last_achieved: 1.0,
            last_tau: 0,
        }
    }

    /// Elastically resizes the pool to `target` ranks between rounds,
    /// returning `(joined, shed)`.
    ///
    /// Growing appends fresh slots whose ids (and therefore sampler
    /// streams) have never been used by this engine; their empty ledgers
    /// contribute nothing, so the global `[Σc̃, τ]` frame is unchanged and
    /// later rounds simply run on the wider communicator with the per-rank
    /// epoch length re-derived for the new size. Shedding retires the
    /// youngest slots first and folds each victim's ledger into the oldest
    /// survivor's — confirmed samples are conserved, only future capacity
    /// changes. Resizing is deterministic state surgery: two engines that
    /// perform the same resizes at the same round boundaries stay
    /// bit-identical.
    pub fn resize(&mut self, target: usize) -> (usize, usize) {
        assert!(target >= 1, "a pool needs at least one sampler rank");
        let (mut joined, mut shed) = (0, 0);
        while self.slots.len() > target {
            // xtask: allow(unwrap) — the loop guard holds len > target >= 1.
            let victim = self.slots.pop().expect("pool has a slot to shed");
            if let Some(st) = victim.state.lock().take() {
                if st.ledger.tau() > 0 {
                    if let Some(keeper) = self.slots[0].state.lock().as_mut() {
                        keeper.ledger.confirm(st.ledger.frame());
                    }
                }
            }
            shed += 1;
        }
        while self.slots.len() < target {
            let id = self.spawned;
            self.spawned += 1;
            self.slots.push(EngineSlot {
                id,
                state: Mutex::new(Some(RankState {
                    sampler: ThreadSampler::with_kernel(
                        self.n,
                        self.kcfg.seed,
                        id,
                        ADS_STREAM_OFFSET + self.generation as usize,
                        self.kcfg.kernel,
                    ),
                    ledger: SampleLedger::new(self.n),
                    s_loc: vec![0u64; self.n + 1],
                })),
            });
            joined += 1;
        }
        (joined, shed)
    }

    /// Σ live ledgers, as [`RoundReport::global`] reports it — the frame a
    /// caller publishes after out-of-round state surgery (resize, restore).
    pub fn current_frame(&self) -> Vec<u64> {
        self.fold_ledgers()
    }

    /// Ranks still alive in the pool.
    pub fn live(&self) -> usize {
        self.slots.len()
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The accuracy reported by the last completed round (1.0 before any).
    pub fn last_achieved(&self) -> f64 {
        self.last_achieved
    }

    /// Confirmed samples after the last completed round.
    pub fn last_tau(&self) -> u64 {
        self.last_tau
    }

    /// The sample cap ω the pool is sampling toward.
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// Runs one fixed-length round: every live rank executes exactly
    /// `max_epochs_per_round` reduction epochs of Algorithm 1 (fewer only if
    /// τ reaches ω, which is itself a deterministic event). Returns the
    /// post-round global frame and the accuracy it supports.
    pub fn step(&mut self, g: &Graph, calibration: &Calibration, tel: &Telemetry) -> RoundReport {
        let live = self.slots.len();
        if live == 0 || self.last_tau >= self.omega {
            return RoundReport {
                global: self.fold_ledgers(),
                tau: self.last_tau,
                achieved: self.last_achieved,
                live,
                round: self.round,
            };
        }
        let plan = self.base_plan.reseeded(self.round);
        let slots = &self.slots;
        let kcfg = &self.kcfg;
        let (omega, max_epochs, n) = (self.omega, self.max_epochs_per_round, self.n);
        Universe::run_with_plan(live, plan, |comm| {
            run_round(g, n, kcfg, omega, max_epochs, slots, comm, tel)
        });
        // Compact: ranks that died this round left their slot empty.
        self.slots.retain(|s| s.state.lock().is_some());
        self.round += 1;
        let global = self.fold_ledgers();
        let tau = global.last().copied().unwrap_or(0);
        self.last_tau = tau;
        self.last_achieved =
            achieved_epsilon(&global[..self.n.min(global.len())], tau, self.omega, calibration)
                .min(if tau >= self.omega { self.kcfg.epsilon } else { 1.0 });
        RoundReport {
            global,
            tau,
            achieved: self.last_achieved,
            live: self.slots.len(),
            round: self.round - 1,
        }
    }

    /// Σ live ledgers — the consistent global frame (length `n + 1`; all
    /// zeros before the first round).
    fn fold_ledgers(&self) -> Vec<u64> {
        let mut global = vec![0u64; self.n + 1];
        for slot in &self.slots {
            if let Some(st) = slot.state.lock().as_ref() {
                for (a, &x) in global.iter_mut().zip(st.ledger.frame()) {
                    *a += x;
                }
            }
        }
        global
    }

    /// Serializes every live rank's ledger (the confirmed, crash-consistent
    /// part of the state; in-flight `s_loc` samples are deliberately not
    /// checkpointed — they were never globally counted).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let images = self
            .slots
            .iter()
            .filter_map(|s| s.state.lock().as_ref().map(|st| (s.id, st.ledger.to_bytes())))
            .collect();
        EngineCheckpoint { round: self.round, generation: self.generation, images }
    }

    /// Rebuilds a pool from a checkpoint: ledgers are restored bit-exactly,
    /// samplers restart on generation-bumped fresh streams (confirmed counts
    /// are conserved; future samples are new draws, never replays).
    pub fn restore(
        n: usize,
        kcfg: KadabraConfig,
        omega: u64,
        max_epochs_per_round: u32,
        base_plan: FaultPlan,
        ckpt: &EngineCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let generation = ckpt.generation + 1;
        let mut slots = Vec::with_capacity(ckpt.images.len());
        let mut tau = 0u64;
        for (id, bytes) in &ckpt.images {
            let ledger = SampleLedger::from_bytes(bytes)?;
            tau += ledger.tau();
            slots.push(EngineSlot {
                id: *id,
                state: Mutex::new(Some(RankState {
                    sampler: ThreadSampler::with_kernel(
                        n,
                        kcfg.seed,
                        *id,
                        ADS_STREAM_OFFSET + generation as usize,
                        kcfg.kernel,
                    ),
                    ledger,
                    s_loc: vec![0u64; n + 1],
                })),
            });
        }
        Ok(RefineEngine {
            n,
            kcfg,
            omega,
            max_epochs_per_round,
            base_plan,
            spawned: ckpt.images.iter().map(|(id, _)| id + 1).max().unwrap_or(0),
            slots,
            round: ckpt.round,
            generation,
            last_achieved: 1.0,
            last_tau: tau,
        })
    }
}

pub use kadabra_core::achieved_epsilon;

/// Per-rank body of one engine round: `max_epochs` epochs of the Algorithm 1
/// reduction loop, with the PR 4 shrink-and-continue protocol. Returns
/// `Some(())` from survivors (after parking their state back in the slot),
/// `None` from ranks that died (their slot stays empty).
#[allow(clippy::too_many_arguments)]
fn run_round(
    g: &Graph,
    n: usize,
    kcfg: &KadabraConfig,
    omega: u64,
    max_epochs: u32,
    slots: &[EngineSlot],
    comm: Communicator,
    tel: &Telemetry,
) -> Option<()> {
    let me = comm.rank();
    let my_world = comm.world_rank();
    let id = slots[me].id;
    let w = tel.writer(id as u32, 0);
    comm.set_tracer(w.clone());
    let mut st = slots[me].state.lock().take()?;

    let mut comm = comm;
    let mut n0 = kcfg.n0(comm.size());
    // Every rank carries a fold of its own ledger as the round's starting
    // global frame; only the root's copy is consulted, and after a shrink
    // every survivor resets to the rebuilt (identical) frame.
    let mut s_global = st.ledger.frame().to_vec();
    let mut epoch = 0u32;
    let mut dead = false;
    let sp_round = w.begin(SpanId::AdaptiveSampling);

    while epoch < max_epochs {
        w.set_epoch(epoch);
        let RankState { sampler, ledger, s_loc } = &mut st;
        let round = (|| -> Result<bool, CommError> {
            let sp = w.begin(SpanId::SampleBatch);
            {
                let frame = &mut *s_loc;
                sampler.sample_batch(g, n0, |interior| {
                    for &v in interior {
                        frame[v as usize] += 1;
                    }
                    frame[n] += 1;
                });
            }
            w.end(sp);
            let snapshot = std::mem::replace(s_loc, vec![0u64; n + 1]);
            let sp = w.begin(SpanId::IreduceWait);
            let mut req = comm.ireduce_sum_u64(0, &snapshot)?;
            let mut overlapped = 0u64;
            while !req.test()? {
                for &v in sampler.sample(g) {
                    s_loc[v as usize] += 1;
                }
                s_loc[n] += 1;
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::BytesReduced, snapshot.len() as u64 * 8);
            ledger.confirm(&snapshot);

            let mut d = 0u64;
            if comm.rank() == 0 {
                // xtask: allow(unwrap) — the request completed (test() was
                // true) and this rank is the reduction root, so both layers
                // are Some.
                let reduced = req.into_result().unwrap().expect("root receives reduction");
                let sp = w.begin(SpanId::Check);
                for (a, &x) in s_global.iter_mut().zip(&reduced) {
                    *a += x;
                }
                // The only in-round stop is the deterministic τ ≥ ω cap;
                // ε-targeted stopping happens *between* rounds (in the
                // tenant), so round boundaries are query-independent.
                d = u64::from(s_global[n] >= omega);
                w.end(sp);
            }
            let sp = w.begin(SpanId::BcastStop);
            let mut breq = comm.ibcast_u64(0, (comm.rank() == 0).then_some(d))?;
            while !breq.test()? {
                for &v in sampler.sample(g) {
                    s_loc[v as usize] += 1;
                }
                s_loc[n] += 1;
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::Samples, n0 + overlapped);
            // xtask: allow(unwrap) — test() returned true above.
            Ok(breq.into_result().unwrap() != 0)
        })();

        match round {
            Ok(stop) => {
                w.count(CounterId::Epochs, 1);
                epoch += 1;
                if stop {
                    break;
                }
            }
            Err(CommError::RankFailed { rank }) if rank == my_world => {
                dead = true; // own scheduled crash: the slot stays empty
                break;
            }
            Err(CommError::RankFailed { .. }) => match shrink_and_rebuild_here(&comm, &st, &w) {
                Ok((small, rebuilt)) => {
                    comm = small;
                    s_global = rebuilt;
                    n0 = kcfg.n0(comm.size());
                    epoch += 1;
                }
                Err(e) if e.failed_rank() == Some(my_world) => {
                    dead = true;
                    break;
                }
                Err(e) => panic!("unrecoverable communicator failure: {e}"),
            },
            Err(e) => panic!("unrecoverable communicator failure: {e}"),
        }
    }
    w.end(sp_round);
    if dead {
        return None;
    }
    *slots[me].state.lock() = Some(st);
    Some(())
}

/// Borrow shim: `run_round` holds `st` by value, recovery needs its ledger.
fn shrink_and_rebuild_here(
    comm: &Communicator,
    st: &RankState,
    w: &kadabra_telemetry::EventWriter,
) -> Result<(Communicator, Vec<u64>), CommError> {
    kadabra_core::shrink_and_rebuild(comm, &st.ledger, w)
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use kadabra_core::bounds;
    use kadabra_core::phases::{calibration_samples_for_thread, diameter_phase};
    use kadabra_graph::generators::{grid, GridConfig};

    fn setup(ranks: usize, seed: u64) -> (Graph, KadabraConfig, u64, Calibration) {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        // Small epochs (n0_base) against a tight ε keep ω several rounds
        // away, so the tests below observe multi-round accumulation.
        let kcfg =
            KadabraConfig { epsilon: 0.05, delta: 0.1, seed, n0_base: 200.0, ..Default::default() };
        let (vd, _) = diameter_phase(&g, &kcfg);
        let omega = bounds::omega(kcfg.c, kcfg.epsilon, kcfg.delta, vd);
        let n = g.num_nodes();
        let mut total = vec![0u64; n + 1];
        for r in 0..ranks {
            let mut s = ThreadSampler::new(n, kcfg.seed, r, 0);
            let mut counts = vec![0u64; n + 1];
            let taken =
                calibration_samples_for_thread(&g, &mut s, &mut counts[..n], &kcfg, omega, ranks);
            counts[n] = taken;
            for (a, &x) in total.iter_mut().zip(&counts) {
                *a += x;
            }
        }
        let cal = Calibration::from_counts(&total[..n], total[n], &kcfg);
        (g, kcfg, omega, cal)
    }

    #[test]
    fn rounds_accumulate_and_tighten() {
        let (g, kcfg, omega, cal) = setup(2, 11);
        let tel = Telemetry::stats_only();
        let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 2, 2, FaultPlan::ideal(11));
        let r1 = eng.step(&g, &cal, &tel);
        assert!(r1.tau > 0);
        assert_eq!(r1.round, 0);
        let r2 = eng.step(&g, &cal, &tel);
        assert!(r2.tau > r1.tau, "τ must grow: {} vs {}", r2.tau, r1.tau);
        assert!(r2.achieved <= r1.achieved, "ε must tighten");
    }

    #[test]
    fn rounds_are_reproducible() {
        let (g, kcfg, omega, cal) = setup(3, 7);
        let tel = Telemetry::stats_only();
        let run = |rounds: usize| {
            let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 3, 2, FaultPlan::ideal(7));
            let mut last = None;
            for _ in 0..rounds {
                last = Some(eng.step(&g, &cal, &tel));
            }
            // xtask: allow(unwrap) — rounds >= 1 below.
            last.unwrap()
        };
        let a = run(3);
        let b = run(3);
        assert_eq!(a.global, b.global, "round state must be a pure function of (plan, seed)");
        assert_eq!(a.tau, b.tau);
    }

    #[test]
    fn checkpoint_restore_conserves_ledger_state() {
        let (g, kcfg, omega, cal) = setup(2, 5);
        let tel = Telemetry::stats_only();
        let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 2, 2, FaultPlan::ideal(5));
        eng.step(&g, &cal, &tel);
        eng.step(&g, &cal, &tel);
        let before = eng.fold_ledgers();
        let ckpt = eng.checkpoint();
        let mut restored =
            RefineEngine::restore(g.num_nodes(), kcfg, omega, 2, FaultPlan::ideal(5), &ckpt)
                .expect("valid checkpoint");
        assert_eq!(restored.fold_ledgers(), before, "restore must conserve [Σc̃, τ]");
        assert_eq!(restored.last_tau(), before[before.len() - 1]);
        // And the restored pool keeps sampling (fresh streams, new draws).
        let r = restored.step(&g, &cal, &tel);
        assert!(r.tau > restored_tau(&before), "restored pool must keep refining");
    }

    fn restored_tau(frame: &[u64]) -> u64 {
        frame[frame.len() - 1]
    }

    #[test]
    fn resize_conserves_ledger_state_and_stays_reproducible() {
        let (g, kcfg, omega, cal) = setup(2, 13);
        let tel = Telemetry::stats_only();
        let run = || {
            let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 2, 2, FaultPlan::ideal(13));
            eng.step(&g, &cal, &tel);
            let before = eng.current_frame();
            // Grow 2 → 4: the frame must be untouched, the next round must
            // run on the wider pool.
            assert_eq!(eng.resize(4), (2, 0));
            assert_eq!(eng.current_frame(), before, "grow must conserve [Σc̃, τ]");
            assert_eq!(eng.live(), 4);
            let grown = eng.step(&g, &cal, &tel);
            assert!(grown.tau > before[before.len() - 1]);
            // Shed 4 → 1: the victims' ledgers fold into the survivor.
            let wide = eng.current_frame();
            assert_eq!(eng.resize(1), (0, 3));
            assert_eq!(eng.current_frame(), wide, "shed must conserve [Σc̃, τ]");
            assert_eq!(eng.live(), 1);
            eng.step(&g, &cal, &tel).global
        };
        assert_eq!(run(), run(), "resize surgery must be a pure function of (plan, seed)");
    }

    #[test]
    fn grown_slots_never_reuse_shed_stream_ids() {
        // Shed then regrow: the regrown slot must sample a *fresh* stream,
        // not replay the shed rank's — otherwise its draws double-count.
        let (g, kcfg, omega, cal) = setup(2, 17);
        let tel = Telemetry::stats_only();
        let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 2, 2, FaultPlan::ideal(17));
        eng.step(&g, &cal, &tel);
        eng.resize(1);
        eng.resize(2);
        let mut replayed =
            RefineEngine::new(g.num_nodes(), kcfg, omega, 2, 2, FaultPlan::ideal(17));
        replayed.step(&g, &cal, &tel);
        let a = eng.step(&g, &cal, &tel);
        let b = replayed.step(&g, &cal, &tel);
        assert_ne!(a.global, b.global, "regrown slot replayed a retired stream");
    }

    #[test]
    fn crash_shrinks_pool_and_rounds_continue() {
        let (g, kcfg, omega, cal) = setup(3, 9);
        let tel = Telemetry::stats_only();
        let plan = FaultPlan::ideal(42).with_crash_at_collective(2, 2);
        let mut eng = RefineEngine::new(g.num_nodes(), kcfg, omega, 3, 3, plan);
        let r1 = eng.step(&g, &cal, &tel);
        assert_eq!(r1.live, 2, "rank 2's crash must shrink the pool");
        let r2 = eng.step(&g, &cal, &tel);
        assert_eq!(r2.live, 2, "reseeded later rounds must not replay the crash");
        assert!(r2.tau > r1.tau);
    }
}
