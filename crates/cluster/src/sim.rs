//! The discrete-event simulation of the adaptive-sampling phase.
//!
//! The simulator executes the paper's Algorithm 2 **exactly** — per-thread
//! epochs, wait-free transitions at sample boundaries, per-process frame
//! aggregation, hierarchical node-local aggregation, leader
//! `Ibarrier`-then-blocking-`Reduce`, stopping check at the root, and an
//! overlapped termination broadcast — but in *virtual time*: each simulated
//! thread's sample durations are drawn from the measured distribution of
//! real sample costs, and communication follows the α-β network model.
//! Every sample is a **real** sample of the real graph, so the stopping
//! behaviour (epochs, τ, final scores) is exact, not approximated.
//!
//! Control-flow fidelity notes:
//! * A thread only reacts to coordination state at its own sample
//!   boundaries, mirroring the `while !req.test() { sample }` loops.
//! * Thread 0 of each process does not sample while aggregating frames,
//!   while blocked in the reduce, or (at the root) while evaluating the
//!   stopping condition — exactly the non-overlapped segments of Fig. 2b.
//! * Workers keep sampling until their process observes the termination
//!   broadcast; samples recorded after the last aggregated epoch are
//!   discarded, as in the real implementation.

use crate::calibrate::CostModel;
use crate::spec::ClusterSpec;
use kadabra_core::bounds::stopping_condition;
use kadabra_core::calibration::calibration_sample_count;
use kadabra_core::phases::scores_from_counts;
use kadabra_core::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use kadabra_core::{ClusterShape, KadabraConfig, Prepared};
use kadabra_graph::Graph;
use kadabra_mpisim::{CrashPoint, FaultPlan};
use kadabra_telemetry::{CounterId, EventLog, MarkId, SpanId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Global-reduction strategy (Section IV-F ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// Non-blocking barrier, then blocking reduce — the paper's final choice.
    IbarrierThenBlockingReduce,
    /// `MPI_Ireduce`, fully overlapped but slow to progress.
    Ireduce,
    /// Blocking reduce immediately after aggregation (no overlap at all).
    FullyBlocking,
}

/// One simulated run's configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Cluster shape: ranks, ranks per node, threads per rank.
    pub shape: ClusterShape,
    /// Global-reduction strategy.
    pub strategy: ReduceStrategy,
    /// Apply the NUMA sampling penalty (a process spanning both sockets —
    /// used for the single-node shared-memory baseline of Ref. [24]).
    pub numa_penalty: bool,
    /// Model cross-rank work stealing: plan-marked stragglers keep only
    /// `n0 / factor` of their per-thread round quota and the deficit moves
    /// to the fastest ranks, mirroring the drivers' deterministic steal
    /// schedule (DESIGN.md §15). Without a plan (or without stragglers)
    /// this flag changes nothing.
    pub steal: bool,
}

/// Result of a simulated run: real scores plus virtual-time performance.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Final betweenness estimate (identical semantics to the real runs).
    pub scores: Vec<f64>,
    /// Samples in the final estimate (τ).
    pub samples: u64,
    /// Static cap ω.
    pub omega: u64,
    /// Epochs until termination.
    pub epochs: u64,
    /// Virtual wall time of the adaptive sampling phase.
    pub ads_ns: u64,
    /// Virtual wall time of the calibration phase.
    pub calibration_ns: u64,
    /// Measured (real, sequential) diameter-phase time.
    pub diameter_ns: u64,
    /// Root leader's total overlapped wait inside the non-blocking barrier
    /// (Table II column "B").
    pub barrier_wait_ns: u64,
    /// Total (non-overlapped) blocking-reduce time observed by the root.
    pub reduce_ns: u64,
    /// Root process's total overlapped epoch-transition wait.
    pub transition_ns: u64,
    /// Total stopping-condition evaluation time at the root.
    pub check_ns: u64,
    /// Total bytes moved by global aggregation (Table II column "Com.").
    pub comm_bytes: u64,
    /// Total sampling threads (P·T).
    pub total_threads: usize,
    /// Ranks lost to plan-scheduled crashes during the run.
    pub ranks_lost: u64,
    /// Virtual time spent in shrink-and-continue recovery (failure
    /// confirmation, communicator shrink, ledger all-reduce).
    pub recovery_ns: u64,
    /// Standby ranks admitted by plan-scheduled joins (elastic grows).
    pub ranks_joined: u64,
    /// Thread-samples helpers took on plan-marked stragglers' behalf under
    /// the steal model ([`SimConfig::steal`]).
    pub samples_stolen: u64,
    /// Virtual time spent in grow windows: the newcomers' local bootstrap
    /// (diameter recompute plus a sequential replay of the founding
    /// calibration streams) overlapped with the survivors' admission
    /// consensus, round-handoff broadcast and ledger all-reduce.
    pub rebalance_ns: u64,
}

impl SimReport {
    /// End-to-end virtual time (diameter + calibration + adaptive sampling).
    pub fn total_ns(&self) -> u64 {
        self.diameter_ns + self.calibration_ns + self.ads_ns
    }

    /// Convenience conversion.
    pub fn ads_time(&self) -> Duration {
        Duration::from_nanos(self.ads_ns)
    }

    /// Communication volume per epoch in MiB.
    pub fn comm_mib_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.comm_bytes as f64 / (1024.0 * 1024.0) / self.epochs as f64
        }
    }
}

// ---------------------------------------------------------------------
// Event machinery
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Thread `tid` finishes its current sample.
    Sample { tid: usize },
    /// Process `proc` finishes aggregating its epoch frames.
    AggDone { proc: usize },
    /// The round's global reduction completes.
    ReduceDone { round: usize },
}

struct QE {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QE {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QE {}
impl PartialOrd for QE {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QE {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Thread-0 control state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    /// Taking the n0 samples of the current epoch.
    Sampling,
    /// Transition commanded; waiting (while sampling) for all threads.
    AwaitTransition,
    /// Busy folding the epoch's frames (no sampling).
    Aggregating,
    /// Waiting (while sampling) for node peers to finish aggregation.
    NodeWait,
    /// Leader inside the non-blocking barrier (sampling).
    AwaitBarrier,
    /// Leader blocked in the global reduce (no sampling).
    BlockedReduce,
    /// Waiting (while sampling) for the termination broadcast.
    AwaitBcast,
}

struct VThread {
    proc: usize,
    epoch: u32,
    stopped: bool,
}

struct VProc {
    node: usize,
    is_leader: bool,
    /// Current round (epoch being assembled).
    round: usize,
    ctrl: Ctrl,
    t0_round_samples: u64,
    commanded: u32,
    /// Per-parity frames shared by the process's threads (the DES is
    /// single-threaded, so per-thread frames can be merged without changing
    /// any observable quantity; the *cost* of aggregating T frames is still
    /// charged).
    frames: [ProcFrame; 2],
    terminated: bool,
}

#[derive(Default)]
struct ProcFrame {
    counts: Vec<u32>,
    tau: u64,
}

struct Round {
    pending: Vec<u64>,
    pending_tau: u64,
    node_drained: Vec<usize>,
    barrier_arrived: usize,
    barrier_last: u64,
    barrier_done: Option<u64>,
    root_barrier_arrival: u64,
    /// When the root leader arrived at (and, for blocking strategies,
    /// started blocking in) the global reduce.
    root_reduce_arrival: u64,
    reduce_arrived: usize,
    reduce_last: u64,
    reduce_done_at: Option<u64>,
    /// Termination flag, available to every process at `bcast_ready_at`.
    bcast: Option<(u64, bool)>,
}

impl Round {
    fn new(n: usize, nodes: usize) -> Self {
        Round {
            pending: vec![0u64; n],
            pending_tau: 0,
            node_drained: vec![0; nodes],
            barrier_arrived: 0,
            barrier_last: 0,
            barrier_done: None,
            root_barrier_arrival: 0,
            root_reduce_arrival: 0,
            reduce_arrived: 0,
            reduce_last: 0,
            reduce_done_at: None,
            bcast: None,
        }
    }
}

/// Runs the DES. `prepared` must come from [`kadabra_core::prepare`] on the
/// same graph and config (ω and the δ budgets are shared across all shapes,
/// exactly as a real cluster derives them from the same calibration data).
pub fn simulate(
    g: &Graph,
    cfg: &KadabraConfig,
    prepared: &Prepared,
    sim: &SimConfig,
    spec: &ClusterSpec,
    cost: &CostModel,
) -> SimReport {
    simulate_perturbed(g, cfg, prepared, sim, spec, cost, None)
}

/// [`simulate`] under a [`FaultPlan`]: the same knobs the chaos suite turns
/// on the simulated MPI runtime are mapped into the cost model, so DES
/// predictions stay comparable to perturbed `kadabra-mpisim` runs.
///
/// * a straggler rank ([`FaultPlan::rank_factors`]) multiplies every sample
///   duration of all its threads,
/// * a slow thread ([`FaultPlan::slow_threads`]) additionally multiplies that
///   one thread's sample durations by [`FaultPlan::slow_thread_factor`],
/// * the calibration makespan follows the slowest thread (that phase joins
///   on a blocking all-reduce),
/// * a scheduled rank crash ([`FaultPlan::crashes`]) is mapped onto a global
///   round (see [`crash_schedule`]) and sacrifices that round: its samples
///   are discarded everywhere (matching the real drivers' ledger recovery,
///   which only counts globally-reduced rounds), survivors pay a recovery
///   penalty — failure confirmation + communicator shrink + ledger
///   all-reduce — a dead leader's node promotes its next rank, and n0 is
///   re-derived for the shrunk world.
///
/// `plan: None` (or an ideal plan) reproduces [`simulate`] bit-for-bit.
/// `SimConfig` stays `Copy`; the plan travels as a separate argument.
pub fn simulate_perturbed(
    g: &Graph,
    cfg: &KadabraConfig,
    prepared: &Prepared,
    sim: &SimConfig,
    spec: &ClusterSpec,
    cost: &CostModel,
    plan: Option<&FaultPlan>,
) -> SimReport {
    simulate_traced(g, cfg, prepared, sim, spec, cost, plan, None)
}

/// Maps the plan's first scheduled crash onto `(victim process, global
/// round)` — the granularity the DES can honor. The simulated MPI runtime
/// fires crashes on a per-join logical clock; the DES advances in whole
/// rounds, so the mapping is deliberately coarse:
///
/// * [`CrashPoint::AtCollective`]`(s)`: Algorithm 2 costs a rank four setup
///   joins (two hierarchy splits, diameter broadcast, calibration
///   all-reduce) and two joins per adaptive round (local reduce, termination
///   broadcast), so the crash lands in round `(s − 4) / 2`.
/// * [`CrashPoint::AfterPolls`]`(k)`: a rank accrues about
///   `avg_delay × 2 collectives = lo + hi` injected polls per round (scaled
///   by its straggler factor); with no injected delay the fuse never ticks,
///   exactly as in the runtime.
///
/// The DES pins its root-side bookkeeping (span trace, wait columns) to
/// process 0, so a schedule naming rank 0 is remapped to rank 1 —
/// crash *timing* is rank-symmetric here, and root fail-over semantics are
/// covered by the real drivers' tests. A single remaining rank cannot
/// shrink, so `p_count == 1` never crashes.
fn crash_schedule(plan: Option<&FaultPlan>, p_count: usize) -> Option<(usize, usize)> {
    let plan = plan?;
    let &(rank, point) = plan.crashes.first()?;
    if p_count <= 1 {
        return None;
    }
    let victim = match rank % p_count {
        0 => 1,
        r => r,
    };
    let round = match point {
        CrashPoint::AtCollective(s) => s.saturating_sub(4) / 2,
        CrashPoint::AfterPolls(k) => {
            let (lo, hi) = plan.collective_delay_polls;
            let per_round = (lo + hi).saturating_mul(plan.rank_factor(victim));
            if per_round == 0 {
                return None;
            }
            k / per_round
        }
    };
    Some((victim, usize::try_from(round).unwrap_or(usize::MAX)))
}

/// [`simulate_perturbed`] that additionally records the root's virtual-time
/// phase spans, per-round collective markers and counters into an
/// [`EventLog`] — the same event schema the real drivers emit, so one sink
/// (Chrome trace, [`kadabra_telemetry::Summary`], `BENCH_*.json`) consumes
/// DES traces and real traces alike. Span times are virtual nanoseconds on
/// one timeline: diameter, then calibration, then the adaptive-sampling DES.
///
/// Recording is a pure observer: `log: None` reproduces
/// [`simulate_perturbed`] bit-for-bit.
// xtask: allow(too_many_arguments) — mirrors simulate_perturbed plus the sink.
#[allow(clippy::too_many_arguments)]
pub fn simulate_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    prepared: &Prepared,
    sim: &SimConfig,
    spec: &ClusterSpec,
    cost: &CostModel,
    plan: Option<&FaultPlan>,
    mut log: Option<&mut EventLog>,
) -> SimReport {
    cfg.validate();
    sim.shape.validate();
    let n = g.num_nodes();
    let shape = sim.shape;
    let p_count = shape.ranks;
    let t_count = shape.threads_per_rank;
    let total_threads = shape.total_threads();
    let nodes = shape.nodes();
    let leaders: usize = nodes; // first rank of each node
    let mut n0 = cfg.n0(total_threads);
    let omega = prepared.omega;
    let frame_bytes = (n as u64 + 1) * 8;
    let numa_mul = if sim.numa_penalty { spec.numa_sampling_penalty } else { 1.0 };

    // Elastic membership: the plan's join points admit standby ranks at
    // round starts. Standbys are pre-allocated (inactive) here so that
    // activation is just flipping them on — their world ranks, and hence
    // their sampler stream ids, continue past the founding world exactly as
    // the real drivers' grown communicators append newcomers.
    let joiner_count = plan.map_or(0, FaultPlan::total_joiners);
    let max_procs = p_count + joiner_count;
    let max_nodes = max_procs.div_ceil(shape.ranks_per_node);

    // Per-thread sampling-cost multiplier from the fault plan: straggler
    // ranks slow every thread they host; slow threads compound on top.
    let tid_mul: Vec<f64> = (0..max_procs)
        .flat_map(|p| {
            (0..t_count).map(move |t| match plan {
                Some(pl) => {
                    let mut m = pl.rank_factor(p) as f64;
                    if pl.slow_threads.contains(&(p, t)) {
                        m *= pl.slow_thread_factor.max(1) as f64;
                    }
                    m
                }
                None => 1.0,
            })
        })
        .collect();
    let smul = |tid: usize| numa_mul * tid_mul[tid];
    // The calibration phase precedes every join point, so its makespan
    // follows the slowest *founding* thread only.
    let worst_mul = tid_mul[..total_threads].iter().copied().fold(1.0f64, f64::max);

    // Calibration phase (closed-form virtual time; the δ budgets themselves
    // come from `prepared` — same data on every rank after the all-reduce).
    // Its makespan follows the slowest thread: everybody joins the blocking
    // all-reduce behind the straggler.
    let tau0 = calibration_sample_count(cfg, omega);
    let per_thread = tau0.div_ceil(total_threads as u64);
    let calibration_ns = (per_thread as f64 * cost.mean_sample_ns() * numa_mul * worst_mul) as u64
        + spec.network.tree_collective_ns(p_count, frame_bytes)
        + cost.delta_fit_ns;

    // One virtual timeline for the whole run: diameter, then calibration,
    // then the adaptive-sampling DES (whose queue clock starts at 0).
    let vt_base = cost.diameter_ns + calibration_ns;
    if let Some(l) = log.as_deref_mut() {
        l.span(0, 0, SpanId::Diameter, 0, 0, cost.diameter_ns);
        l.span(0, 0, SpanId::Calibration, 0, cost.diameter_ns, calibration_ns);
    }

    // --- DES state -----------------------------------------------------
    let mut samplers: Vec<ThreadSampler> = (0..max_procs)
        .flat_map(|p| {
            (0..t_count).map(move |t| ThreadSampler::new(n, cfg.seed, p, ADS_STREAM_OFFSET + t))
        })
        .collect();
    let mut threads: Vec<VThread> = (0..max_procs)
        .flat_map(|p| (0..t_count).map(move |_| VThread { proc: p, epoch: 0, stopped: false }))
        .collect();
    let mut procs: Vec<VProc> = (0..max_procs)
        .map(|p| {
            let node = p / shape.ranks_per_node;
            VProc {
                node,
                // Standby ranks landing on a fresh node assume leadership at
                // activation, not here.
                is_leader: p < p_count && p % shape.ranks_per_node == 0,
                round: 0,
                ctrl: Ctrl::Sampling,
                t0_round_samples: 0,
                commanded: 0,
                frames: [
                    ProcFrame { counts: vec![0; n], tau: 0 },
                    ProcFrame { counts: vec![0; n], tau: 0 },
                ],
                terminated: false,
            }
        })
        .collect();
    // Crash bookkeeping: at most one plan-scheduled crash (mirroring the
    // crash-corpus generator), resolved to a (victim, round) coordinate.
    let crash = crash_schedule(plan, p_count);
    let mut active: Vec<bool> = (0..max_procs).map(|p| p < p_count).collect();
    let mut active_procs = p_count;
    let mut active_leaders = leaders;
    let procs_in_node = |active: &[bool], node: usize| -> usize {
        let lo = node * shape.ranks_per_node;
        let hi = ((node + 1) * shape.ranks_per_node).min(max_procs);
        (lo..hi).filter(|&p| active[p]).count()
    };

    // Per-proc per-thread round quota under the steal model. Stragglers
    // (plan `rank_factor > 1`) keep `n0 / factor`; the deficit is split over
    // the non-straggler helpers, remainder to the lowest helper indices —
    // the same deterministic schedule every rank derives locally in the
    // drivers, so no extra coordination is charged. Returns the quotas and
    // the thread-samples moved per round.
    let steal_quotas = |active: &[bool], n0: u64| -> (Vec<u64>, u64) {
        let mut quotas = vec![n0; max_procs];
        let (Some(pl), true) = (plan, sim.steal) else {
            return (quotas, 0);
        };
        let stragglers: Vec<usize> =
            (0..max_procs).filter(|&p| active[p] && pl.rank_factor(p) > 1).collect();
        let helpers: Vec<usize> =
            (0..max_procs).filter(|&p| active[p] && pl.rank_factor(p) <= 1).collect();
        if stragglers.is_empty() || helpers.is_empty() {
            return (quotas, 0);
        }
        let mut deficit = 0u64;
        for &p in &stragglers {
            let keep = (n0 / pl.rank_factor(p).max(1)).max(1).min(n0);
            quotas[p] = keep;
            deficit += n0 - keep;
        }
        let (chunk, rem) = (deficit / helpers.len() as u64, deficit % helpers.len() as u64);
        for (i, &p) in helpers.iter().enumerate() {
            quotas[p] = n0 + chunk + u64::from((i as u64) < rem);
        }
        (quotas, deficit * t_count as u64)
    };
    let (mut quotas, mut stolen_per_round) = steal_quotas(&active, n0);

    // Grow-window cost on the virtual timeline: the newcomers' local
    // bootstrap (diameter recompute plus a sequential replay of the founding
    // calibration streams) runs while the survivors block in the admission
    // consensus, the round-handoff broadcast and the ledger all-reduce
    // (DESIGN.md §15). Survivors cannot close a round before it completes.
    let tau0 = calibration_sample_count(cfg, omega);
    let replay_ns = (tau0 as f64 * cost.mean_sample_ns()) as u64;
    let join_delay = |members: usize| -> u64 {
        cost.diameter_ns
            + replay_ns
            + spec.network.barrier_ns(members)
            + 2 * spec.network.tree_collective_ns(members, frame_bytes)
    };
    let mut joins_remaining = joiner_count;
    let mut next_joiner = p_count;

    let mut rounds: Vec<Round> = vec![Round::new(n, max_nodes)];
    let mut s_total = vec![0u64; n];
    let mut tau_total: u64 = 0;

    let mut queue: BinaryHeap<Reverse<QE>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut dur_rng = CostModel::duration_rng(cfg.seed);
    let push = |queue: &mut BinaryHeap<Reverse<QE>>, seq: &mut u64, at: u64, ev: Ev| {
        *seq += 1;
        queue.push(Reverse(QE { at, seq: *seq, ev }));
    };

    let mut report = SimReport {
        scores: Vec::new(),
        samples: 0,
        omega,
        epochs: 0,
        ads_ns: 0,
        calibration_ns,
        diameter_ns: cost.diameter_ns,
        barrier_wait_ns: 0,
        reduce_ns: 0,
        transition_ns: 0,
        check_ns: 0,
        comm_bytes: 0,
        total_threads,
        ranks_lost: 0,
        recovery_ns: 0,
        ranks_joined: 0,
        samples_stolen: 0,
        rebalance_ns: 0,
    };

    // A round-0 join point admits its standbys before the first sample: the
    // grow window sits at the head of the adaptive phase and delays every
    // founding thread's first sample alongside the newcomers'.
    let mut ads_start = 0u64;
    if let Some(pl) = plan {
        let k = pl.join_at_round(0).min(joins_remaining);
        if k > 0 {
            for _ in 0..k {
                let p = next_joiner;
                next_joiner += 1;
                active[p] = true;
                active_procs += 1;
                if p.is_multiple_of(shape.ranks_per_node) {
                    procs[p].is_leader = true;
                    active_leaders += 1;
                }
            }
            joins_remaining -= k;
            report.ranks_joined += k as u64;
            n0 = cfg.n0(active_procs * t_count);
            (quotas, stolen_per_round) = steal_quotas(&active, n0);
            ads_start = join_delay(active_procs);
            report.rebalance_ns += ads_start;
            report.comm_bytes += active_procs as u64 * frame_bytes;
            if let Some(l) = log.as_deref_mut() {
                l.span(0, 0, SpanId::Rebalance, 0, vt_base, ads_start);
                l.count(0, 0, CounterId::RanksJoined, 0, vt_base, k as u64);
            }
        }
    }

    // Prime every active thread's first sample.
    for tid in (0..max_procs * t_count).filter(|t| active[t / t_count]) {
        let d = (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
        push(&mut queue, &mut seq, ads_start + d, Ev::Sample { tid });
    }
    let mut makespan = 0u64;
    // Root transition bookkeeping (started-at time for the wait columns).
    let mut root_transition_started = 0u64;
    let mut root_barrier_started = 0u64;
    // Root span bookkeeping for the trace (batch start, bcast-wait start).
    let mut root_batch_started = ads_start;
    let mut root_bcast_started = 0u64;

    while let Some(Reverse(QE { at: now, ev, .. })) = queue.pop() {
        match ev {
            Ev::Sample { tid } => {
                let proc_id = threads[tid].proc;
                if threads[tid].stopped {
                    continue;
                }
                if !active[proc_id] {
                    // The process died at a round boundary; its threads fall
                    // silent at their next sample boundary.
                    threads[tid].stopped = true;
                    makespan = makespan.max(now);
                    continue;
                }
                // The sample that just finished: take it for real and record
                // it into the thread's current-epoch frame.
                let parity = (threads[tid].epoch & 1) as usize;
                {
                    let frame = &mut procs[proc_id].frames[parity];
                    for &v in samplers[tid].sample(g) {
                        frame.counts[v as usize] += 1;
                    }
                    frame.tau += 1;
                }
                let is_t0 = tid % t_count == 0;
                if !is_t0 {
                    // Worker: join pending transitions, honour termination.
                    if procs[proc_id].commanded > threads[tid].epoch {
                        threads[tid].epoch += 1;
                    }
                    if procs[proc_id].terminated {
                        threads[tid].stopped = true;
                        makespan = makespan.max(now);
                    } else {
                        let d = (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
                        push(&mut queue, &mut seq, now + d, Ev::Sample { tid });
                    }
                    continue;
                }

                // Thread 0: control state machine at a sample boundary.
                let mut resample = true;
                match procs[proc_id].ctrl {
                    Ctrl::Sampling => {
                        procs[proc_id].t0_round_samples += 1;
                        if procs[proc_id].t0_round_samples >= quotas[proc_id] {
                            // forceTransition: advance self, command others.
                            threads[tid].epoch += 1;
                            procs[proc_id].commanded += 1;
                            procs[proc_id].ctrl = Ctrl::AwaitTransition;
                            if proc_id == 0 {
                                if let Some(l) = log.as_deref_mut() {
                                    let e = procs[proc_id].round as u32;
                                    l.span(
                                        0,
                                        0,
                                        SpanId::SampleBatch,
                                        e,
                                        vt_base + root_batch_started,
                                        now - root_batch_started,
                                    );
                                }
                                root_transition_started = now;
                            }
                        }
                    }
                    Ctrl::AwaitTransition => {
                        let e = procs[proc_id].round as u32;
                        let all_joined = (proc_id * t_count..(proc_id + 1) * t_count)
                            .all(|t| threads[t].epoch > e);
                        if all_joined {
                            if proc_id == 0 {
                                report.transition_ns += now - root_transition_started;
                            }
                            let agg_cost = spec.aggregate_ns(t_count as u64 * frame_bytes);
                            if proc_id == 0 {
                                if let Some(l) = log.as_deref_mut() {
                                    let e = procs[proc_id].round as u32;
                                    l.span(
                                        0,
                                        0,
                                        SpanId::TransitionWait,
                                        e,
                                        vt_base + root_transition_started,
                                        now - root_transition_started,
                                    );
                                    l.span(
                                        0,
                                        0,
                                        SpanId::FrameAggregate,
                                        e,
                                        vt_base + now,
                                        agg_cost,
                                    );
                                }
                            }
                            procs[proc_id].ctrl = Ctrl::Aggregating;
                            push(
                                &mut queue,
                                &mut seq,
                                now + agg_cost,
                                Ev::AggDone { proc: proc_id },
                            );
                            resample = false;
                        }
                    }
                    Ctrl::NodeWait => {
                        try_enter_global_phase(
                            proc_id,
                            now,
                            sim,
                            spec,
                            &mut procs,
                            &mut rounds,
                            &mut queue,
                            &mut seq,
                            p_count,
                            active_leaders,
                            frame_bytes,
                            &|node| procs_in_node(&active, node),
                            &mut root_barrier_started,
                            &mut root_bcast_started,
                            &mut resample,
                        );
                    }
                    Ctrl::AwaitBarrier => {
                        let round_idx = procs[proc_id].round;
                        if let Some(done) = rounds[round_idx].barrier_done {
                            if now >= done {
                                if proc_id == 0 {
                                    report.barrier_wait_ns += now - root_barrier_started;
                                    if let Some(l) = log.as_deref_mut() {
                                        l.span(
                                            0,
                                            0,
                                            SpanId::IbarrierWait,
                                            round_idx as u32,
                                            vt_base + root_barrier_started,
                                            now - root_barrier_started,
                                        );
                                    }
                                }
                                arrive_at_reduce(
                                    proc_id,
                                    now,
                                    sim,
                                    spec,
                                    &mut procs,
                                    &mut rounds,
                                    &mut queue,
                                    &mut seq,
                                    p_count,
                                    active_leaders,
                                    frame_bytes,
                                    /*blocking=*/ true,
                                );
                                resample = false;
                            }
                        }
                    }
                    Ctrl::AwaitBcast => {
                        let round_idx = procs[proc_id].round;
                        if let Some((ready_at, d)) = rounds[round_idx].bcast {
                            if now >= ready_at {
                                if proc_id == 0 {
                                    if let Some(l) = log.as_deref_mut() {
                                        l.span(
                                            0,
                                            0,
                                            SpanId::BcastStop,
                                            round_idx as u32,
                                            vt_base + root_bcast_started,
                                            now - root_bcast_started,
                                        );
                                    }
                                }
                                if d {
                                    procs[proc_id].terminated = true;
                                    threads[tid].stopped = true;
                                    makespan = makespan.max(now);
                                    resample = false;
                                } else {
                                    if proc_id == 0 {
                                        root_batch_started = now;
                                    }
                                    procs[proc_id].round += 1;
                                    procs[proc_id].t0_round_samples = 0;
                                    procs[proc_id].ctrl = Ctrl::Sampling;
                                }
                            }
                        }
                    }
                    Ctrl::Aggregating | Ctrl::BlockedReduce => {
                        unreachable!("thread 0 does not sample in busy/blocked states")
                    }
                }
                if resample {
                    let d = (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
                    push(&mut queue, &mut seq, now + d, Ev::Sample { tid });
                }
            }

            Ev::AggDone { proc: proc_id } => {
                // Drain the finished epoch's frame into the round accumulator.
                let round_idx = procs[proc_id].round;
                let parity = round_idx & 1;
                if rounds.len() <= round_idx + 1 {
                    rounds.push(Round::new(n, max_nodes));
                }
                {
                    let frame = &mut procs[proc_id].frames[parity];
                    let round = &mut rounds[round_idx];
                    for (acc, c) in round.pending.iter_mut().zip(frame.counts.iter_mut()) {
                        if *c != 0 {
                            *acc += *c as u64;
                            *c = 0;
                        }
                    }
                    round.pending_tau += frame.tau;
                    frame.tau = 0;
                }
                let node = procs[proc_id].node;
                rounds[round_idx].node_drained[node] += 1;

                let mut resample = true;
                if procs[proc_id].is_leader {
                    procs[proc_id].ctrl = Ctrl::NodeWait;
                    try_enter_global_phase(
                        proc_id,
                        now,
                        sim,
                        spec,
                        &mut procs,
                        &mut rounds,
                        &mut queue,
                        &mut seq,
                        p_count,
                        active_leaders,
                        frame_bytes,
                        &|node| procs_in_node(&active, node),
                        &mut root_barrier_started,
                        &mut root_bcast_started,
                        &mut resample,
                    );
                } else {
                    procs[proc_id].ctrl = Ctrl::AwaitBcast;
                }
                if resample {
                    let tid = proc_id * t_count;
                    let d = (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
                    push(&mut queue, &mut seq, now + d, Ev::Sample { tid });
                }
            }

            Ev::ReduceDone { round: round_idx } => {
                // Fold the round into the global state; root checks; the
                // termination flag is broadcast.
                let round = &mut rounds[round_idx];
                round.reduce_done_at = Some(now);
                // Root's blocked time in the reduce (zero for the fully
                // overlapped Ireduce strategy).
                if sim.strategy != ReduceStrategy::Ireduce {
                    report.reduce_ns += now - round.root_reduce_arrival;
                }
                // A plan-scheduled crash lands in this round: the collective
                // failed. Sacrifice the round — its samples are discarded
                // everywhere, matching the real drivers, whose recovery
                // ledger only carries globally-reduced rounds — then shrink
                // and continue with the survivors.
                if let Some((victim, crash_round)) = crash {
                    if round_idx == crash_round && active[victim] {
                        let members = active_procs as u64;
                        let reduce_arrival = round.root_reduce_arrival;
                        active[victim] = false;
                        active_procs -= 1;
                        report.ranks_lost += 1;
                        // A dead leader's node promotes its next surviving
                        // rank (the real drivers re-split by original world
                        // rank); an emptied node leaves the leader ring.
                        if procs[victim].is_leader {
                            procs[victim].is_leader = false;
                            let node = procs[victim].node;
                            let lo = node * shape.ranks_per_node;
                            let hi = ((node + 1) * shape.ranks_per_node).min(max_procs);
                            match (lo..hi).find(|&p| active[p]) {
                                Some(next) => procs[next].is_leader = true,
                                None => active_leaders -= 1,
                            }
                        }
                        // Survivors re-derive n0 — and the steal schedule —
                        // for the shrunk world.
                        n0 = cfg.n0(active_procs * t_count);
                        (quotas, stolen_per_round) = steal_quotas(&active, n0);
                        // Recovery penalty: shrink consensus (a barrier over
                        // the survivors) plus the ledger rebuild (an
                        // all-reduce ≈ reduce + broadcast of one frame).
                        let recovery_ns = spec.network.barrier_ns(active_procs)
                            + 2 * spec.network.tree_collective_ns(active_procs, frame_bytes);
                        report.recovery_ns += recovery_ns;
                        // The torn reduce still moved frames; the rebuild
                        // moves one ledger frame per survivor.
                        report.comm_bytes += (members + active_procs as u64) * frame_bytes;
                        if let Some(l) = log.as_deref_mut() {
                            let e = round_idx as u32;
                            if sim.strategy != ReduceStrategy::Ireduce {
                                l.span(
                                    0,
                                    0,
                                    SpanId::Reduce,
                                    e,
                                    vt_base + reduce_arrival,
                                    now - reduce_arrival,
                                );
                            }
                            l.span(0, 0, SpanId::Recovery, e, vt_base + now, recovery_ns);
                            l.count(0, 0, CounterId::RanksLost, e, vt_base + now, 1);
                            l.count(
                                0,
                                0,
                                CounterId::BytesReduced,
                                e,
                                vt_base + now,
                                (members + active_procs as u64) * frame_bytes,
                            );
                        }
                        // Never terminate on a sacrificed round: survivors
                        // resume sampling once recovery completes.
                        rounds[round_idx].bcast = Some((now + recovery_ns, false));
                        for (p, proc) in procs.iter_mut().enumerate() {
                            if !active[p] {
                                continue;
                            }
                            if proc.ctrl == Ctrl::BlockedReduce && proc.round == round_idx {
                                proc.ctrl = Ctrl::AwaitBcast;
                                let resume = now + recovery_ns;
                                if p == 0 {
                                    root_bcast_started = resume;
                                }
                                let tid = p * t_count;
                                let d_ns =
                                    (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
                                push(&mut queue, &mut seq, resume + d_ns, Ev::Sample { tid });
                            }
                        }
                        continue;
                    }
                }
                let round = &mut rounds[round_idx];
                let pending = std::mem::take(&mut round.pending);
                for (a, p) in s_total.iter_mut().zip(&pending) {
                    *a += p;
                }
                tau_total += round.pending_tau;
                report.epochs += 1;
                report.comm_bytes += active_procs as u64 * frame_bytes;
                report.samples_stolen += stolen_per_round;

                let check_cost = cost.check_ns(n);
                report.check_ns += check_cost;
                if let Some(l) = log.as_deref_mut() {
                    let e = round_idx as u32;
                    if sim.strategy != ReduceStrategy::Ireduce {
                        l.span(
                            0,
                            0,
                            SpanId::Reduce,
                            e,
                            vt_base + round.root_reduce_arrival,
                            now - round.root_reduce_arrival,
                        );
                    } else {
                        // The overlapped strategy has no blocked segment; the
                        // collective's own duration lands on IreduceWait.
                        l.span(
                            0,
                            0,
                            SpanId::IreduceWait,
                            e,
                            vt_base + round.reduce_last,
                            now - round.reduce_last,
                        );
                    }
                    l.span(0, 0, SpanId::Check, e, vt_base + now, check_cost);
                    l.mark(0, 0, MarkId::CollectiveComplete, e, vt_base + now, round_idx as u64);
                    l.count(0, 0, CounterId::Collectives, e, vt_base + now, 1);
                    l.count(0, 0, CounterId::Samples, e, vt_base + now, round.pending_tau);
                    l.count(0, 0, CounterId::Epochs, e, vt_base + now, 1);
                    l.count(
                        0,
                        0,
                        CounterId::BytesReduced,
                        e,
                        vt_base + now,
                        active_procs as u64 * frame_bytes,
                    );
                    if stolen_per_round > 0 {
                        l.count(0, 0, CounterId::SamplesStolen, e, vt_base + now, stolen_per_round);
                    }
                }
                let d = stopping_condition(
                    &s_total,
                    tau_total,
                    cfg.epsilon,
                    omega,
                    &prepared.calibration.delta_l,
                    &prepared.calibration.delta_u,
                );
                let mut bcast_ready =
                    now + check_cost + spec.network.tree_collective_ns(p_count, 16);
                // A join point at the start of the next round: admit its
                // standbys now. The grow window delays the termination
                // broadcast — no survivor can open the next round before the
                // handoff collectives complete — and the newcomers' threads
                // fire their first samples once it lifts.
                if !d {
                    if let Some(pl) = plan {
                        let next_round = round_idx + 1;
                        let k = pl.join_at_round(next_round as u64).min(joins_remaining);
                        if k > 0 {
                            let first = next_joiner;
                            for _ in 0..k {
                                let p = next_joiner;
                                next_joiner += 1;
                                active[p] = true;
                                active_procs += 1;
                                if p.is_multiple_of(shape.ranks_per_node) {
                                    procs[p].is_leader = true;
                                    active_leaders += 1;
                                }
                            }
                            joins_remaining -= k;
                            report.ranks_joined += k as u64;
                            // The grown world re-derives n0 and the steal
                            // schedule, exactly as the survivors do after
                            // `Communicator::grow`.
                            n0 = cfg.n0(active_procs * t_count);
                            (quotas, stolen_per_round) = steal_quotas(&active, n0);
                            let delay = join_delay(active_procs);
                            report.rebalance_ns += delay;
                            // The handoff moves one ledger frame per member.
                            report.comm_bytes += active_procs as u64 * frame_bytes;
                            if let Some(l) = log.as_deref_mut() {
                                let e = next_round as u32;
                                l.span(0, 0, SpanId::Rebalance, e, vt_base + bcast_ready, delay);
                                l.count(
                                    0,
                                    0,
                                    CounterId::RanksJoined,
                                    e,
                                    vt_base + bcast_ready,
                                    k as u64,
                                );
                            }
                            bcast_ready += delay;
                            for (off, proc) in procs[first..first + k].iter_mut().enumerate() {
                                let p = first + off;
                                proc.round = next_round;
                                proc.commanded = next_round as u32;
                                proc.ctrl = Ctrl::Sampling;
                                proc.t0_round_samples = 0;
                                for t in 0..t_count {
                                    let tid = p * t_count + t;
                                    threads[tid].epoch = next_round as u32;
                                    threads[tid].stopped = false;
                                    let d_ns = (cost.draw_sample_ns(&mut dur_rng) as f64
                                        * smul(tid))
                                        as u64;
                                    push(
                                        &mut queue,
                                        &mut seq,
                                        bcast_ready + d_ns,
                                        Ev::Sample { tid },
                                    );
                                }
                            }
                        }
                    }
                }
                rounds[round_idx].bcast = Some((bcast_ready, d));

                // Resume blocked leaders (Ibarrier / FullyBlocking paths).
                for (p, proc) in procs.iter_mut().enumerate() {
                    if proc.ctrl == Ctrl::BlockedReduce && proc.round == round_idx {
                        proc.ctrl = Ctrl::AwaitBcast;
                        // The root additionally spends the check before it
                        // can resume sampling.
                        let resume = if p == 0 { now + check_cost } else { now };
                        if p == 0 {
                            root_bcast_started = resume;
                        }
                        let tid = p * t_count;
                        let d_ns = (cost.draw_sample_ns(&mut dur_rng) as f64 * smul(tid)) as u64;
                        push(&mut queue, &mut seq, resume + d_ns, Ev::Sample { tid });
                    }
                }
            }
        }
    }

    report.samples = tau_total;
    report.scores = scores_from_counts(&s_total, tau_total.max(1));
    report.ads_ns = makespan;
    if let Some(l) = log {
        l.span(0, 0, SpanId::AdaptiveSampling, 0, vt_base, makespan);
    }
    report
}

/// Leader logic after node aggregation completes: enter the global phase
/// according to the reduce strategy. Shared by `NodeWait` boundaries and
/// `AggDone`.
#[allow(clippy::too_many_arguments)]
fn try_enter_global_phase(
    proc_id: usize,
    now: u64,
    sim: &SimConfig,
    spec: &ClusterSpec,
    procs: &mut [VProc],
    rounds: &mut [Round],
    queue: &mut BinaryHeap<Reverse<QE>>,
    seq: &mut u64,
    p_count: usize,
    leaders: usize,
    frame_bytes: u64,
    procs_in_node: &dyn Fn(usize) -> usize,
    root_barrier_started: &mut u64,
    root_bcast_started: &mut u64,
    resample: &mut bool,
) {
    let round_idx = procs[proc_id].round;
    let node = procs[proc_id].node;
    if rounds[round_idx].node_drained[node] < procs_in_node(node) {
        return; // peers still aggregating; keep sampling in NodeWait
    }
    match sim.strategy {
        ReduceStrategy::IbarrierThenBlockingReduce => {
            // Arrive at the barrier; completion = last arrival + log(L)·α.
            let round = &mut rounds[round_idx];
            round.barrier_arrived += 1;
            round.barrier_last = round.barrier_last.max(now);
            if proc_id == 0 {
                *root_barrier_started = now;
                round.root_barrier_arrival = now;
            }
            if round.barrier_arrived == leaders {
                round.barrier_done = Some(round.barrier_last + spec.network.barrier_ns(leaders));
            }
            procs[proc_id].ctrl = Ctrl::AwaitBarrier;
        }
        ReduceStrategy::Ireduce => {
            // Overlapped: deposit and keep sampling; completion is penalized.
            if proc_id == 0 {
                *root_bcast_started = now;
            }
            let net = &spec.network;
            let round = &mut rounds[round_idx];
            round.reduce_arrived += 1;
            round.reduce_last = round.reduce_last.max(now);
            if round.reduce_arrived == leaders {
                let dur = (net.tree_collective_ns(leaders, frame_bytes) as f64
                    * net.ireduce_progress_penalty) as u64;
                let done = round.reduce_last + dur;
                *seq += 1;
                queue.push(Reverse(QE {
                    at: done,
                    seq: *seq,
                    ev: Ev::ReduceDone { round: round_idx },
                }));
            }
            procs[proc_id].ctrl = Ctrl::AwaitBcast;
        }
        ReduceStrategy::FullyBlocking => {
            arrive_at_reduce(
                proc_id,
                now,
                sim,
                spec,
                procs,
                rounds,
                queue,
                seq,
                p_count,
                leaders,
                frame_bytes,
                true,
            );
            *resample = false;
        }
    }
}

/// Leader arrives at the blocking global reduce.
#[allow(clippy::too_many_arguments)]
fn arrive_at_reduce(
    proc_id: usize,
    now: u64,
    _sim: &SimConfig,
    spec: &ClusterSpec,
    procs: &mut [VProc],
    rounds: &mut [Round],
    queue: &mut BinaryHeap<Reverse<QE>>,
    seq: &mut u64,
    _p_count: usize,
    leaders: usize,
    frame_bytes: u64,
    _blocking: bool,
) {
    let round_idx = procs[proc_id].round;
    let round = &mut rounds[round_idx];
    round.reduce_arrived += 1;
    round.reduce_last = round.reduce_last.max(now);
    if proc_id == 0 {
        round.root_reduce_arrival = now;
    }
    procs[proc_id].ctrl = Ctrl::BlockedReduce;
    if round.reduce_arrived == leaders {
        let done = round.reduce_last + spec.network.tree_collective_ns(leaders, frame_bytes);
        *seq += 1;
        queue.push(Reverse(QE { at: done, seq: *seq, ev: Ev::ReduceDone { round: round_idx } }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_core::prepare;
    use kadabra_graph::generators::{grid, GridConfig};

    fn setup() -> (kadabra_graph::Graph, KadabraConfig, Prepared, CostModel) {
        let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.08, 0.1);
        let prepared = prepare(&g, &cfg);
        let cost = CostModel::synthetic(100_000); // 0.1 ms per sample
        (g, cfg, prepared, cost)
    }

    fn shape(ranks: usize, rpn: usize, tpr: usize) -> ClusterShape {
        ClusterShape { ranks, ranks_per_node: rpn, threads_per_rank: tpr }
    }

    #[test]
    fn single_proc_single_thread_terminates() {
        let (g, cfg, prepared, cost) = setup();
        let sim = SimConfig {
            shape: shape(1, 1, 1),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        assert!(r.samples > 0);
        assert!(r.epochs >= 1);
        assert!(r.ads_ns > 0);
        assert_eq!(r.scores.len(), 64);
    }

    #[test]
    fn simulated_scores_respect_epsilon() {
        let (g, cfg, prepared, cost) = setup();
        let exact = kadabra_baselines_brandes(&g);
        for ranks in [1, 4] {
            let sim = SimConfig {
                shape: shape(ranks, 2, 2),
                strategy: ReduceStrategy::IbarrierThenBlockingReduce,
                numa_penalty: false,
                steal: false,
            };
            let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
            let worst =
                r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
            assert!(worst <= cfg.epsilon, "ranks={ranks}: max error {worst}");
        }
    }

    // Local shim to avoid a dev-dependency cycle: exact betweenness of the
    // tiny test grid via kadabra-core's own sequential run at very small eps
    // would be circular, so compute Brandes inline.
    fn kadabra_baselines_brandes(g: &kadabra_graph::Graph) -> Vec<f64> {
        use kadabra_graph::bfs::sigma_bfs;
        let n = g.num_nodes();
        let mut bc = vec![0.0f64; n];
        for s in 0..n as u32 {
            let res = sigma_bfs(g, s);
            let mut delta = vec![0.0f64; n];
            for &w in res.order.iter().rev() {
                let dw = res.dist[w as usize];
                let coeff = (1.0 + delta[w as usize]) / res.sigma[w as usize] as f64;
                for &v in g.neighbors(w) {
                    if res.dist[v as usize] + 1 == dw {
                        delta[v as usize] += res.sigma[v as usize] as f64 * coeff;
                    }
                }
                if w != s {
                    bc[w as usize] += delta[w as usize];
                }
            }
        }
        let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
        bc.iter().map(|b| b * norm).collect()
    }

    #[test]
    fn more_ranks_shrink_virtual_ads_time() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let mut prev = u64::MAX;
        for ranks in [1, 2, 4, 8] {
            let sim = SimConfig {
                shape: shape(ranks, 2, 4),
                strategy: ReduceStrategy::IbarrierThenBlockingReduce,
                numa_penalty: false,
                steal: false,
            };
            let r = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
            assert!(
                r.ads_ns < prev,
                "ads time must shrink with ranks: {} !< {prev} at ranks={ranks}",
                r.ads_ns
            );
            prev = r.ads_ns;
        }
    }

    #[test]
    fn numa_penalty_slows_sampling() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let base = SimConfig {
            shape: shape(1, 1, 4),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let penalized = SimConfig { numa_penalty: true, steal: false, ..base };
        let r0 = simulate(&g, &cfg, &prepared, &base, &spec, &cost);
        let r1 = simulate(&g, &cfg, &prepared, &penalized, &spec, &cost);
        assert!(
            r1.ads_ns > r0.ads_ns,
            "NUMA penalty must slow the run: {} !> {}",
            r1.ads_ns,
            r0.ads_ns
        );
    }

    #[test]
    fn strategies_all_terminate_with_identical_samples_semantics() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        for strategy in [
            ReduceStrategy::IbarrierThenBlockingReduce,
            ReduceStrategy::Ireduce,
            ReduceStrategy::FullyBlocking,
        ] {
            let sim =
                SimConfig { shape: shape(4, 2, 2), strategy, numa_penalty: false, steal: false };
            let r = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
            assert!(r.samples > 0, "{strategy:?}");
            assert!(r.epochs >= 1, "{strategy:?}");
        }
    }

    #[test]
    fn deterministic() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(3, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let a = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        let b = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.ads_ns, b.ads_ns);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn ideal_fault_plan_reproduces_the_unperturbed_run() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(3, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let base = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        let ideal = FaultPlan::ideal(9);
        let r = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&ideal));
        assert_eq!(base.scores, r.scores);
        assert_eq!(base.ads_ns, r.ads_ns);
        assert_eq!(base.calibration_ns, r.calibration_ns);
        assert_eq!(base.epochs, r.epochs);
    }

    #[test]
    fn straggler_rank_stretches_virtual_time() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(4, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let base = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        let plan = FaultPlan::ideal(0).with_straggler(2, 6);
        let slow = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        // The DES joins every round behind the straggler's aggregation, so
        // both phases of virtual time must stretch.
        assert!(
            slow.ads_ns > base.ads_ns,
            "straggler must slow ads: {} !> {}",
            slow.ads_ns,
            base.ads_ns
        );
        assert!(slow.calibration_ns > base.calibration_ns);
        // The statistical outcome still meets the guarantee: stretching one
        // rank's sampling changes timing, not the stopping rule's soundness.
        assert!(slow.samples > 0);
        assert!(slow.epochs >= 1);
    }

    #[test]
    fn slow_thread_is_milder_than_a_full_straggler_rank() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(2, 2, 4),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let thread_plan = FaultPlan::ideal(0).with_slow_thread(1, 2, 6);
        let rank_plan = FaultPlan::ideal(0).with_straggler(1, 6);
        let one = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&thread_plan));
        let all = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&rank_plan));
        let base = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        assert!(one.ads_ns > base.ads_ns, "{} !> {}", one.ads_ns, base.ads_ns);
        assert!(all.ads_ns > one.ads_ns, "{} !> {}", all.ads_ns, one.ads_ns);
    }

    #[test]
    fn traced_run_matches_the_report_and_does_not_perturb_it() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        for strategy in [
            ReduceStrategy::IbarrierThenBlockingReduce,
            ReduceStrategy::Ireduce,
            ReduceStrategy::FullyBlocking,
        ] {
            let sim =
                SimConfig { shape: shape(4, 2, 2), strategy, numa_penalty: false, steal: false };
            let base = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
            let mut log = EventLog::new();
            let traced =
                simulate_traced(&g, &cfg, &prepared, &sim, &spec, &cost, None, Some(&mut log));
            // Recording is a pure observer.
            assert_eq!(base.scores, traced.scores, "{strategy:?}");
            assert_eq!(base.ads_ns, traced.ads_ns, "{strategy:?}");
            // The virtual-time trace agrees with the report's columns: the
            // same schema the real drivers emit, fed by the DES clock.
            let s = log.summary();
            assert_eq!(s.span_total(SpanId::Check), traced.check_ns, "{strategy:?}");
            assert_eq!(s.span_total(SpanId::TransitionWait), traced.transition_ns);
            assert_eq!(s.span_total(SpanId::IbarrierWait), traced.barrier_wait_ns);
            if strategy != ReduceStrategy::Ireduce {
                assert_eq!(s.span_total(SpanId::Reduce), traced.reduce_ns, "{strategy:?}");
            }
            assert_eq!(s.counter(CounterId::Samples), traced.samples, "{strategy:?}");
            assert_eq!(s.counter(CounterId::Epochs), traced.epochs);
            assert_eq!(s.counter(CounterId::BytesReduced), traced.comm_bytes);
            assert_eq!(s.span_total(SpanId::Diameter), traced.diameter_ns);
            assert_eq!(s.span_total(SpanId::Calibration), traced.calibration_ns);
            assert_eq!(s.span_total(SpanId::AdaptiveSampling), traced.ads_ns);
            let overlap = s.reduction_overlap();
            assert!((0.0..=1.0).contains(&overlap), "{strategy:?}: overlap {overlap}");
        }
    }

    #[test]
    fn crashed_rank_shrinks_the_cluster_and_still_terminates() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(4, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        // Collective join 6 maps to round (6 − 4) / 2 = 1.
        let plan = FaultPlan::ideal(0).with_crash_at_collective(2, 6);
        let r = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        assert_eq!(r.ranks_lost, 1, "the scheduled crash must fire");
        assert!(r.recovery_ns > 0, "recovery must cost virtual time");
        assert!(r.samples > 0);
        assert!(r.epochs >= 1, "the run must fold at least one healthy round");
        let exact = kadabra_baselines_brandes(&g);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} after recovery");
        // Bit-reproducible from (plan, seed), like every other DES run.
        let again = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        assert_eq!(r.scores, again.scores);
        assert_eq!(r.ads_ns, again.ads_ns);
        assert_eq!(r.recovery_ns, again.recovery_ns);
        // A healthy plan loses nothing and books no recovery.
        let healthy = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        assert_eq!(healthy.ranks_lost, 0);
        assert_eq!(healthy.recovery_ns, 0);
    }

    #[test]
    fn crash_recovery_lands_in_the_event_trace() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(4, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let plan = FaultPlan::ideal(0).with_crash_at_collective(3, 4);
        let base = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        let mut log = EventLog::new();
        let traced =
            simulate_traced(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan), Some(&mut log));
        // Recording stays a pure observer through a crash.
        assert_eq!(base.scores, traced.scores);
        assert_eq!(base.ads_ns, traced.ads_ns);
        // The recovery columns follow the one-schema rule like every other.
        let s = log.summary();
        assert_eq!(s.span_total(SpanId::Recovery), traced.recovery_ns);
        assert_eq!(s.counter(CounterId::RanksLost), traced.ranks_lost);
        assert_eq!(s.counter(CounterId::BytesReduced), traced.comm_bytes);
        assert_eq!(s.counter(CounterId::Samples), traced.samples, "discarded rounds stay out");
    }

    #[test]
    fn crash_schedule_mapping_is_coarse_but_sound() {
        // AtCollective: past the four setup joins, two joins per round.
        let p = FaultPlan::ideal(1).with_crash_at_collective(2, 9);
        assert_eq!(crash_schedule(Some(&p), 4), Some((2, 2)));
        // Rank 0 is remapped (the DES pins root bookkeeping to proc 0).
        let p = FaultPlan::ideal(1).with_crash_at_collective(0, 4);
        assert_eq!(crash_schedule(Some(&p), 4), Some((1, 0)));
        // AfterPolls without injected delay never fires, as in the runtime.
        let p = FaultPlan::ideal(1).with_crash_after_polls(2, 12);
        assert_eq!(crash_schedule(Some(&p), 4), None);
        let p = FaultPlan::ideal(1).with_collective_delay(1, 5).with_crash_after_polls(2, 12);
        assert_eq!(crash_schedule(Some(&p), 4), Some((2, 2)));
        // A sole rank cannot shrink; crash-free plans schedule nothing.
        let p = FaultPlan::ideal(1).with_crash_at_collective(0, 9);
        assert_eq!(crash_schedule(Some(&p), 1), None);
        assert_eq!(crash_schedule(Some(&FaultPlan::ideal(1)), 4), None);
        assert_eq!(crash_schedule(None, 4), None);
    }

    #[test]
    fn planned_join_grows_the_cluster_and_predicts_elastic_speedup() {
        let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let prepared = kadabra_core::prepare(&g, &cfg);
        let cost = CostModel::synthetic(100_000);
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(2, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let static_run = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        let plan = FaultPlan::ideal(0).with_join(1, 2);
        let grown = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        assert_eq!(grown.ranks_joined, 2, "the join point must admit both standbys");
        assert!(grown.rebalance_ns > 0, "the grow window must cost virtual time");
        // The tentpole prediction: doubling the world mid-run beats the
        // static continuation even after paying the newcomers' bootstrap.
        assert!(
            grown.ads_ns < static_run.ads_ns,
            "elastic run must be faster: {} !< {}",
            grown.ads_ns,
            static_run.ads_ns
        );
        // The statistical guarantee survives the membership change.
        let exact = kadabra_baselines_brandes(&g);
        let worst =
            grown.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} across a grow");
        // Bit-reproducible from (plan, seed), like every other DES run.
        let again = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        assert_eq!(grown.scores, again.scores);
        assert_eq!(grown.ads_ns, again.ads_ns);
        assert_eq!(grown.rebalance_ns, again.rebalance_ns);
        // Join-free plans stay bit-identical to the unperturbed run.
        let ideal = FaultPlan::ideal(7);
        let r = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&ideal));
        assert_eq!(r.scores, static_run.scores);
        assert_eq!(r.ads_ns, static_run.ads_ns);
        assert_eq!(r.ranks_joined, 0);
        assert_eq!(r.rebalance_ns, 0);
    }

    #[test]
    fn steal_decouples_round_latency_from_straggler_factor() {
        let (g, cfg, prepared, cost) = setup();
        let spec = ClusterSpec::default();
        let base = SimConfig {
            shape: shape(4, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let stealing = SimConfig { steal: true, ..base };
        let run = |sim: &SimConfig, factor: u64| {
            let plan = FaultPlan::ideal(0).with_straggler(1, factor);
            simulate_perturbed(&g, &cfg, &prepared, sim, &spec, &cost, Some(&plan))
        };
        let (nosteal4, nosteal16) = (run(&base, 4), run(&base, 16));
        let (steal4, steal16) = (run(&stealing, 4), run(&stealing, 16));
        // Stealing moves work and books it; the static runs move nothing.
        assert!(steal4.samples_stolen > 0);
        assert!(steal16.samples_stolen > steal4.samples_stolen);
        assert_eq!(nosteal4.samples_stolen, 0);
        // Stealing beats waiting behind the straggler at every factor.
        assert!(steal4.ads_ns < nosteal4.ads_ns);
        assert!(steal16.ads_ns < nosteal16.ads_ns);
        // The acceptance criterion: without steal, round latency tracks the
        // straggler factor (4× the factor ≈ 4× the run); with steal the
        // straggler keeps only n0/factor, so the factor nearly cancels and
        // the run time plateaus.
        let growth_nosteal = nosteal16.ads_ns as f64 / nosteal4.ads_ns as f64;
        let growth_steal = steal16.ads_ns as f64 / steal4.ads_ns as f64;
        assert!(growth_nosteal > 2.0, "static latency must track the factor: {growth_nosteal}");
        assert!(growth_steal < 1.3, "stolen latency must plateau: {growth_steal}");
        // ε still holds under redistribution, bit-reproducibly.
        let exact = kadabra_baselines_brandes(&g);
        let worst =
            steal16.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} under steal");
        let again = run(&stealing, 16);
        assert_eq!(steal16.scores, again.scores);
        assert_eq!(steal16.ads_ns, again.ads_ns);
        assert_eq!(steal16.samples_stolen, again.samples_stolen);
        // The flag is inert without stragglers: same bits as the plain run.
        let plain = simulate(&g, &cfg, &prepared, &base, &spec, &cost);
        let inert = simulate_perturbed(
            &g,
            &cfg,
            &prepared,
            &stealing,
            &spec,
            &cost,
            Some(&FaultPlan::ideal(3)),
        );
        assert_eq!(plain.scores, inert.scores);
        assert_eq!(plain.ads_ns, inert.ads_ns);
        assert_eq!(inert.samples_stolen, 0);
    }

    #[test]
    fn grow_and_steal_compose_and_land_in_the_event_trace() {
        // A tighter ε keeps the run going past both join rounds.
        let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let prepared = kadabra_core::prepare(&g, &cfg);
        let cost = CostModel::synthetic(100_000);
        let spec = ClusterSpec::default();
        let sim = SimConfig {
            shape: shape(3, 2, 2),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: true,
        };
        let plan = FaultPlan::ideal(0).with_straggler(1, 6).with_join(1, 1).with_join(1, 1);
        let base = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
        assert_eq!(base.ranks_joined, 2, "both join points must fire");
        assert!(base.samples_stolen > 0, "the straggler must shed quota");
        assert!(base.rebalance_ns > 0);
        assert!(base.samples > 0 && base.epochs >= 1);
        // Recording is a pure observer through grows and steals, and the new
        // columns follow the one-schema rule like every other.
        let mut log = EventLog::new();
        let traced =
            simulate_traced(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan), Some(&mut log));
        assert_eq!(base.scores, traced.scores);
        assert_eq!(base.ads_ns, traced.ads_ns);
        let s = log.summary();
        assert_eq!(s.span_total(SpanId::Rebalance), traced.rebalance_ns);
        assert_eq!(s.counter(CounterId::RanksJoined), traced.ranks_joined);
        assert_eq!(s.counter(CounterId::SamplesStolen), traced.samples_stolen);
        assert_eq!(s.counter(CounterId::Samples), traced.samples);
    }

    #[test]
    fn comm_bytes_match_frame_accounting() {
        let (g, cfg, prepared, cost) = setup();
        let sim = SimConfig {
            shape: shape(4, 2, 1),
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        assert_eq!(r.comm_bytes, r.epochs * 4 * (64 + 1) * 8);
    }
}
