//! Cost-model calibration: measures real per-operation costs on this
//! machine so the DES's virtual clock is grounded in reality.

use kadabra_core::{Calibration, KadabraConfig, ThreadSampler};
use kadabra_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Measured costs for one input graph.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Empirical distribution of per-sample durations (ns). The DES draws
    /// from it with replacement, preserving the heavy tail that road
    /// networks exhibit (long BFS for distant pairs).
    pub sample_ns: Vec<u64>,
    /// Stopping-condition evaluation cost per vertex (ns).
    pub check_ns_per_vertex: f64,
    /// Fixed part of a stopping-condition evaluation (ns).
    pub check_ns_fixed: u64,
    /// Measured wall time of the sequential diameter phase (ns).
    pub diameter_ns: u64,
    /// Measured wall time of the sequential δ-fit of the calibration phase (ns).
    pub delta_fit_ns: u64,
}

impl CostModel {
    /// Measures all costs on the real machine. `probes` controls how many
    /// real samples populate the duration distribution (300 is plenty; the
    /// distribution is resampled, not averaged).
    pub fn measure(g: &Graph, cfg: &KadabraConfig, probes: usize) -> CostModel {
        assert!(probes >= 10, "need a minimal probe count");
        let n = g.num_nodes();

        // Diameter phase (also warms the graph into such cache as we have).
        let t0 = Instant::now();
        let (_vd, _) = kadabra_core::phases::diameter_phase(g, cfg);
        let diameter_ns = t0.elapsed().as_nanos() as u64;

        // Per-sample durations.
        let mut sampler = ThreadSampler::new(n, cfg.seed ^ 0xC057, 0, 0);
        let mut sample_ns = Vec::with_capacity(probes);
        let mut counts = vec![0u64; n];
        for _ in 0..probes {
            let t = Instant::now();
            let interior = sampler.sample(g);
            let d = t.elapsed().as_nanos() as u64;
            for &v in interior {
                counts[v as usize] += 1;
            }
            sample_ns.push(d.max(1));
        }

        // Stopping-condition check cost: evaluate the real check on the real
        // counts a few times and fit cost = fixed + per_vertex * n.
        let calibration = Calibration::from_counts(&counts, probes as u64, cfg);
        let reps = 5;
        let t1 = Instant::now();
        for i in 0..reps {
            let stop = kadabra_core::bounds::stopping_condition(
                &counts,
                probes as u64 + i, // vary τ to defeat value caching
                cfg.epsilon,
                u64::MAX / 2,
                &calibration.delta_l,
                &calibration.delta_u,
            );
            std::hint::black_box(stop);
        }
        let check_total = t1.elapsed().as_nanos() as u64 / reps;
        let check_ns_fixed = 200;
        let check_ns_per_vertex =
            ((check_total.saturating_sub(check_ns_fixed)) as f64 / n as f64).max(0.1);

        // δ-fit cost (binary search over n vertices).
        let t2 = Instant::now();
        let _ = Calibration::from_counts(&counts, probes as u64, cfg);
        let delta_fit_ns = t2.elapsed().as_nanos() as u64;

        CostModel { sample_ns, check_ns_per_vertex, check_ns_fixed, diameter_ns, delta_fit_ns }
    }

    /// A synthetic model for unit tests: constant sample duration.
    pub fn synthetic(sample_ns: u64) -> CostModel {
        CostModel {
            sample_ns: vec![sample_ns],
            check_ns_per_vertex: 1.0,
            check_ns_fixed: 100,
            diameter_ns: 1_000_000,
            delta_fit_ns: 100_000,
        }
    }

    /// Draws one sample duration (with replacement).
    pub fn draw_sample_ns(&self, rng: &mut StdRng) -> u64 {
        self.sample_ns[rng.gen_range(0..self.sample_ns.len())]
    }

    /// Mean sample duration, for closed-form phase estimates.
    pub fn mean_sample_ns(&self) -> f64 {
        self.sample_ns.iter().sum::<u64>() as f64 / self.sample_ns.len() as f64
    }

    /// Cost of one stopping-condition evaluation over `n` vertices.
    pub fn check_ns(&self, n: usize) -> u64 {
        self.check_ns_fixed + (self.check_ns_per_vertex * n as f64) as u64
    }

    /// Deterministic RNG for duration draws.
    pub fn duration_rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ 0xD15C_0DE5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::generators::{grid, GridConfig};

    #[test]
    fn measure_produces_sane_costs() {
        let g = grid(GridConfig { rows: 20, cols: 20, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.1, 0.1);
        let m = CostModel::measure(&g, &cfg, 50);
        assert_eq!(m.sample_ns.len(), 50);
        assert!(m.mean_sample_ns() > 0.0);
        assert!(m.check_ns(400) > m.check_ns_fixed);
        assert!(m.diameter_ns > 0);
    }

    #[test]
    fn synthetic_draws_are_constant() {
        let m = CostModel::synthetic(123);
        let mut rng = CostModel::duration_rng(1);
        for _ in 0..10 {
            assert_eq!(m.draw_sample_ns(&mut rng), 123);
        }
    }

    #[test]
    fn draw_respects_distribution_support() {
        let m = CostModel {
            sample_ns: vec![10, 20, 30],
            check_ns_per_vertex: 1.0,
            check_ns_fixed: 0,
            diameter_ns: 0,
            delta_fit_ns: 0,
        };
        let mut rng = CostModel::duration_rng(2);
        for _ in 0..100 {
            let d = m.draw_sample_ns(&mut rng);
            assert!(d == 10 || d == 20 || d == 30);
        }
    }
}
