//! Virtual-time simulation of the "simple" fork-join parallelization
//! (Section III-B of the paper): per round, every thread takes a fixed
//! number of samples, a blocking barrier synchronizes, aggregation and the
//! stopping check run with **no overlap**, then the next round starts.
//!
//! Used by the `exp_ablation_naive` experiment to quantify the paper's claim
//! that such schemes "are known to not scale well, even on shared-memory
//! machines": the barrier charges every round with the *maximum* of the
//! per-thread sums (straggler effect), and aggregation + check are pure
//! serial additions on top.

use crate::calibrate::CostModel;
use crate::sim::SimReport;
use crate::spec::ClusterSpec;
use kadabra_core::bounds::stopping_condition;
use kadabra_core::calibration::calibration_sample_count;
use kadabra_core::phases::scores_from_counts;
use kadabra_core::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use kadabra_core::{KadabraConfig, Prepared};
use kadabra_graph::Graph;

/// Simulates the naive scheme with `threads` shared-memory threads on one
/// node (NUMA penalty applied, matching a single process spanning sockets).
pub fn simulate_naive(
    g: &Graph,
    cfg: &KadabraConfig,
    prepared: &Prepared,
    threads: usize,
    spec: &ClusterSpec,
    cost: &CostModel,
) -> SimReport {
    cfg.validate();
    assert!(threads >= 1);
    let n = g.num_nodes();
    let omega = prepared.omega;
    let n0 = cfg.n0(threads).max(8);
    let numa_mul = spec.numa_sampling_penalty;
    let frame_bytes = (n as u64 + 1) * 8;

    let tau0 = calibration_sample_count(cfg, omega);
    let per_thread = tau0.div_ceil(threads as u64);
    let calibration_ns =
        (per_thread as f64 * cost.mean_sample_ns() * numa_mul) as u64 + cost.delta_fit_ns;

    let mut samplers: Vec<ThreadSampler> =
        (0..threads).map(|t| ThreadSampler::new(n, cfg.seed, 0, ADS_STREAM_OFFSET + t)).collect();
    let mut dur_rng = CostModel::duration_rng(cfg.seed ^ 0x4A1);

    let mut counts = vec![0u64; n];
    let mut tau = 0u64;
    let mut clock_ns = 0u64;
    let mut report = SimReport {
        scores: Vec::new(),
        samples: 0,
        omega,
        epochs: 0,
        ads_ns: 0,
        calibration_ns,
        diameter_ns: cost.diameter_ns,
        barrier_wait_ns: 0,
        reduce_ns: 0,
        transition_ns: 0,
        check_ns: 0,
        comm_bytes: 0,
        total_threads: threads,
        ranks_lost: 0,
        recovery_ns: 0,
        ranks_joined: 0,
        samples_stolen: 0,
        rebalance_ns: 0,
    };

    loop {
        // Each thread takes n0 samples; the round lasts as long as the
        // slowest thread (blocking barrier).
        let mut slowest = 0u64;
        let mut fastest = u64::MAX;
        for sampler in samplers.iter_mut() {
            let mut busy = 0u64;
            for _ in 0..n0 {
                for &v in sampler.sample(g) {
                    counts[v as usize] += 1;
                }
                busy += (cost.draw_sample_ns(&mut dur_rng) as f64 * numa_mul) as u64;
            }
            slowest = slowest.max(busy);
            fastest = fastest.min(busy);
        }
        tau += n0 * threads as u64;
        clock_ns += slowest;
        report.barrier_wait_ns += slowest - fastest; // stragglers' cost

        // Non-overlapped aggregation of T frames + check.
        let agg = spec.aggregate_ns(threads as u64 * frame_bytes);
        let check = cost.check_ns(n);
        clock_ns += agg + check;
        report.reduce_ns += agg;
        report.check_ns += check;
        report.comm_bytes += threads as u64 * frame_bytes;
        report.epochs += 1;

        if stopping_condition(
            &counts,
            tau,
            cfg.epsilon,
            omega,
            &prepared.calibration.delta_l,
            &prepared.calibration.delta_u,
        ) {
            break;
        }
    }

    report.samples = tau;
    report.scores = scores_from_counts(&counts, tau);
    report.ads_ns = clock_ns;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_core::prepare;
    use kadabra_graph::generators::{grid, GridConfig};

    #[test]
    fn naive_sim_terminates_and_accounts() {
        let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.08, 0.1);
        let prepared = prepare(&g, &cfg);
        let cost = CostModel::synthetic(100_000);
        let r = simulate_naive(&g, &cfg, &prepared, 4, &ClusterSpec::default(), &cost);
        assert!(r.samples > 0);
        assert!(r.epochs >= 1);
        assert_eq!(r.samples, r.epochs * cfg.n0(4).max(8) * 4);
        assert!(r.ads_ns > 0);
    }

    #[test]
    fn overlapped_epoch_sim_beats_naive_at_scale() {
        // The headline claim of Section III-B, at equal thread counts on one
        // simulated node.
        use crate::sim::{simulate, ReduceStrategy, SimConfig};
        use kadabra_core::ClusterShape;
        let g = grid(GridConfig { rows: 10, cols: 10, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.06, 0.1);
        let prepared = prepare(&g, &cfg);
        let cost = CostModel::synthetic(50_000);
        let spec = ClusterSpec::default();
        let naive = simulate_naive(&g, &cfg, &prepared, 8, &spec, &cost);
        let sim = SimConfig {
            shape: ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 8 },
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: true,
            steal: false,
        };
        let epoch = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
        // With constant sample costs the straggler penalty vanishes, but the
        // non-overlapped agg+check still taxes every naive round.
        let naive_overhead = naive.reduce_ns + naive.check_ns;
        assert!(naive_overhead > 0);
        assert!(
            naive.ads_ns >= epoch.ads_ns * 9 / 10,
            "naive {} should not beat overlapped {} materially",
            naive.ads_ns,
            epoch.ads_ns
        );
    }
}
