//! **Calibrated discrete-event simulation (DES) of an MPI cluster** running
//! adaptive-sampling betweenness approximation.
//!
//! Why this exists: the paper's headline results (Figs. 2-4, Table II) are
//! wall-clock measurements on a 16-node Omni-Path cluster; this reproduction
//! runs in a container with **one CPU core**, where real multi-node speedups
//! are physically unobservable. The DES reproduces the *performance shape*
//! of the paper's experiments with a hybrid strategy (DESIGN.md §3):
//!
//! * **Compute costs are real measurements.** Before a simulation, the
//!   [`calibrate::CostModel`] measures, on this machine and the actual input
//!   graph: per-sample durations (empirical distribution of real
//!   bidirectional-BFS samples), the per-vertex stopping-check cost, and the
//!   per-byte frame-aggregation cost.
//! * **Samples are real samples.** The simulated threads draw real shortest
//!   paths from the real graph with the same per-thread RNG streams as the
//!   threaded implementation, so epoch counts, sample totals and stopping
//!   decisions are statistically faithful, not synthetic.
//! * **Parallelism and the interconnect are simulated.** Virtual threads
//!   interleave in virtual time; collectives follow a Hockney α-β model with
//!   binomial trees ([`spec::NetworkModel`]); NUMA placement effects follow
//!   the paper's reported 20-30% sampling penalty for sockets-spanning
//!   processes (Section IV-E).
//!
//! The simulator executes the paper's **Algorithm 2** control flow (epoch
//! framework + hierarchical aggregation + `Ibarrier`-then-blocking-`Reduce`)
//! event by event, and can switch to the `MPI_Ireduce` and fully-blocking
//! variants for the Section IV-F ablation.

pub mod calibrate;
pub mod sim;
pub mod sim_naive;
pub mod spec;

pub use calibrate::CostModel;
pub use sim::{
    simulate, simulate_perturbed, simulate_traced, ReduceStrategy, SimConfig, SimReport,
};
pub use sim_naive::simulate_naive;
pub use spec::{ClusterSpec, NetworkModel};
