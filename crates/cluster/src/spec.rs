//! Hardware description of the simulated cluster.

/// Interconnect model: Hockney α-β with binomial-tree collectives.
///
/// A message of `m` bytes costs `α + m/B`; a reduction or broadcast over `k`
/// participants runs `⌈log₂ k⌉` rounds. Defaults approximate the paper's
/// Intel Omni-Path fabric (100 Gbit/s class: α ≈ 2 µs, B ≈ 10 GB/s
/// effective).
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Per-message latency in nanoseconds.
    pub alpha_ns: u64,
    /// Bandwidth in bytes per nanosecond (= GB/s).
    pub bytes_per_ns: f64,
    /// Slowdown factor of `MPI_Ireduce` progress relative to a blocking
    /// reduce (Section IV-F: "MPI_Ireduce often progresses much slowlier
    /// than MPI_Reduce in common MPI implementations").
    pub ireduce_progress_penalty: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel { alpha_ns: 2_000, bytes_per_ns: 10.0, ireduce_progress_penalty: 4.0 }
    }
}

impl NetworkModel {
    /// Point-to-point cost of an `m`-byte message.
    pub fn message_ns(&self, bytes: u64) -> u64 {
        self.alpha_ns + (bytes as f64 / self.bytes_per_ns) as u64
    }

    /// Binomial-tree collective (reduce or broadcast) over `k` participants
    /// moving `bytes` per hop.
    pub fn tree_collective_ns(&self, k: usize, bytes: u64) -> u64 {
        let rounds = (k.max(1) as f64).log2().ceil() as u64;
        rounds * self.message_ns(bytes)
    }

    /// Barrier over `k` participants after the last arrival (payload-free
    /// dissemination).
    pub fn barrier_ns(&self, k: usize) -> u64 {
        let rounds = (k.max(1) as f64).log2().ceil() as u64;
        rounds * self.alpha_ns
    }
}

/// The machine the paper evaluates on: 16 compute nodes, two Xeon Gold 6126
/// sockets (12 cores each) per node, 192 GiB RAM, Omni-Path.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// NUMA sockets per compute node.
    pub sockets_per_node: usize,
    /// Cores (= max sampling threads) per socket.
    pub cores_per_socket: usize,
    /// Interconnect.
    pub network: NetworkModel,
    /// Multiplier on per-sample cost when one process spans all sockets of a
    /// node (remote-socket cache misses during BFS). The paper measured
    /// launching one process per socket to be "20-30%" faster, so the
    /// spanning penalty defaults to 1.25.
    pub numa_sampling_penalty: f64,
    /// Intra-node memory bandwidth for frame aggregation, bytes/ns.
    pub memory_bytes_per_ns: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            sockets_per_node: 2,
            cores_per_socket: 12,
            network: NetworkModel::default(),
            numa_sampling_penalty: 1.25,
            memory_bytes_per_ns: 8.0,
        }
    }
}

impl ClusterSpec {
    /// Cores per compute node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Cost of folding `bytes` of state frames within a process/node.
    pub fn aggregate_ns(&self, bytes: u64) -> u64 {
        // Read + write per byte, plus a small fixed overhead.
        500 + (2.0 * bytes as f64 / self.memory_bytes_per_ns) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_combines_latency_and_bandwidth() {
        let net =
            NetworkModel { alpha_ns: 1000, bytes_per_ns: 10.0, ireduce_progress_penalty: 1.0 };
        assert_eq!(net.message_ns(0), 1000);
        assert_eq!(net.message_ns(10_000), 1000 + 1000);
    }

    #[test]
    fn tree_rounds_are_logarithmic() {
        let net = NetworkModel { alpha_ns: 100, bytes_per_ns: 1.0, ireduce_progress_penalty: 1.0 };
        assert_eq!(net.tree_collective_ns(1, 0), 0);
        assert_eq!(net.tree_collective_ns(2, 0), 100);
        assert_eq!(net.tree_collective_ns(8, 0), 300);
        assert_eq!(net.tree_collective_ns(9, 0), 400);
        assert_eq!(net.barrier_ns(16), 400);
    }

    #[test]
    fn default_spec_matches_paper_hardware() {
        let spec = ClusterSpec::default();
        assert_eq!(spec.cores_per_node(), 24);
        assert!(spec.numa_sampling_penalty > 1.0);
    }

    #[test]
    fn aggregation_cost_scales_with_bytes() {
        let spec = ClusterSpec::default();
        assert!(spec.aggregate_ns(1 << 20) > spec.aggregate_ns(1 << 10));
    }
}
