//! Failure-injection tests for the discrete-event simulator: pathological
//! cost models and degenerate cluster shapes must neither wedge the event
//! loop nor corrupt the statistical results.

use kadabra_cluster::{
    simulate, simulate_perturbed, ClusterSpec, CostModel, NetworkModel, ReduceStrategy, SimConfig,
};
use kadabra_core::{prepare, ClusterShape, KadabraConfig};
use kadabra_graph::generators::{grid, GridConfig};
use kadabra_mpisim::FaultPlan;

fn setup() -> (kadabra_graph::Graph, KadabraConfig, kadabra_core::Prepared) {
    let g = grid(GridConfig { rows: 7, cols: 7, diagonal_prob: 0.0, seed: 0 });
    let cfg = KadabraConfig::new(0.1, 0.1);
    let prepared = prepare(&g, &cfg);
    (g, cfg, prepared)
}

fn shape(ranks: usize, rpn: usize, tpr: usize) -> SimConfig {
    SimConfig {
        shape: ClusterShape { ranks, ranks_per_node: rpn, threads_per_rank: tpr },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: false,
        steal: false,
    }
}

#[test]
fn extreme_heavy_tail_sample_distribution() {
    let (g, cfg, prepared) = setup();
    // 1 µs samples with a rare 100 ms straggler: the epoch machinery must
    // still make progress and terminate.
    let cost = CostModel {
        sample_ns: {
            let mut v = vec![1_000u64; 99];
            v.push(100_000_000);
            v
        },
        check_ns_per_vertex: 2.0,
        check_ns_fixed: 100,
        diameter_ns: 1_000,
        delta_fit_ns: 1_000,
    };
    let r = simulate(&g, &cfg, &prepared, &shape(4, 2, 3), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert!(r.epochs >= 1);
    assert!(r.ads_ns > 0);
}

#[test]
fn glacial_network_still_terminates() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(10_000);
    // 1 ms latency, ~1 MB/s bandwidth: rounds are entirely latency-bound.
    let spec = ClusterSpec {
        network: NetworkModel {
            alpha_ns: 1_000_000,
            bytes_per_ns: 0.001,
            ireduce_progress_penalty: 4.0,
        },
        ..ClusterSpec::default()
    };
    let slow = simulate(&g, &cfg, &prepared, &shape(8, 2, 2), &spec, &cost);
    let fast = simulate(&g, &cfg, &prepared, &shape(8, 2, 2), &ClusterSpec::default(), &cost);
    assert!(slow.samples > 0);
    assert!(
        slow.ads_ns > fast.ads_ns,
        "a glacial network must cost virtual time: {} !> {}",
        slow.ads_ns,
        fast.ads_ns
    );
}

#[test]
fn single_thread_cluster_degenerates_to_sequential_shape() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(50_000);
    let r = simulate(&g, &cfg, &prepared, &shape(1, 1, 1), &ClusterSpec::default(), &cost);
    // One rank: the "barrier" completes instantly; the only wait is the
    // polling granularity (the thread notices at its next sample boundary),
    // so at most one sample duration per epoch.
    assert!(
        r.barrier_wait_ns <= r.epochs * 50_000,
        "barrier wait {} exceeds polling granularity over {} epochs",
        r.barrier_wait_ns,
        r.epochs
    );
    assert!(r.samples > 0);
}

#[test]
fn ragged_node_assignment() {
    // 5 ranks over nodes of 2: last node hosts a single rank.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(20_000);
    let r = simulate(&g, &cfg, &prepared, &shape(5, 2, 2), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert!(r.epochs >= 1);
}

#[test]
fn zero_cost_check_and_aggregation() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel {
        sample_ns: vec![10_000],
        check_ns_per_vertex: 0.0,
        check_ns_fixed: 0,
        diameter_ns: 0,
        delta_fit_ns: 0,
    };
    let r = simulate(&g, &cfg, &prepared, &shape(2, 2, 2), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert_eq!(r.diameter_ns, 0);
}

#[test]
fn rank_crash_under_every_strategy_and_victim_still_terminates() {
    // Killing any rank (including the root, which the DES remaps to a
    // timing-equivalent peer) in any reduce strategy must shrink the
    // cluster, sacrifice exactly one round, and still terminate with sane
    // scores.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(20_000);
    let spec = ClusterSpec::default();
    for strategy in [
        ReduceStrategy::IbarrierThenBlockingReduce,
        ReduceStrategy::Ireduce,
        ReduceStrategy::FullyBlocking,
    ] {
        for victim in 0..4 {
            let sim = SimConfig { strategy, ..shape(4, 2, 2) };
            let plan = FaultPlan::ideal(7).with_crash_at_collective(victim, 4);
            let r = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
            assert_eq!(r.ranks_lost, 1, "{strategy:?} victim {victim}");
            assert!(r.recovery_ns > 0, "{strategy:?} victim {victim}");
            assert!(r.samples > 0, "{strategy:?} victim {victim}");
            for s in &r.scores {
                assert!((0.0..=1.0).contains(s), "{strategy:?} victim {victim}");
            }
        }
    }
}

#[test]
fn crash_emptying_a_node_drops_its_leader_from_the_ring() {
    // Shape 3×(2 per node): node 1 hosts only rank 2. Killing it must
    // remove a whole node (and its leader) without wedging the barrier.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(20_000);
    // Join 4 maps to round 0 — the only round this loose-ε run is
    // guaranteed to reach.
    let plan = FaultPlan::ideal(3).with_crash_at_collective(2, 4);
    let r = simulate_perturbed(
        &g,
        &cfg,
        &prepared,
        &shape(3, 2, 2),
        &ClusterSpec::default(),
        &cost,
        Some(&plan),
    );
    assert_eq!(r.ranks_lost, 1);
    assert!(r.samples > 0);
    assert!(r.epochs >= 1);
}

#[test]
fn crash_scheduled_past_termination_never_fires() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(20_000);
    let plan = FaultPlan::ideal(5).with_crash_at_collective(1, 100_000);
    let sim = shape(4, 2, 2);
    let spec = ClusterSpec::default();
    let r = simulate_perturbed(&g, &cfg, &prepared, &sim, &spec, &cost, Some(&plan));
    assert_eq!(r.ranks_lost, 0);
    assert_eq!(r.recovery_ns, 0);
    // And it reproduces the unperturbed run exactly.
    let base = simulate(&g, &cfg, &prepared, &sim, &spec, &cost);
    assert_eq!(r.scores, base.scores);
    assert_eq!(r.ads_ns, base.ads_ns);
}

#[test]
fn all_strategies_agree_on_sample_semantics_under_stress() {
    // Same seeds + same cost model: the three strategies may take different
    // numbers of samples (different stopping times) but all must satisfy
    // the score invariants.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(5_000);
    for strategy in [
        ReduceStrategy::IbarrierThenBlockingReduce,
        ReduceStrategy::Ireduce,
        ReduceStrategy::FullyBlocking,
    ] {
        let sim = SimConfig { strategy, ..shape(6, 2, 4) };
        let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        assert!(r.samples > 0, "{strategy:?}");
        for s in &r.scores {
            assert!((0.0..=1.0).contains(s), "{strategy:?}");
        }
    }
}
