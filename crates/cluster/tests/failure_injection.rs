//! Failure-injection tests for the discrete-event simulator: pathological
//! cost models and degenerate cluster shapes must neither wedge the event
//! loop nor corrupt the statistical results.

use kadabra_cluster::{simulate, ClusterSpec, CostModel, NetworkModel, ReduceStrategy, SimConfig};
use kadabra_core::{prepare, ClusterShape, KadabraConfig};
use kadabra_graph::generators::{grid, GridConfig};

fn setup() -> (kadabra_graph::Graph, KadabraConfig, kadabra_core::Prepared) {
    let g = grid(GridConfig { rows: 7, cols: 7, diagonal_prob: 0.0, seed: 0 });
    let cfg = KadabraConfig::new(0.1, 0.1);
    let prepared = prepare(&g, &cfg);
    (g, cfg, prepared)
}

fn shape(ranks: usize, rpn: usize, tpr: usize) -> SimConfig {
    SimConfig {
        shape: ClusterShape { ranks, ranks_per_node: rpn, threads_per_rank: tpr },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: false,
    }
}

#[test]
fn extreme_heavy_tail_sample_distribution() {
    let (g, cfg, prepared) = setup();
    // 1 µs samples with a rare 100 ms straggler: the epoch machinery must
    // still make progress and terminate.
    let cost = CostModel {
        sample_ns: {
            let mut v = vec![1_000u64; 99];
            v.push(100_000_000);
            v
        },
        check_ns_per_vertex: 2.0,
        check_ns_fixed: 100,
        diameter_ns: 1_000,
        delta_fit_ns: 1_000,
    };
    let r = simulate(&g, &cfg, &prepared, &shape(4, 2, 3), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert!(r.epochs >= 1);
    assert!(r.ads_ns > 0);
}

#[test]
fn glacial_network_still_terminates() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(10_000);
    // 1 ms latency, ~1 MB/s bandwidth: rounds are entirely latency-bound.
    let spec = ClusterSpec {
        network: NetworkModel {
            alpha_ns: 1_000_000,
            bytes_per_ns: 0.001,
            ireduce_progress_penalty: 4.0,
        },
        ..ClusterSpec::default()
    };
    let slow = simulate(&g, &cfg, &prepared, &shape(8, 2, 2), &spec, &cost);
    let fast = simulate(&g, &cfg, &prepared, &shape(8, 2, 2), &ClusterSpec::default(), &cost);
    assert!(slow.samples > 0);
    assert!(
        slow.ads_ns > fast.ads_ns,
        "a glacial network must cost virtual time: {} !> {}",
        slow.ads_ns,
        fast.ads_ns
    );
}

#[test]
fn single_thread_cluster_degenerates_to_sequential_shape() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(50_000);
    let r = simulate(&g, &cfg, &prepared, &shape(1, 1, 1), &ClusterSpec::default(), &cost);
    // One rank: the "barrier" completes instantly; the only wait is the
    // polling granularity (the thread notices at its next sample boundary),
    // so at most one sample duration per epoch.
    assert!(
        r.barrier_wait_ns <= r.epochs * 50_000,
        "barrier wait {} exceeds polling granularity over {} epochs",
        r.barrier_wait_ns,
        r.epochs
    );
    assert!(r.samples > 0);
}

#[test]
fn ragged_node_assignment() {
    // 5 ranks over nodes of 2: last node hosts a single rank.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(20_000);
    let r = simulate(&g, &cfg, &prepared, &shape(5, 2, 2), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert!(r.epochs >= 1);
}

#[test]
fn zero_cost_check_and_aggregation() {
    let (g, cfg, prepared) = setup();
    let cost = CostModel {
        sample_ns: vec![10_000],
        check_ns_per_vertex: 0.0,
        check_ns_fixed: 0,
        diameter_ns: 0,
        delta_fit_ns: 0,
    };
    let r = simulate(&g, &cfg, &prepared, &shape(2, 2, 2), &ClusterSpec::default(), &cost);
    assert!(r.samples > 0);
    assert_eq!(r.diameter_ns, 0);
}

#[test]
fn all_strategies_agree_on_sample_semantics_under_stress() {
    // Same seeds + same cost model: the three strategies may take different
    // numbers of samples (different stopping times) but all must satisfy
    // the score invariants.
    let (g, cfg, prepared) = setup();
    let cost = CostModel::synthetic(5_000);
    for strategy in [
        ReduceStrategy::IbarrierThenBlockingReduce,
        ReduceStrategy::Ireduce,
        ReduceStrategy::FullyBlocking,
    ] {
        let sim = SimConfig { strategy, ..shape(6, 2, 4) };
        let r = simulate(&g, &cfg, &prepared, &sim, &ClusterSpec::default(), &cost);
        assert!(r.samples > 0, "{strategy:?}");
        for s in &r.scores {
            assert!((0.0..=1.0).contains(s), "{strategy:?}");
        }
    }
}
