//! Chaos-observed variants of Algorithms 1 and 2: the paper's MPI drivers
//! executed under a deterministic [`FaultPlan`], instrumented with the
//! invariant probes the chaos conformance suite asserts on.
//!
//! # What "observed" changes
//!
//! The plain drivers ([`crate::kadabra_mpi_flat`],
//! [`crate::kadabra_epoch_mpi`]) let every overlap loop run free: how many
//! samples a rank squeezes in while a non-blocking collective progresses
//! depends on OS scheduling, so two runs produce different (all correct)
//! scores. The observed variants close that door so perturbed runs are
//! **bit-reproducible** from `(plan, seed)`:
//!
//! * every non-blocking request polls deterministically (the engine's
//!   logical clock — see `kadabra_mpisim`'s `fault` module),
//! * epoch-framework workers take an exact plan-derived per-epoch sample
//!   quota instead of free-running,
//! * thread 0 overlaps each transition wait with a plan-derived sample
//!   count, then spin-waits without sampling.
//!
//! The algorithms' structure — what is communicated, when rounds end, how
//! the stopping rule sees aggregated state — is unchanged; only the
//! *degrees of freedom the paper already treats as adversarial* (who is
//! slow, by how much) move from the OS into the plan. Plans may also
//! schedule **rank crashes** (`FaultPlan::with_crash_at_collective` /
//! `with_crash_after_polls`): the observed drivers then exercise the full
//! shrink-and-continue recovery of DESIGN.md §10 — still bit-reproducibly,
//! because the crash coordinates, the failure detection, and every
//! post-recovery schedule are functions of the plan.
//!
//! # Probes
//!
//! With [`ChaosOptions::probe`], every rank reports its global round to a
//! shared [`CrossEpochProbe`], which audits the paper's Section IV-C claim
//! (cross-process epoch gap ≤ 1 past every completed reduction point);
//! ranks lost to crashes are retired from the audit when the survivors
//! shrink. With [`ChaosOptions::conservation`], every round runs one extra
//! all-reduce of `[Σc̃, τ]` pairs — the frames just sent *and* the
//! cumulative recovery ledgers — and the root asserts both that its fold
//! absorbed exactly what was sent and that its global state equals the sum
//! of all live ledgers: no sample is lost, double-counted, or resurrected
//! anywhere in the reduce chain **or across crash recoveries**. On
//! violation the panic message carries the plan summary, which is all that
//! is needed to replay the failure.

use crate::config::{ClusterShape, KadabraConfig};
use crate::phases::{
    calibration_samples_for_thread, diameter_phase, fold_and_check, scores_from_counts,
};
use crate::recovery::{shrink_and_rebuild, SampleLedger};
use crate::result::BetweennessResult;
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration, epoch_mpi::hierarchical_comms};
use kadabra_epoch::{CrossEpochProbe, EpochFramework};
use kadabra_graph::Graph;
use kadabra_mpisim::{CommError, Communicator, FaultPlan, Universe};
use kadabra_telemetry::{CounterId, SpanId, Summary, Telemetry};
use std::sync::Arc;

/// Event capacity per `(rank, thread)` recorder when a chaos run traces.
const CHAOS_TRACE_CAPACITY: usize = 1 << 14;

/// Configuration of a chaos-observed run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// The deterministic fault plan the simulated world runs under.
    pub plan: FaultPlan,
    /// Audit the cross-process epoch-distance invariant every round.
    pub probe: bool,
    /// Run the per-round aggregated-sample conservation check.
    pub conservation: bool,
    /// Buffer a deterministic event trace (logical clock only — no wall
    /// readings) in addition to the always-on phase totals. Toggling this
    /// must not change the computation; `tests/determinism_matrix.rs`
    /// asserts scores are bit-identical either way.
    pub telemetry: bool,
}

impl ChaosOptions {
    /// Everything on, under `plan` — what the conformance suite uses.
    pub fn all(plan: FaultPlan) -> Self {
        ChaosOptions { plan, probe: true, conservation: true, telemetry: false }
    }

    /// Enables the deterministic event trace.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }
}

/// The registry a chaos run records into: logical-clock-only (wall readings
/// would differ between reruns of the same plan), buffered only when the
/// caller asked for a trace.
fn telemetry_for(opts: &ChaosOptions) -> Telemetry {
    if opts.telemetry {
        Telemetry::deterministic(CHAOS_TRACE_CAPACITY)
    } else {
        Telemetry::deterministic(0)
    }
}

/// Outcome of a chaos-observed run: the algorithm's result plus what the
/// probes saw.
#[derive(Debug)]
pub struct ChaosReport {
    /// The surviving root's betweenness result, exactly as the plain driver
    /// returns it (rank 0's, unless a crash promoted a new root).
    pub result: BetweennessResult,
    /// Largest cross-process round gap any completion event observed
    /// (0 when the probe was disabled).
    pub max_epoch_gap: u32,
    /// Completion events the epoch probe audited.
    pub probe_observations: u64,
    /// Audits that violated the gap-≤-1 invariant (must be 0).
    pub probe_violations: u64,
    /// Rounds the conservation check covered.
    pub conservation_rounds: u64,
    /// Ranks excluded by communicator shrinks, as seen by the surviving
    /// root (0 for a crash-free plan).
    pub ranks_lost: u64,
    /// Shrink-and-rebuild recoveries the surviving root performed.
    pub recoveries: u64,
    /// The plan's one-line reproduction handle (print this on failure).
    pub plan_summary: String,
    /// Telemetry phase breakdown of the run. Chaos runs record on the
    /// logical clock only, so the breakdown (tick durations, sample /
    /// epoch / byte counters) is itself bit-reproducible from the plan.
    pub phases: Summary,
}

impl ChaosReport {
    /// Panics unless every enabled probe came back clean — the single
    /// assertion a chaos test needs after a perturbed run.
    pub fn assert_invariants(&self) {
        assert_eq!(
            self.probe_violations, 0,
            "epoch-distance invariant violated (max gap {}) [{}]",
            self.max_epoch_gap, self.plan_summary
        );
        assert!(
            self.max_epoch_gap <= 1,
            "cross-process epoch gap {} > 1 [{}]",
            self.max_epoch_gap,
            self.plan_summary
        );
    }
}

/// What one observed rank hands back to the driver entry point.
struct ObservedOutcome {
    result: Option<BetweennessResult>,
    rounds: u64,
    ranks_lost: u64,
    recoveries: u64,
    is_leader: bool,
    local_bytes: u64,
    leader_bytes: u64,
    world_bytes: u64,
}

impl ObservedOutcome {
    /// The outcome of a rank whose scheduled crash fired.
    fn dead() -> Self {
        ObservedOutcome {
            result: None,
            rounds: 0,
            ranks_lost: 0,
            recoveries: 0,
            is_leader: false,
            local_bytes: 0,
            leader_bytes: 0,
            world_bytes: 0,
        }
    }
}

/// Panic shared by both observed drivers for setup-phase communicator
/// failures that are not this rank's own crash (crash corpora schedule
/// crashes past the setup collectives).
fn setup_panic(e: CommError) -> ! {
    panic!("rank failure during setup phases (schedule crashes in the adaptive phase): {e}")
}

// ---------------------------------------------------------------------------
// Algorithm 1, observed
// ---------------------------------------------------------------------------

/// Runs **Algorithm 1** (`kadabra_mpi_flat`) under a fault plan, with
/// probes. Bit-reproducible: identical `(g, cfg, ranks, opts)` give
/// identical scores — including runs whose plan crashes ranks mid-flight.
pub fn kadabra_mpi_flat_observed(
    g: &Graph,
    cfg: &KadabraConfig,
    ranks: usize,
    opts: &ChaosOptions,
) -> ChaosReport {
    cfg.validate();
    assert!(ranks >= 1);
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let probe = opts.probe.then(|| Arc::new(CrossEpochProbe::new(ranks)));
    let tel = telemetry_for(opts);
    let outcomes = Universe::run_with_plan(ranks, opts.plan.clone(), |comm| {
        flat_rank_main(g, cfg, comm, opts, probe.as_deref(), &tel)
    });
    let root = outcomes
        .into_iter()
        .find(|o| o.result.is_some())
        // xtask: allow(unwrap) — exactly one rank (the surviving root)
        // returns Some.
        .expect("the surviving root produces the result");
    finish_report(root, probe, opts, &tel)
}

/// Per-rank body of observed Algorithm 1. Mirrors `mpi::rank_main`
/// (including shrink-and-continue recovery); the deviations are commented.
fn flat_rank_main(
    g: &Graph,
    cfg: &KadabraConfig,
    comm: Communicator,
    opts: &ChaosOptions,
    probe: Option<&CrossEpochProbe>,
    tel: &Telemetry,
) -> ObservedOutcome {
    let n = g.num_nodes();
    let my_world = comm.world_rank();
    let ranks = comm.size();
    let w = tel.writer(my_world as u32, 0);
    comm.set_tracer(w.clone());

    let sp = w.begin(SpanId::Diameter);
    let vd_bcast = if comm.rank() == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        comm.bcast_u64(0, Some(vd as u64))
    } else {
        comm.bcast_u64(0, None)
    };
    let vd = match vd_bcast {
        Ok(v) => v as u32,
        Err(e) if e.failed_rank() == Some(my_world) => return ObservedOutcome::dead(),
        Err(e) => setup_panic(e),
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let sp = w.begin(SpanId::Calibration);
    let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, 0);
    let mut counts = vec![0u64; n + 1];
    let taken =
        calibration_samples_for_thread(g, &mut sampler, &mut counts[..n], cfg, omega, ranks);
    counts[n] = taken;
    let total = match comm.allreduce_sum_u64(&counts) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return ObservedOutcome::dead(),
        Err(e) => setup_panic(e),
    };
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp);

    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let mut comm = comm;
    let mut n0 = cfg.n0(ranks);
    let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, ADS_STREAM_OFFSET);
    let mut s_loc = vec![0u64; n + 1];
    let mut s_global = vec![0u64; n + 1];
    let mut ledger = SampleLedger::new(n);
    let mut rounds = 0u64;
    let mut ranks_lost = 0u64;
    let mut recoveries = 0u64;
    let mut dead = false;

    let sample_into = |frame: &mut Vec<u64>, sampler: &mut ThreadSampler| {
        for &v in sampler.sample(g) {
            frame[v as usize] += 1;
        }
        frame[n] += 1;
    };

    let mut round = 0u32;
    loop {
        w.set_epoch(round);
        // Probe: the store must precede this round's first collective join
        // (see the probe's happens-before argument).
        if let Some(p) = probe {
            p.begin_round(my_world, round);
        }
        let round_result = (|| -> Result<bool, CommError> {
            let sp = w.begin(SpanId::SampleBatch);
            for _ in 0..n0 {
                sample_into(&mut s_loc, &mut sampler);
            }
            w.end(sp);
            let snapshot = std::mem::replace(&mut s_loc, vec![0u64; n + 1]);
            let mut overlapped = 0u64;
            // Deterministic overlap: under the plan, test() returns false a
            // plan-derived number of times, then resolves (or fails — also
            // at a plan-derived poll).
            let sp = w.begin(SpanId::IreduceWait);
            let mut req = comm.ireduce_sum_u64(0, &snapshot)?;
            while !req.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::BytesReduced, snapshot.len() as u64 * 8);
            // Observed completion: checkpoint the frame (see mpi::rank_main).
            ledger.confirm(&snapshot);

            let mut d = 0u64;
            let mut folded = [0u64; 2]; // root: [Σc̃, τ] absorbed this round
            if comm.rank() == 0 {
                // xtask: allow(unwrap) — the request completed (test() was
                // true) and this rank is the reduction root, so both layers
                // are Some.
                let reduced = req.into_result().unwrap().expect("root receives reduction");
                folded = [reduced[..n].iter().sum(), reduced[n]];
                let sp = w.begin(SpanId::Check);
                let stop =
                    fold_and_check(&mut s_global, &reduced, cfg.epsilon, omega, &calibration);
                w.end(sp);
                d = u64::from(stop);
            }

            // Conservation: what all ranks sent this round must equal what
            // the root's fold absorbed, and — the recovery invariant — the
            // root's global state must equal the sum of all live ledgers.
            if opts.conservation {
                let sent = [
                    snapshot[..n].iter().sum::<u64>(),
                    snapshot[n],
                    ledger.frame()[..n].iter().sum::<u64>(),
                    ledger.frame()[n],
                ];
                let totals = comm.allreduce_sum_u64(&sent)?;
                if comm.rank() == 0 {
                    assert_eq!(
                        [totals[0], totals[1]],
                        folded,
                        "sample conservation violated at round {round} [{}]",
                        opts.plan.summary()
                    );
                    assert_eq!(
                        [totals[2], totals[3]],
                        [s_global[..n].iter().sum::<u64>(), s_global[n]],
                        "ledger conservation violated at round {round} [{}]",
                        opts.plan.summary()
                    );
                }
                rounds += 1;
            }

            let sp = w.begin(SpanId::BcastStop);
            let mut breq = comm.ibcast_u64(0, (comm.rank() == 0).then_some(d))?;
            while !breq.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::Samples, n0 + overlapped);
            w.count(CounterId::Epochs, 1);
            // xtask: allow(unwrap) — test() returned true above.
            Ok(breq.into_result().unwrap() != 0)
        })();

        match round_result {
            Ok(stop) => {
                // The round's full reduction/broadcast chain resolved:
                // audit the cross-process gap.
                if let Some(p) = probe {
                    p.complete_round(my_world, round);
                }
                if stop {
                    break;
                }
                round += 1;
            }
            Err(CommError::RankFailed { rank }) if rank == my_world => {
                dead = true;
                break;
            }
            Err(CommError::RankFailed { .. }) => {
                let prev_members = comm.members().to_vec();
                match shrink_and_rebuild(&comm, &ledger, &w) {
                    Ok((small, rebuilt)) => {
                        recoveries += 1;
                        ranks_lost += (prev_members.len() - small.size()) as u64;
                        if let Some(p) = probe {
                            for m in prev_members.iter().filter(|m| !small.members().contains(m)) {
                                p.retire(*m);
                            }
                        }
                        comm = small;
                        s_global = rebuilt;
                        n0 = cfg.n0(comm.size());
                        round += 1; // the failed round's frames are discarded
                    }
                    Err(e) if e.failed_rank() == Some(my_world) => {
                        dead = true;
                        break;
                    }
                    Err(e) => panic!("unrecoverable communicator failure during recovery: {e}"),
                }
            }
            Err(e) => panic!("unrecoverable communicator failure: {e}"),
        }
    }
    w.end(sp_ads);
    if dead {
        return ObservedOutcome::dead();
    }

    let result = (comm.rank() == 0).then(|| {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        stats.comm_bytes = comm.bytes_transferred();
        BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        }
    });
    ObservedOutcome {
        result,
        rounds,
        ranks_lost,
        recoveries,
        is_leader: false,
        local_bytes: 0,
        leader_bytes: 0,
        world_bytes: 0,
    }
}

// ---------------------------------------------------------------------------
// Algorithm 2, observed
// ---------------------------------------------------------------------------

/// Runs **Algorithm 2** (`kadabra_epoch_mpi`) under a fault plan, with
/// probes. Bit-reproducible: identical `(g, cfg, shape, opts)` give
/// identical scores — including worker-thread sample placement, which the
/// plain driver leaves to the scheduler, and crash recovery schedules.
pub fn kadabra_epoch_mpi_observed(
    g: &Graph,
    cfg: &KadabraConfig,
    shape: ClusterShape,
    opts: &ChaosOptions,
) -> ChaosReport {
    cfg.validate();
    shape.validate();
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let probe = opts.probe.then(|| Arc::new(CrossEpochProbe::new(shape.ranks)));
    let tel = telemetry_for(opts);
    let outcomes = Universe::run_with_plan(shape.ranks, opts.plan.clone(), |comm| {
        epoch_rank_main(g, cfg, shape, comm, opts, probe.as_deref(), &tel)
    });
    // Byte accounting as in the plain driver: node-local engines once per
    // node (via the node's final leader), shared engines by their maximum
    // (identical at every surviving member).
    let comm_bytes: u64 =
        outcomes.iter().filter(|o| o.is_leader).map(|o| o.local_bytes).sum::<u64>()
            + outcomes.iter().map(|o| o.leader_bytes).fold(0, u64::max)
            + outcomes.iter().map(|o| o.world_bytes).fold(0, u64::max);
    let mut root = outcomes
        .into_iter()
        .find(|o| o.result.is_some())
        // xtask: allow(unwrap) — exactly one rank (the surviving root)
        // returns Some.
        .expect("the surviving root produces the result");
    if let Some(r) = root.result.as_mut() {
        r.stats.comm_bytes = comm_bytes;
    }
    finish_report(root, probe, opts, &tel)
}

/// Per-rank body of observed Algorithm 2. Mirrors `epoch_mpi::rank_main`
/// (including recovery with hierarchy re-splitting); the deviations
/// (deterministic worker quotas, deterministic transition overlap, probes)
/// are commented.
fn epoch_rank_main(
    g: &Graph,
    cfg: &KadabraConfig,
    shape: ClusterShape,
    world: Communicator,
    opts: &ChaosOptions,
    probe: Option<&CrossEpochProbe>,
    tel: &Telemetry,
) -> ObservedOutcome {
    let n = g.num_nodes();
    let my_world = world.world_rank();
    let threads = shape.threads_per_rank;
    let plan = &opts.plan;
    let w = tel.writer(my_world as u32, 0);
    // Attach before splitting so the derived communicators inherit it.
    world.set_tracer(w.clone());

    let (local, is_leader, leaders) = match hierarchical_comms(&world, shape) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return ObservedOutcome::dead(),
        Err(e) => setup_panic(e),
    };

    let sp = w.begin(SpanId::Diameter);
    let vd_bcast = if world.rank() == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        world.bcast_u64(0, Some(vd as u64))
    } else {
        world.bcast_u64(0, None)
    };
    let vd = match vd_bcast {
        Ok(v) => v as u32,
        Err(e) if e.failed_rank() == Some(my_world) => return ObservedOutcome::dead(),
        Err(e) => setup_panic(e),
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let sp_calib = w.begin(SpanId::Calibration);
    let total_threads = shape.total_threads();
    let mut calib = vec![0u64; n + 1];
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, t);
                    let mut counts = vec![0u64; n];
                    let taken = calibration_samples_for_thread(
                        g,
                        &mut sampler,
                        &mut counts,
                        cfg,
                        omega,
                        total_threads,
                    );
                    (counts, taken)
                })
            })
            .collect();
        for h in handles {
            // xtask: allow(unwrap) — a sampler-thread panic is a bug; abort
            // the computation with its message.
            let (counts, taken) = h.join().expect("calibration worker");
            for (a, c) in calib.iter_mut().zip(counts) {
                *a += c;
            }
            calib[n] += taken;
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("calibration scope");
    let total = match world.allreduce_sum_u64(&calib) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return ObservedOutcome::dead(),
        Err(e) => setup_panic(e),
    };
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp_calib);

    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let fw = EpochFramework::new(n, threads);
    let mut world = world;
    let mut local = local;
    let mut leaders = leaders;
    let mut is_leader = is_leader;
    let mut n0 = cfg.n0(total_threads);
    let mut s_global = vec![0u64; n + 1];
    let mut ledger = SampleLedger::new(n);
    let mut rounds = 0u64;
    let mut ranks_lost = 0u64;
    let mut recoveries = 0u64;
    let mut local_bytes_acc = 0u64;
    let mut leader_bytes_acc = 0u64;
    let mut dead = false;
    // Worker quotas are derived from the launch-time n0; thread 0's own
    // batch rescales after a shrink, which is enough to keep the schedule a
    // pure function of the plan.
    let quota_n0 = n0;

    crossbeam::scope(|s| {
        // Workers: instead of free-running (sample count per epoch decided
        // by the scheduler), each takes an exact plan-derived quota for its
        // current epoch, then spin-waits for the transition command. The
        // content of every aggregated frame is thus a pure function of the
        // plan. The quota includes the plan's "slow thread" knob: a slow
        // thread contributes fewer samples per epoch, skewing frames the
        // way a de-scheduled thread would.
        for t in 1..threads {
            let fw = &fw;
            let tw = tel.writer(my_world as u32, t as u32);
            s.spawn(move |_| {
                let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, ADS_STREAM_OFFSET + t);
                let mut h = fw.handle(t);
                let mut epoch = 0u32;
                let mut drawn = 0u64;
                'run: loop {
                    let quota = plan.worker_quota(my_world, t, epoch, quota_n0);
                    sampler.sample_batch(g, quota, |interior| h.record_sample(interior));
                    drawn += quota;
                    loop {
                        if fw.check_transition(&mut h) {
                            break;
                        }
                        if fw.should_terminate() {
                            break 'run;
                        }
                        std::hint::spin_loop();
                    }
                    epoch += 1;
                }
                // One flush at exit keeps the hot loop free of stores.
                tw.count(CounterId::Samples, drawn);
            });
        }

        // Thread 0 (Algorithm 2, lines 10-31).
        let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, ADS_STREAM_OFFSET);
        let mut h = fw.handle(0);
        let mut epoch = 0u32;
        loop {
            w.set_epoch(epoch);
            if let Some(p) = probe {
                p.begin_round(my_world, epoch);
            }
            let round_result = (|| -> Result<bool, CommError> {
                let sp = w.begin(SpanId::SampleBatch);
                sampler.sample_batch(g, n0, |interior| h.record_sample(interior));
                w.end(sp);
                let mut overlapped = 0u64;
                fw.force_transition(&mut h, epoch);
                // Deterministic transition overlap: the framework has no
                // Request to meter polls on, so the plan supplies the
                // overlap sample count directly; the residual wait samples
                // nothing.
                let sp = w.begin(SpanId::TransitionWait);
                let planned_overlap = plan.transition_overlap(my_world, epoch);
                sampler.sample_batch(g, planned_overlap, |interior| h.record_sample(interior));
                overlapped += planned_overlap;
                while !fw.transition_done(epoch) {
                    std::hint::spin_loop();
                }
                w.end(sp);

                let sp = w.begin(SpanId::FrameAggregate);
                let mut epoch_frame = vec![0u64; n + 1];
                let tau_epoch = fw.aggregate_epoch(epoch, &mut epoch_frame[..n]);
                epoch_frame[n] = tau_epoch;
                w.end(sp);
                w.count(CounterId::BytesReduced, epoch_frame.len() as u64 * 8);

                let sp = w.begin(SpanId::IreduceWait);
                let mut req = local.ireduce_sum_u64(0, &epoch_frame)?;
                while !req.test()? {
                    let interior = sampler.sample(g);
                    h.record_sample(interior);
                    overlapped += 1;
                }
                w.end(sp);
                // The node reduce completed: checkpoint this rank's frame
                // (see epoch_mpi::rank_main).
                ledger.confirm(&epoch_frame);
                // xtask: allow(unwrap) — test() returned true, so the
                // request completed and its result is present.
                let node_frame = req.into_result().unwrap();

                let mut d = 0u64;
                let mut folded = [0u64; 2]; // root: [Σc̃, τ] absorbed
                if is_leader {
                    let sp = w.begin(SpanId::IbarrierWait);
                    let mut bar = leaders.ibarrier()?;
                    while !bar.test()? {
                        let interior = sampler.sample(g);
                        h.record_sample(interior);
                        overlapped += 1;
                    }
                    w.end(sp);
                    // xtask: allow(unwrap) — this rank is its node's local
                    // root, so the local reduce delivered Some to it.
                    let frame = node_frame.expect("leader holds node frame");
                    let sp = w.begin(SpanId::Reduce);
                    let reduced = leaders.reduce_sum_u64(0, &frame)?;
                    w.end(sp);
                    w.count(CounterId::BytesReduced, frame.len() as u64 * 8);
                    if world.rank() == 0 {
                        // xtask: allow(unwrap) — the root is the leader
                        // root, so the reduction delivered Some to it.
                        let reduced = reduced.expect("leader root receives reduction");
                        folded = [reduced[..n].iter().sum(), reduced[n]];
                        let sp = w.begin(SpanId::Check);
                        let stop = fold_and_check(
                            &mut s_global,
                            &reduced,
                            cfg.epsilon,
                            omega,
                            &calibration,
                        );
                        w.end(sp);
                        d = u64::from(stop);
                    }
                }

                // Conservation across the two-level reduction, plus the
                // recovery-ledger invariant (see flat_rank_main).
                if opts.conservation {
                    let sent = [
                        epoch_frame[..n].iter().sum::<u64>(),
                        epoch_frame[n],
                        ledger.frame()[..n].iter().sum::<u64>(),
                        ledger.frame()[n],
                    ];
                    let totals = world.allreduce_sum_u64(&sent)?;
                    if world.rank() == 0 {
                        assert_eq!(
                            [totals[0], totals[1]],
                            folded,
                            "sample conservation violated at epoch {epoch} [{}]",
                            plan.summary()
                        );
                        assert_eq!(
                            [totals[2], totals[3]],
                            [s_global[..n].iter().sum::<u64>(), s_global[n]],
                            "ledger conservation violated at epoch {epoch} [{}]",
                            plan.summary()
                        );
                    }
                    rounds += 1;
                }

                let sp = w.begin(SpanId::BcastStop);
                let mut breq = world.ibcast_u64(0, (world.rank() == 0).then_some(d))?;
                while !breq.test()? {
                    let interior = sampler.sample(g);
                    h.record_sample(interior);
                    overlapped += 1;
                }
                w.end(sp);
                w.count(CounterId::Samples, n0 + overlapped);
                w.count(CounterId::Epochs, 1);
                // xtask: allow(unwrap) — test() returned true above.
                Ok(breq.into_result().unwrap() != 0)
            })();

            match round_result {
                Ok(stop) => {
                    if let Some(p) = probe {
                        p.complete_round(my_world, epoch);
                    }
                    if stop {
                        fw.signal_termination();
                        break;
                    }
                    epoch += 1;
                }
                Err(CommError::RankFailed { rank }) if rank == my_world => {
                    dead = true;
                    fw.signal_termination();
                    break;
                }
                Err(CommError::RankFailed { .. }) => {
                    loop {
                        let prev_members = world.members().to_vec();
                        let recovered = (|| -> Result<(), CommError> {
                            let (new_world, rebuilt) = shrink_and_rebuild(&world, &ledger, &w)?;
                            local_bytes_acc += local.bytes_transferred();
                            leader_bytes_acc += leaders.bytes_transferred();
                            world = new_world;
                            s_global = rebuilt;
                            let (l, il, ld) = hierarchical_comms(&world, shape)?;
                            local = l;
                            is_leader = il;
                            leaders = ld;
                            n0 = cfg.n0(threads * world.size());
                            Ok(())
                        })();
                        match recovered {
                            Ok(()) => {
                                recoveries += 1;
                                ranks_lost += (prev_members.len() - world.size()) as u64;
                                if let Some(p) = probe {
                                    for m in
                                        prev_members.iter().filter(|m| !world.members().contains(m))
                                    {
                                        p.retire(*m);
                                    }
                                }
                                epoch += 1; // the failed round is discarded
                                break;
                            }
                            Err(CommError::RankFailed { rank }) if rank != my_world => continue,
                            Err(e) if e.failed_rank() == Some(my_world) => {
                                dead = true;
                                fw.signal_termination();
                                break;
                            }
                            Err(e) => {
                                panic!("unrecoverable communicator failure during recovery: {e}")
                            }
                        }
                    }
                    if dead {
                        break;
                    }
                }
                Err(e) => panic!("unrecoverable communicator failure: {e}"),
            }
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("adaptive sampling scope");
    w.end(sp_ads);
    if dead {
        return ObservedOutcome::dead();
    }

    let result = (world.rank() == 0).then(|| {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        }
    });
    ObservedOutcome {
        result,
        rounds,
        ranks_lost,
        recoveries,
        is_leader,
        local_bytes: local_bytes_acc + local.bytes_transferred(),
        leader_bytes: leader_bytes_acc + leaders.bytes_transferred(),
        world_bytes: world.bytes_transferred(),
    }
}

/// Assembles the [`ChaosReport`] from the surviving root's outcome, the
/// shared probe and the telemetry registry.
fn finish_report(
    root: ObservedOutcome,
    probe: Option<Arc<CrossEpochProbe>>,
    opts: &ChaosOptions,
    tel: &Telemetry,
) -> ChaosReport {
    let (max_epoch_gap, probe_observations, probe_violations) = match &probe {
        Some(p) => (p.max_gap(), p.observations(), p.violations()),
        None => (0, 0, 0),
    };
    ChaosReport {
        // xtask: allow(unwrap) — finish_report is only called with the
        // outcome selected for holding Some.
        result: root.result.expect("root outcome holds the result"),
        max_epoch_gap,
        probe_observations,
        probe_violations,
        conservation_rounds: root.rounds,
        ranks_lost: root.ranks_lost,
        recoveries: root.recoveries,
        plan_summary: opts.plan.summary(),
        phases: tel.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::generators::{grid, GridConfig};

    fn small_graph() -> Graph {
        grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 })
    }

    #[test]
    fn flat_observed_is_bit_reproducible() {
        let g = small_graph();
        let cfg = KadabraConfig::new(0.1, 0.1);
        let opts = ChaosOptions::all(FaultPlan::from_seed(3));
        let a = kadabra_mpi_flat_observed(&g, &cfg, 3, &opts);
        let b = kadabra_mpi_flat_observed(&g, &cfg, 3, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
        a.assert_invariants();
        assert!(a.probe_observations > 0);
        assert!(a.conservation_rounds > 0);
        assert_eq!(a.ranks_lost, 0);
    }

    #[test]
    fn epoch_observed_is_bit_reproducible() {
        let g = small_graph();
        let cfg = KadabraConfig::new(0.1, 0.1);
        let shape = ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 };
        let opts = ChaosOptions::all(FaultPlan::from_seed(7));
        let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
        a.assert_invariants();
    }

    #[test]
    fn different_plans_perturb_the_schedule() {
        // Different seeds must actually change the execution (sample totals
        // differ), otherwise the chaos corpus explores nothing. ε is tight
        // enough for several rounds, so overlapped samples reach the
        // aggregated totals.
        let g = small_graph();
        let cfg = KadabraConfig::new(0.04, 0.1);
        let a = kadabra_mpi_flat_observed(
            &g,
            &cfg,
            3,
            &ChaosOptions::all(FaultPlan::ideal(0).with_collective_delay(0, 3)),
        );
        let b = kadabra_mpi_flat_observed(
            &g,
            &cfg,
            3,
            &ChaosOptions::all(FaultPlan::ideal(0).with_collective_delay(50, 90)),
        );
        assert_ne!(
            a.result.samples, b.result.samples,
            "plans with very different delays produced identical schedules"
        );
    }

    #[test]
    fn probes_can_be_disabled() {
        let g = small_graph();
        let cfg = KadabraConfig::new(0.1, 0.1);
        let opts = ChaosOptions {
            plan: FaultPlan::ideal(1),
            probe: false,
            conservation: false,
            telemetry: false,
        };
        let r = kadabra_mpi_flat_observed(&g, &cfg, 2, &opts);
        assert_eq!(r.probe_observations, 0);
        assert_eq!(r.conservation_rounds, 0);
        assert!(r.result.samples > 0);
    }

    #[test]
    fn flat_observed_crash_recovery_keeps_every_invariant() {
        // One rank crashed mid-adaptive-phase: the run must shrink, keep
        // the epoch-gap and conservation invariants clean over the
        // survivors, and stay bit-reproducible from (plan, seed).
        let g = small_graph();
        let cfg = KadabraConfig::new(0.05, 0.1);
        let opts = ChaosOptions::all(FaultPlan::ideal(11).with_crash_at_collective(2, 6));
        let a = kadabra_mpi_flat_observed(&g, &cfg, 4, &opts);
        a.assert_invariants();
        assert_eq!(a.ranks_lost, 1, "[{}]", a.plan_summary);
        assert_eq!(a.recoveries, 1, "[{}]", a.plan_summary);
        assert!(a.conservation_rounds > 0);
        let b = kadabra_mpi_flat_observed(&g, &cfg, 4, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
    }

    #[test]
    fn epoch_observed_crash_recovery_keeps_every_invariant() {
        let g = small_graph();
        let cfg = KadabraConfig::new(0.05, 0.1);
        let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
        let opts = ChaosOptions::all(FaultPlan::ideal(19).with_crash_at_collective(3, 9));
        let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        a.assert_invariants();
        assert_eq!(a.ranks_lost, 1, "[{}]", a.plan_summary);
        assert!(a.recoveries >= 1, "[{}]", a.plan_summary);
        let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
    }
}
