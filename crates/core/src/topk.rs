//! Confidence intervals and confident top-k extraction.
//!
//! The paper's introduction motivates small ε with top-vertex detection: "on
//! many graphs only a handful of vertices have a betweenness score larger
//! than 0.01 (e.g., 38 vertices out of the 41 million vertices of the
//! widely-studied twitter graph)". This module turns a finished KADABRA run
//! into per-vertex **confidence intervals** `[b̃ − f, b̃ + g]` (each valid
//! with its vertex's calibrated failure budget; all simultaneously valid
//! with probability ≥ 1 − δ) and extracts the set of vertices *provably* in
//! the top-k — the deliverable KADABRA's original paper calls the top-k
//! variant.

use crate::bounds::{f_bound, g_bound};
use crate::calibration::Calibration;
use crate::result::BetweennessResult;

/// A vertex's betweenness confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Vertex id.
    pub vertex: u32,
    /// Point estimate b̃(v).
    pub estimate: f64,
    /// Lower confidence bound `max(0, b̃ − f)`.
    pub lower: f64,
    /// Upper confidence bound `min(1, b̃ + g)`.
    pub upper: f64,
}

/// Computes all confidence intervals from a finished run and the calibration
/// it used.
pub fn confidence_intervals(
    result: &BetweennessResult,
    calibration: &Calibration,
) -> Vec<ConfidenceInterval> {
    assert_eq!(result.scores.len(), calibration.delta_l.len(), "mismatched run/calibration");
    assert!(result.samples > 0);
    result
        .scores
        .iter()
        .enumerate()
        .map(|(v, &b)| {
            let f = f_bound(b, calibration.delta_l[v], result.omega, result.samples);
            let g = g_bound(b, calibration.delta_u[v], result.omega, result.samples);
            ConfidenceInterval {
                vertex: v as u32,
                estimate: b,
                lower: (b - f).max(0.0),
                upper: (b + g).min(1.0),
            }
        })
        .collect()
}

/// Outcome of a confident top-k query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Vertices whose lower bound beats the (k+1)-th best upper bound — they
    /// are in the true top-k with probability ≥ 1 − δ.
    pub confirmed: Vec<ConfidenceInterval>,
    /// Vertices among the best k estimates that could not be separated.
    pub undecided: Vec<ConfidenceInterval>,
}

/// Extracts the provable top-`k`: sorts intervals by estimate, then confirms
/// every candidate whose lower bound exceeds the best upper bound among the
/// non-candidates.
pub fn confident_top_k(
    result: &BetweennessResult,
    calibration: &Calibration,
    k: usize,
) -> TopKResult {
    let mut intervals = confidence_intervals(result, calibration);
    intervals.sort_by(|a, b| b.estimate.total_cmp(&a.estimate).then(a.vertex.cmp(&b.vertex)));
    let k = k.min(intervals.len());
    // Highest upper bound outside the candidate set: the bar to clear.
    let bar = intervals[k..].iter().map(|ci| ci.upper).fold(0.0f64, f64::max);
    let mut confirmed = Vec::new();
    let mut undecided = Vec::new();
    for ci in intervals.into_iter().take(k) {
        if ci.lower > bar {
            confirmed.push(ci);
        } else {
            undecided.push(ci);
        }
    }
    TopKResult { confirmed, undecided }
}

/// Outcome of an adaptive top-k run.
#[derive(Debug, Clone)]
pub struct AdaptiveTopKResult {
    /// The underlying estimate at stopping time.
    pub result: BetweennessResult,
    /// The separated (provable) top-k, sorted by descending estimate.
    pub confirmed: Vec<ConfidenceInterval>,
    /// Whether sampling stopped because the top-k separated (vs. reaching
    /// the ±ε/ω criterion first).
    pub separated: bool,
}

/// **Adaptive top-k KADABRA** (the original paper's second mode): sampling
/// stops as soon as the k highest estimates are *provably* the top-k — i.e.
/// the k-th best lower confidence bound exceeds every other vertex's upper
/// bound — or, failing that, when the standard ±ε condition (or the ω cap)
/// fires. On graphs with clear hubs this stops far earlier than the
/// uniform-ε run.
pub fn kadabra_topk(
    g: &kadabra_graph::Graph,
    k: usize,
    cfg: &crate::config::KadabraConfig,
) -> AdaptiveTopKResult {
    use crate::bounds::{omega as omega_fn, stopping_condition};
    use crate::phases::{prepare, scores_from_counts};
    use crate::result::{PhaseTimings, SamplingStats};
    use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
    use kadabra_telemetry::Stopwatch;

    cfg.validate();
    let n = g.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");
    assert!(k >= 1 && k < n, "k must lie in 1..n");
    let prepared = prepare(g, cfg);
    let omega = omega_fn(cfg.c, cfg.epsilon, cfg.delta, prepared.vertex_diameter);

    let ads_start = Stopwatch::start();
    let mut sampler = ThreadSampler::new(n, cfg.seed, 0, ADS_STREAM_OFFSET + 7);
    let mut counts = vec![0u64; n];
    let mut tau = 0u64;
    let n0 = cfg.n0(1);
    let mut stats = SamplingStats::default();
    let mut separated = false;
    loop {
        for _ in 0..n0 {
            for &v in sampler.sample(g) {
                counts[v as usize] += 1;
            }
        }
        tau += n0;
        stats.epochs += 1;
        let check_start = Stopwatch::start();
        // Top-k separation check on the current consistent state.
        let interim = BetweennessResult {
            scores: scores_from_counts(&counts, tau),
            samples: tau,
            omega,
            vertex_diameter: prepared.vertex_diameter,
            timings: PhaseTimings::default(),
            stats: SamplingStats::default(),
        };
        let topk = confident_top_k(&interim, &prepared.calibration, k);
        if topk.confirmed.len() == k {
            separated = true;
            stats.check_time += check_start.elapsed();
            stats.samples = tau;
            return AdaptiveTopKResult {
                result: BetweennessResult {
                    timings: PhaseTimings {
                        diameter: prepared.diameter_time,
                        calibration: prepared.calibration_time,
                        adaptive_sampling: ads_start.elapsed(),
                    },
                    stats,
                    ..interim
                },
                confirmed: topk.confirmed,
                separated,
            };
        }
        // Fallback: the uniform ±ε criterion (also covers τ ≥ ω).
        let stop = stopping_condition(
            &counts,
            tau,
            cfg.epsilon,
            omega,
            &prepared.calibration.delta_l,
            &prepared.calibration.delta_u,
        );
        stats.check_time += check_start.elapsed();
        if stop {
            stats.samples = tau;
            let topk = confident_top_k(&interim, &prepared.calibration, k);
            return AdaptiveTopKResult {
                result: BetweennessResult {
                    timings: PhaseTimings {
                        diameter: prepared.diameter_time,
                        calibration: prepared.calibration_time,
                        adaptive_sampling: ads_start.elapsed(),
                    },
                    stats,
                    ..interim
                },
                confirmed: topk.confirmed,
                separated,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KadabraConfig;
    use crate::sequential::kadabra_sequential;
    use crate::{phases, Prepared};
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{grid, GridConfig};

    fn run_with_calibration(
        g: &kadabra_graph::Graph,
        cfg: &KadabraConfig,
    ) -> (BetweennessResult, Prepared) {
        let prepared = phases::prepare(g, cfg);
        let result = kadabra_sequential(g, cfg);
        (result, prepared)
    }

    #[test]
    fn intervals_cover_estimates() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let (result, prepared) = run_with_calibration(&g, &cfg);
        let cis = confidence_intervals(&result, &prepared.calibration);
        assert_eq!(cis.len(), 36);
        for ci in &cis {
            assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper, "{ci:?}");
            assert!((0.0..=1.0).contains(&ci.lower));
            assert!((0.0..=1.0).contains(&ci.upper));
        }
    }

    #[test]
    fn star_hub_is_confirmed_top_1() {
        let edges: Vec<(u32, u32)> = (1..30).map(|v| (0, v)).collect();
        let g = graph_from_edges(30, &edges);
        let cfg = KadabraConfig::new(0.05, 0.1);
        let (result, prepared) = run_with_calibration(&g, &cfg);
        let topk = confident_top_k(&result, &prepared.calibration, 1);
        assert_eq!(topk.confirmed.len(), 1, "hub must be provably top-1");
        assert_eq!(topk.confirmed[0].vertex, 0);
        assert!(topk.undecided.is_empty());
    }

    #[test]
    fn symmetric_graph_leaves_candidates_undecided() {
        // On a cycle every vertex has identical betweenness: no vertex can be
        // separated into a top-3.
        let n = 12u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = graph_from_edges(n as usize, &edges);
        let cfg = KadabraConfig::new(0.05, 0.1);
        let (result, prepared) = run_with_calibration(&g, &cfg);
        let topk = confident_top_k(&result, &prepared.calibration, 3);
        assert!(topk.confirmed.is_empty(), "cycle vertices are indistinguishable");
        assert_eq!(topk.undecided.len(), 3);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = KadabraConfig::new(0.1, 0.1);
        let (result, prepared) = run_with_calibration(&g, &cfg);
        let topk = confident_top_k(&result, &prepared.calibration, 100);
        assert_eq!(topk.confirmed.len() + topk.undecided.len(), 3);
    }

    #[test]
    fn adaptive_topk_stops_early_on_star() {
        // The hub separates almost immediately; the uniform-eps run on the
        // same graph needs the full omega cap (its estimate is ~1).
        let edges: Vec<(u32, u32)> = (1..40).map(|v| (0, v)).collect();
        let g = graph_from_edges(40, &edges);
        let cfg = KadabraConfig {
            epsilon: 0.01,
            delta: 0.1,
            seed: 5,
            calibration_samples: Some(200),
            ..Default::default()
        };
        let topk = kadabra_topk(&g, 1, &cfg);
        assert!(topk.separated, "star hub must separate adaptively");
        assert_eq!(topk.confirmed.len(), 1);
        assert_eq!(topk.confirmed[0].vertex, 0);
        let full = kadabra_sequential(&g, &cfg);
        assert!(
            topk.result.samples < full.samples / 2,
            "top-k ({}) should stop far before the uniform run ({})",
            topk.result.samples,
            full.samples
        );
    }

    #[test]
    fn adaptive_topk_falls_back_on_symmetric_graph() {
        // A cycle can never separate a top-3; the run must terminate via the
        // uniform criterion instead of looping forever.
        let n = 10u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = graph_from_edges(n as usize, &edges);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 6, ..Default::default() };
        let topk = kadabra_topk(&g, 3, &cfg);
        assert!(!topk.separated);
        assert!(topk.result.samples > 0);
    }

    #[test]
    #[should_panic(expected = "k must lie in 1..n")]
    fn adaptive_topk_validates_k() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        kadabra_topk(&g, 3, &KadabraConfig::new(0.1, 0.1));
    }

    #[test]
    #[should_panic(expected = "mismatched run/calibration")]
    fn mismatched_sizes_rejected() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let cfg = KadabraConfig::new(0.1, 0.1);
        let (result, _) = run_with_calibration(&g, &cfg);
        let other = Calibration { delta_l: vec![0.1], delta_u: vec![0.1], samples: 1 };
        confidence_intervals(&result, &other);
    }
}
