//! **Algorithm 1** of the paper: MPI parallelization of adaptive sampling
//! without multithreading.
//!
//! Every MPI rank samples independently; every `n0` samples the ranks
//! snapshot their local state frame, start a *non-blocking* reduction to
//! rank 0, and keep sampling while the reduction progresses. Rank 0 folds
//! the reduced frame into the global state, checks the stopping condition,
//! and broadcasts the termination flag — again non-blocking, again
//! overlapped with sampling on all ranks.
//!
//! The state frame travels as a `u64` vector of length `n + 1`: per-vertex
//! counts plus τ in the last slot, so one reduction moves the entire
//! sampling state exactly as in the paper.
//!
//! The adaptive loop is **crash-fault tolerant** (DESIGN.md §10): under a
//! fault plan with scheduled rank crashes, survivors observe the typed
//! [`CommError::RankFailed`], shrink the communicator, rebuild the global
//! state from their [`SampleLedger`] checkpoints, and continue — the new
//! rank 0 (smallest surviving world rank) takes over the stopping-condition
//! bookkeeping, so the run terminates with the usual (ε, δ) guarantee even
//! if the original root died.

use crate::config::KadabraConfig;
use crate::phases::{
    calibration_samples_for_thread, diameter_phase, fold_and_check, scores_from_counts,
};
use crate::recovery::{shrink_and_rebuild, SampleLedger};
use crate::result::BetweennessResult;
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration};
use kadabra_graph::Graph;
use kadabra_mpisim::{CommError, Communicator, Universe};
use kadabra_telemetry::{CounterId, SpanId, Telemetry};

/// Runs Algorithm 1 with `ranks` simulated MPI processes (one sampling
/// thread each). Returns the root's result.
pub fn kadabra_mpi_flat(g: &Graph, cfg: &KadabraConfig, ranks: usize) -> BetweennessResult {
    kadabra_mpi_flat_traced(g, cfg, ranks, &Telemetry::stats_only())
}

/// [`kadabra_mpi_flat`] recording into an explicit [`Telemetry`] registry:
/// per-rank spans and counters, plus collective/p2p markers from the mpisim
/// tracer hooks (and the full event stream in tracing mode).
pub fn kadabra_mpi_flat_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    ranks: usize,
    tel: &Telemetry,
) -> BetweennessResult {
    cfg.validate();
    assert!(ranks >= 1);
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let results = Universe::run(ranks, |comm| rank_main(g, cfg, comm, tel));
    results
        .into_iter()
        .find_map(|r| r)
        // xtask: allow(unwrap) — exactly one rank (the final root) returns
        // Some; without crash faults that is rank 0.
        .expect("the surviving root produces the result")
}

/// A setup-phase (diameter/calibration) communicator failure. Crash
/// schedules are constrained to the adaptive phase
/// (`FaultPlan::from_seed_with_crashes` schedules past the setup
/// collectives), so the only recoverable outcome here is this rank's own
/// death; anything else is a misconfigured plan or an algorithm bug.
fn setup_failure(rank: usize, e: CommError) -> Option<()> {
    if e.failed_rank() == Some(rank) {
        return None; // this rank's own scheduled crash
    }
    panic!("rank failure during setup phases (schedule crashes in the adaptive phase): {e}");
}

/// Per-rank body of Algorithm 1. Returns `Some` at the rank that holds the
/// final global state (rank 0, or the recovered root after crashes); `None`
/// at other ranks and at ranks that died.
fn rank_main(
    g: &Graph,
    cfg: &KadabraConfig,
    comm: Communicator,
    tel: &Telemetry,
) -> Option<BetweennessResult> {
    let n = g.num_nodes();
    let my_world = comm.world_rank();
    let ranks = comm.size();
    let w = tel.writer(my_world as u32, 0);
    comm.set_tracer(w.clone());

    // Phase 1: diameter on rank 0, broadcast (the paper computes it with a
    // sequential algorithm; other ranks idle — the Amdahl term of Fig. 2b).
    let sp = w.begin(SpanId::Diameter);
    let vd_bcast = if comm.rank() == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        comm.bcast_u64(0, Some(vd as u64))
    } else {
        comm.bcast_u64(0, None)
    };
    let vd = match vd_bcast {
        Ok(v) => v as u32,
        Err(e) => {
            setup_failure(my_world, e)?;
            unreachable!()
        }
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Phase 2: calibration — parallel sampling, blocking aggregation
    // (MPI_Reduce in the paper; we all-reduce so every rank derives the
    // same δ budgets deterministically).
    // Each simulated rank is a single sampling thread; pin it to the core
    // its world rank maps to and first-touch the shared CSR if configured.
    if cfg.kernel.pin_threads {
        let _ = crate::affinity::pin_worker(my_world, 0, 1);
    }
    if cfg.kernel.first_touch {
        let _ = g.touch_pages();
    }

    let sp = w.begin(SpanId::Calibration);
    let mut sampler = ThreadSampler::with_kernel(n, cfg.seed, my_world, 0, cfg.kernel);
    let mut counts = vec![0u64; n + 1];
    let taken =
        calibration_samples_for_thread(g, &mut sampler, &mut counts[..n], cfg, omega, ranks);
    counts[n] = taken;
    let total = match comm.allreduce_sum_u64(&counts) {
        Ok(t) => t,
        Err(e) => {
            setup_failure(my_world, e)?;
            unreachable!()
        }
    };
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp);

    // Phase 3: Algorithm 1, with shrink-and-continue recovery.
    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let mut comm = comm;
    let mut n0 = cfg.n0(ranks);
    let mut sampler =
        ThreadSampler::with_kernel(n, cfg.seed, my_world, ADS_STREAM_OFFSET, cfg.kernel);
    // S_loc: local state frame; S: aggregated frame at the root (line 1).
    let mut s_loc = vec![0u64; n + 1];
    let mut s_global = vec![0u64; n + 1];
    // Recovery checkpoint: every frame whose reduction this rank observed.
    let mut ledger = SampleLedger::new(n);
    let mut epoch = 0u32;
    let mut dead = false;

    let sample_into = |frame: &mut Vec<u64>, sampler: &mut ThreadSampler| {
        for &v in sampler.sample(g) {
            frame[v as usize] += 1;
        }
        frame[n] += 1;
    };

    loop {
        w.set_epoch(epoch);
        // One reduction round, all failure paths typed.
        let round = (|| -> Result<bool, CommError> {
            // Lines 5-6: n0 local samples, drawn as one batch.
            let sp = w.begin(SpanId::SampleBatch);
            {
                let frame = &mut s_loc;
                sampler.sample_batch(g, n0, |interior| {
                    for &v in interior {
                        frame[v as usize] += 1;
                    }
                    frame[n] += 1;
                });
            }
            w.end(sp);
            // Lines 7-8: snapshot, so overlapped samples don't corrupt the
            // communication buffer.
            let snapshot = std::mem::replace(&mut s_loc, vec![0u64; n + 1]);
            // Lines 10-11: non-blocking reduce, overlapped with sampling.
            let sp = w.begin(SpanId::IreduceWait);
            let mut req = comm.ireduce_sum_u64(0, &snapshot)?;
            let mut overlapped = 0u64;
            while !req.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::BytesReduced, snapshot.len() as u64 * 8);
            // Observed completion: the snapshot is now globally counted —
            // checkpoint it (a failed round never reaches this line, so its
            // in-flight frame is discarded everywhere, never double-counted).
            ledger.confirm(&snapshot);

            // Lines 12-14: the root folds and checks.
            let mut d = 0u64;
            if comm.rank() == 0 {
                // xtask: allow(unwrap) — the request completed (test() was
                // true) and this rank is the reduction root, so both layers
                // are Some.
                let reduced = req.into_result().unwrap().expect("root receives reduction");
                let sp = w.begin(SpanId::Check);
                let stop =
                    fold_and_check(&mut s_global, &reduced, cfg.epsilon, omega, &calibration);
                w.end(sp);
                d = u64::from(stop);
            }
            // Lines 15-17: broadcast the termination flag, overlapped.
            let sp = w.begin(SpanId::BcastStop);
            let mut breq = comm.ibcast_u64(0, (comm.rank() == 0).then_some(d))?;
            while !breq.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::Samples, n0 + overlapped);
            // xtask: allow(unwrap) — test() returned true above.
            Ok(breq.into_result().unwrap() != 0)
        })();

        match round {
            Ok(stop) => {
                w.count(CounterId::Epochs, 1);
                if stop {
                    break;
                }
                epoch += 1;
            }
            Err(CommError::RankFailed { rank }) if rank == my_world => {
                dead = true; // own scheduled crash: this rank leaves the run
                break;
            }
            Err(CommError::RankFailed { .. }) => {
                // A peer died: shrink-and-continue. The rebuilt state is
                // Σ survivor ledgers, identical at every survivor, so the
                // (possibly new) root resumes the stopping condition from a
                // consistent checkpoint.
                match shrink_and_rebuild(&comm, &ledger, &w) {
                    Ok((small, rebuilt)) => {
                        comm = small;
                        s_global = rebuilt;
                        n0 = cfg.n0(comm.size());
                        epoch += 1;
                    }
                    Err(e) if e.failed_rank() == Some(my_world) => {
                        dead = true; // died mid-recovery
                        break;
                    }
                    Err(e) => panic!("unrecoverable communicator failure: {e}"),
                }
            }
            Err(e) => panic!("unrecoverable communicator failure: {e}"),
        }
    }
    let (rounds, lane_rounds) = sampler.kernel_occupancy();
    w.count(CounterId::KernelRounds, rounds);
    w.count(CounterId::KernelLaneRounds, lane_rounds);
    w.end(sp_ads);
    if dead {
        return None;
    }

    if comm.rank() == 0 {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        stats.comm_bytes = comm.bytes_transferred();
        Some(BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};
    use kadabra_mpisim::FaultPlan;

    #[test]
    fn single_rank_reduces_to_sequential_structure() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let r = kadabra_mpi_flat(&g, &KadabraConfig::new(0.1, 0.1), 1);
        assert!(r.samples > 0);
        assert!(r.stats.epochs >= 1);
    }

    #[test]
    fn multi_rank_accuracy() {
        let g = gnm(GnmConfig { n: 50, m: 130, seed: 8 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.04, delta: 0.1, seed: 21, ..Default::default() };
        let r = kadabra_mpi_flat(&lcc, &cfg, 4);
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn samples_exceed_zero_on_all_rank_counts() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        for ranks in [1, 2, 3] {
            let r = kadabra_mpi_flat(&g, &KadabraConfig::new(0.1, 0.1), ranks);
            assert!(r.samples > 0, "ranks={ranks}");
            assert!(r.stats.comm_bytes > 0);
        }
    }

    #[test]
    fn overshoot_is_bounded_by_overlap() {
        // Adaptive sampling may take more samples than strictly needed (the
        // overlapped ones), but the total must stay within a few epochs of ω.
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let r = kadabra_mpi_flat(&g, &cfg, 2);
        assert!(r.samples <= r.omega + 4 * cfg.n0(2) * 2 + 10_000);
    }

    /// Runs the flat driver under an explicit fault plan (test-only entry:
    /// production runs go through [`kadabra_mpi_flat_traced`], which is
    /// free-running).
    fn flat_with_plan(
        g: &Graph,
        cfg: &KadabraConfig,
        ranks: usize,
        plan: FaultPlan,
    ) -> BetweennessResult {
        let tel = Telemetry::stats_only();
        let results = Universe::run_with_plan(ranks, plan, |comm| rank_main(g, cfg, comm, &tel));
        results.into_iter().find_map(|r| r).expect("a surviving root")
    }

    #[test]
    fn crash_mid_adaptive_recovers_and_stays_within_epsilon() {
        // Kill rank 3 at its 9th collective join (round 3 of the adaptive
        // loop); survivors shrink, rebuild from ledgers, and the result must
        // still satisfy the ε guarantee — bit-reproducibly.
        let g = gnm(GnmConfig { n: 50, m: 130, seed: 8 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 33, ..Default::default() };
        let plan = FaultPlan::ideal(77).with_crash_at_collective(3, 8);
        let r = flat_with_plan(&lcc, &cfg, 4, plan.clone());
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} after crash recovery");
        let again = flat_with_plan(&lcc, &cfg, 4, plan.clone());
        assert_eq!(r.scores, again.scores, "crash run not reproducible: {}", plan.summary());
        assert_eq!(r.samples, again.samples);
    }

    #[test]
    fn root_crash_hands_the_result_to_the_new_root() {
        // Rank 0 (the root!) dies mid-adaptive-phase; rank 1 becomes root of
        // the shrunk communicator, resumes from the rebuilt ledger state,
        // and returns the final result.
        let g = gnm(GnmConfig { n: 40, m: 100, seed: 4 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 9, ..Default::default() };
        let plan = FaultPlan::ideal(13).with_crash_at_collective(0, 3);
        let tel = Telemetry::stats_only();
        let results = Universe::run_with_plan(3, plan, |comm| rank_main(&lcc, &cfg, comm, &tel));
        assert!(results[0].is_none(), "the dead root cannot return a result");
        let survivors: Vec<_> = results.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 1, "exactly one surviving root");
        let r = &survivors[0];
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} after root fail-over");
    }
}
