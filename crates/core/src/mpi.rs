//! **Algorithm 1** of the paper: MPI parallelization of adaptive sampling
//! without multithreading.
//!
//! Every MPI rank samples independently; every `n0` samples the ranks
//! snapshot their local state frame, start a *non-blocking* reduction to
//! rank 0, and keep sampling while the reduction progresses. Rank 0 folds
//! the reduced frame into the global state, checks the stopping condition,
//! and broadcasts the termination flag — again non-blocking, again
//! overlapped with sampling on all ranks.
//!
//! The state frame travels as a `u64` vector of length `n + 1`: per-vertex
//! counts plus τ in the last slot, so one reduction moves the entire
//! sampling state exactly as in the paper.

use crate::config::KadabraConfig;
use crate::phases::{
    calibration_samples_for_thread, diameter_phase, fold_and_check, scores_from_counts,
};
use crate::result::BetweennessResult;
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration};
use kadabra_graph::Graph;
use kadabra_mpisim::{Communicator, Universe};
use kadabra_telemetry::{CounterId, SpanId, Telemetry};

/// Runs Algorithm 1 with `ranks` simulated MPI processes (one sampling
/// thread each). Returns rank 0's result.
pub fn kadabra_mpi_flat(g: &Graph, cfg: &KadabraConfig, ranks: usize) -> BetweennessResult {
    kadabra_mpi_flat_traced(g, cfg, ranks, &Telemetry::stats_only())
}

/// [`kadabra_mpi_flat`] recording into an explicit [`Telemetry`] registry:
/// per-rank spans and counters, plus collective/p2p markers from the mpisim
/// tracer hooks (and the full event stream in tracing mode).
pub fn kadabra_mpi_flat_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    ranks: usize,
    tel: &Telemetry,
) -> BetweennessResult {
    cfg.validate();
    assert!(ranks >= 1);
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let mut results = Universe::run(ranks, |comm| rank_main(g, cfg, comm, tel));
    results
        .swap_remove(0)
        // xtask: allow(unwrap) — rank_main returns Some exactly at rank 0.
        .expect("rank 0 always produces the result")
}

/// Per-rank body of Algorithm 1.
fn rank_main(
    g: &Graph,
    cfg: &KadabraConfig,
    comm: Communicator,
    tel: &Telemetry,
) -> Option<BetweennessResult> {
    let n = g.num_nodes();
    let rank = comm.rank();
    let ranks = comm.size();
    let w = tel.writer(rank as u32, 0);
    comm.set_tracer(w.clone());

    // Phase 1: diameter on rank 0, broadcast (the paper computes it with a
    // sequential algorithm; other ranks idle — the Amdahl term of Fig. 2b).
    let sp = w.begin(SpanId::Diameter);
    let vd = if rank == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        comm.bcast_u64(0, Some(vd as u64)) as u32
    } else {
        comm.bcast_u64(0, None) as u32
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Phase 2: calibration — parallel sampling, blocking aggregation
    // (MPI_Reduce in the paper; we all-reduce so every rank derives the
    // same δ budgets deterministically).
    let sp = w.begin(SpanId::Calibration);
    let mut sampler = ThreadSampler::new(n, cfg.seed, rank, 0);
    let mut counts = vec![0u64; n + 1];
    let taken =
        calibration_samples_for_thread(g, &mut sampler, &mut counts[..n], cfg, omega, ranks);
    counts[n] = taken;
    let total = comm.allreduce_sum_u64(&counts);
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp);

    // Phase 3: Algorithm 1.
    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let n0 = cfg.n0(ranks);
    let mut sampler = ThreadSampler::new(n, cfg.seed, rank, ADS_STREAM_OFFSET);
    // S_loc: local state frame; S: aggregated frame at rank 0 (line 1).
    let mut s_loc = vec![0u64; n + 1];
    let mut s_global = vec![0u64; n + 1];
    let mut epoch = 0u32;

    let sample_into = |frame: &mut Vec<u64>, sampler: &mut ThreadSampler| {
        for &v in sampler.sample(g) {
            frame[v as usize] += 1;
        }
        frame[n] += 1;
    };

    loop {
        w.set_epoch(epoch);
        // Lines 5-6: n0 local samples.
        let sp = w.begin(SpanId::SampleBatch);
        for _ in 0..n0 {
            sample_into(&mut s_loc, &mut sampler);
        }
        w.end(sp);
        // Lines 7-8: snapshot, so overlapped samples don't corrupt the
        // communication buffer.
        let snapshot = std::mem::replace(&mut s_loc, vec![0u64; n + 1]);
        // Lines 10-11: non-blocking reduce, overlapped with sampling.
        let sp = w.begin(SpanId::IreduceWait);
        let mut req = comm.ireduce_sum_u64(0, &snapshot);
        let mut overlapped = 0u64;
        while !req.test() {
            sample_into(&mut s_loc, &mut sampler);
            overlapped += 1;
        }
        w.end(sp);
        w.count(CounterId::BytesReduced, snapshot.len() as u64 * 8);

        // Lines 12-14: rank 0 folds and checks.
        let mut d = 0u64;
        if rank == 0 {
            // xtask: allow(unwrap) — the request completed (test() was
            // true) and rank 0 is the reduction root, so both layers are Some.
            let reduced = req.into_result().unwrap().expect("root receives reduction");
            let sp = w.begin(SpanId::Check);
            let stop = fold_and_check(&mut s_global, &reduced, cfg.epsilon, omega, &calibration);
            w.end(sp);
            d = u64::from(stop);
        }
        // Lines 15-17: broadcast the termination flag, overlapped.
        let sp = w.begin(SpanId::BcastStop);
        let mut breq = comm.ibcast_u64(0, (rank == 0).then_some(d));
        while !breq.test() {
            sample_into(&mut s_loc, &mut sampler);
            overlapped += 1;
        }
        w.end(sp);
        w.count(CounterId::Samples, n0 + overlapped);
        w.count(CounterId::Epochs, 1);
        // xtask: allow(unwrap) — test() returned true above.
        if breq.into_result().unwrap() != 0 {
            break;
        }
        epoch += 1;
    }
    w.end(sp_ads);

    if rank == 0 {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        stats.comm_bytes = comm.bytes_transferred();
        Some(BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};

    #[test]
    fn single_rank_reduces_to_sequential_structure() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let r = kadabra_mpi_flat(&g, &KadabraConfig::new(0.1, 0.1), 1);
        assert!(r.samples > 0);
        assert!(r.stats.epochs >= 1);
    }

    #[test]
    fn multi_rank_accuracy() {
        let g = gnm(GnmConfig { n: 50, m: 130, seed: 8 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.04, delta: 0.1, seed: 21, ..Default::default() };
        let r = kadabra_mpi_flat(&lcc, &cfg, 4);
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn samples_exceed_zero_on_all_rank_counts() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        for ranks in [1, 2, 3] {
            let r = kadabra_mpi_flat(&g, &KadabraConfig::new(0.1, 0.1), ranks);
            assert!(r.samples > 0, "ranks={ranks}");
            assert!(r.stats.comm_bytes > 0);
        }
    }

    #[test]
    fn overshoot_is_bounded_by_overlap() {
        // Adaptive sampling may take more samples than strictly needed (the
        // overlapped ones), but the total must stay within a few epochs of ω.
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let r = kadabra_mpi_flat(&g, &cfg, 2);
        assert!(r.samples <= r.omega + 4 * cfg.n0(2) * 2 + 10_000);
    }
}
