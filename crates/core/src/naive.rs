//! The "simple" parallelization the paper dismisses in Section III-B:
//! take a fixed number of samples in every thread, synchronize with a
//! blocking barrier, aggregate (without any overlap), check, repeat.
//!
//! The paper: *"'simple' parallelization techniques – such as taking a fixed
//! number of samples before each check of the stopping condition – are not
//! enough. Since they fail to overlap computation and aggregation, they are
//! known to not scale well, even on shared-memory machines."* This module
//! exists so the ablation experiment (`exp_ablation_naive`) can quantify
//! that claim against [`crate::kadabra_shared`].

use crate::bounds::stopping_condition;
use crate::config::KadabraConfig;
use crate::phases::{calibration_samples_for_thread, diameter_phase, scores_from_counts};
use crate::result::{BetweennessResult, PhaseTimings, SamplingStats};
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::sync::{AtomicBool, Ordering};
use crate::{bounds, calibration::Calibration};
use kadabra_graph::Graph;
use kadabra_telemetry::Stopwatch;
use parking_lot::Mutex;
use std::sync::Barrier;

/// Runs the naive fork-join parallelization with `threads` sampling threads.
pub fn kadabra_naive_parallel(g: &Graph, cfg: &KadabraConfig, threads: usize) -> BetweennessResult {
    cfg.validate();
    assert!(threads >= 1);
    let n = g.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");

    let (vd, diameter_time) = diameter_phase(g, cfg);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Calibration identical to the epoch-based version (single-threaded here;
    // the naive scheme is about the adaptive phase).
    let calib_start = Stopwatch::start();
    let mut sampler0 = ThreadSampler::new(n, cfg.seed, 0, 0);
    let mut calib_counts = vec![0u64; n];
    let tau0 = calibration_samples_for_thread(g, &mut sampler0, &mut calib_counts, cfg, omega, 1);
    let calibration = Calibration::from_counts(&calib_counts, tau0, cfg);
    let calibration_time = calib_start.elapsed();

    let ads_start = Stopwatch::start();
    let n0 = cfg.n0(threads).max(8); // per-thread samples per round
    let barrier = Barrier::new(threads);
    let terminate = AtomicBool::new(false);
    let worker_counts: Vec<Mutex<Vec<u64>>> =
        (0..threads).map(|_| Mutex::new(vec![0u64; n])).collect();

    let mut acc = vec![0u64; n];
    let mut tau: u64 = 0;
    let mut stats = SamplingStats::default();

    crossbeam::scope(|s| {
        for t in 1..threads {
            let barrier = &barrier;
            let terminate = &terminate;
            let worker_counts = &worker_counts;
            s.spawn(move |_| {
                let mut sampler = ThreadSampler::new(n, cfg.seed, 0, ADS_STREAM_OFFSET + t);
                loop {
                    // xtask: allow(comm-error-flow) — std::sync::Barrier
                    // rendezvous (name-collides with the comm `wait`).
                    barrier.wait(); // round start
                    if terminate.load(Ordering::Acquire) {
                        break;
                    }
                    {
                        let mut counts = worker_counts[t].lock();
                        sampler.sample_batch(g, n0, |interior| {
                            for &v in interior {
                                counts[v as usize] += 1;
                            }
                        });
                    }
                    // xtask: allow(comm-error-flow) — std::sync::Barrier
                    // rendezvous (name-collides with the comm `wait`).
                    barrier.wait(); // round end
                }
            });
        }

        let mut sampler = ThreadSampler::new(n, cfg.seed, 0, ADS_STREAM_OFFSET);
        let mut stop = false;
        loop {
            if stop {
                terminate.store(true, Ordering::Release);
            }
            // xtask: allow(comm-error-flow) — std::sync::Barrier rendezvous
            // (name-collides with the comm `wait`).
            barrier.wait(); // round start
            if stop {
                break;
            }
            {
                let mut counts = worker_counts[0].lock();
                sampler.sample_batch(g, n0, |interior| {
                    for &v in interior {
                        counts[v as usize] += 1;
                    }
                });
            }
            let wait_start = Stopwatch::start();
            // xtask: allow(comm-error-flow) — std::sync::Barrier rendezvous
            // (name-collides with the comm `wait`).
            barrier.wait(); // round end: blocking, no overlap — the point
            stats.barrier_wait += wait_start.elapsed();

            let agg_start = Stopwatch::start();
            for wc in &worker_counts {
                let mut counts = wc.lock();
                for (a, c) in acc.iter_mut().zip(counts.iter_mut()) {
                    *a += *c;
                    *c = 0;
                }
            }
            stats.reduce_time += agg_start.elapsed();
            stats.comm_bytes += (threads * n * 8) as u64;
            tau += n0 * threads as u64;
            stats.epochs += 1;

            let check_start = Stopwatch::start();
            stop = stopping_condition(
                &acc,
                tau,
                cfg.epsilon,
                omega,
                &calibration.delta_l,
                &calibration.delta_u,
            );
            stats.check_time += check_start.elapsed();
        }
    })
    // xtask: allow(unwrap) — a sampler-thread panic is a bug; abort with it.
    .expect("naive sampling scope");
    stats.samples = tau;

    BetweennessResult {
        scores: scores_from_counts(&acc, tau),
        samples: tau,
        omega,
        vertex_diameter: vd,
        timings: PhaseTimings {
            diameter: diameter_time,
            calibration: calibration_time,
            adaptive_sampling: ads_start.elapsed(),
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::generators::{grid, GridConfig};

    #[test]
    fn naive_terminates_and_is_accurate() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        for threads in [1, 3] {
            let r = kadabra_naive_parallel(&g, &cfg, threads);
            let exact = brandes(&g);
            for (a, e) in r.scores.iter().zip(&exact) {
                assert!((a - e).abs() <= cfg.epsilon, "threads={threads}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn sample_accounting_is_exact() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.1, 0.1);
        let r = kadabra_naive_parallel(&g, &cfg, 2);
        // Every round adds exactly n0 * threads samples.
        let n0 = cfg.n0(2).max(8);
        assert_eq!(r.samples, r.stats.epochs * n0 * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.1, 0.1);
        let a = kadabra_naive_parallel(&g, &cfg, 3);
        let b = kadabra_naive_parallel(&g, &cfg, 3);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.samples, b.samples);
    }
}
