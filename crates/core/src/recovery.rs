//! Shrink-and-continue recovery (DESIGN.md §10): sampling-state checkpoints
//! and the recovery protocol shared by the flat ([`crate::mpi`]) and epoch
//! ([`crate::epoch_mpi`]) MPI drivers.
//!
//! # The checkpoint: a ledger of globally-reduced frames
//!
//! Each rank keeps a [`SampleLedger`] — the element-wise sum of every state
//! frame it has contributed to a reduction *whose completion it observed*.
//! Because a simulated collective completes only once **all** members have
//! joined (the non-blocking-barrier property the paper relies on in Section
//! IV-C), "my reduce completed" is a global fact: either every live rank
//! confirms a round into its ledger, or none does. The ledger is therefore a
//! prefix-consistent checkpoint that costs one vector add per epoch — no
//! extra communication, no stable storage.
//!
//! # The protocol
//!
//! When a collective fails with [`CommError::RankFailed`], every survivor
//! calls [`shrink_and_rebuild`]:
//!
//! 1. [`Communicator::shrink`] builds the survivor communicator (ULFM's
//!    `MPI_Comm_shrink`);
//! 2. an all-reduce of the survivors' ledgers rebuilds the global sampling
//!    state `S := Σ ledgers` at every rank — in particular at the new rank
//!    0, which resumes the stopping-condition bookkeeping.
//!
//! If another member dies *during* recovery, the all-reduce itself fails
//! with `RankFailed` and the loop shrinks again; the protocol terminates
//! because each iteration removes at least one member.
//!
//! # Why (ε, δ) is preserved
//!
//! The rebuilt state discards two kinds of samples: the dead rank's entire
//! history, and any frame in flight (snapshotted but with an unobserved
//! reduction) at the failure point. Both are simply i.i.d. samples that are
//! *never counted* — the estimator proceeds exactly as if they had not been
//! drawn. The adaptive stopping rule re-evaluates on the rebuilt `[Σ c̃, τ]`,
//! so the guarantee "P(∀v: |c̃(v) − c(v)| ≤ ε) ≥ 1 − δ at the τ where we
//! stop" is untouched; a crash only delays the stop (smaller τ after
//! rebuild) — it never double-counts or fabricates samples. Survivors
//! re-derive the batch size `n0 = 1000/(PT)^1.33` for the shrunk world, so
//! post-recovery scheduling matches what a fresh launch at that scale would
//! do.

use kadabra_mpisim::{CommError, Communicator};
use kadabra_telemetry::{CounterId, EventWriter, SpanId};

/// Element-wise sum of every state frame this rank has contributed to an
/// *observed-complete* reduction: `[per-vertex counts.., τ]`, the same
/// layout the drivers reduce. This is the rank's recovery checkpoint.
pub struct SampleLedger {
    frame: Vec<u64>,
}

impl SampleLedger {
    /// An empty ledger for an `n`-vertex graph (frame length `n + 1`).
    pub fn new(n: usize) -> Self {
        SampleLedger { frame: vec![0u64; n + 1] }
    }

    /// Confirms a frame whose reduction this rank observed completing.
    /// Must be called exactly once per completed reduction, with the same
    /// frame that was reduced — the conservation invariant the chaos suite
    /// checks is `global state == Σ survivor ledgers`, element-wise.
    pub fn confirm(&mut self, frame: &[u64]) {
        debug_assert_eq!(frame.len(), self.frame.len());
        for (a, &x) in self.frame.iter_mut().zip(frame) {
            *a += x;
        }
    }

    /// Retracts a frame of previously confirmed mass — the inverse of
    /// [`SampleLedger::confirm`], used by the streaming-update path when a
    /// retained sample is invalidated by an edge batch and its interior
    /// counts must leave the checkpoint before the redrawn replacement is
    /// confirmed. Every element of `frame` must be ≤ the ledger's current
    /// value (a rank only ever retracts mass it confirmed itself).
    pub fn retract(&mut self, frame: &[u64]) {
        debug_assert_eq!(frame.len(), self.frame.len());
        for (a, &x) in self.frame.iter_mut().zip(frame) {
            debug_assert!(*a >= x, "retracting mass the ledger never confirmed");
            *a -= x;
        }
    }

    /// The accumulated checkpoint frame.
    pub fn frame(&self) -> &[u64] {
        &self.frame
    }

    /// Total confirmed sample count τ (the last frame slot).
    pub fn tau(&self) -> u64 {
        // xtask: allow(unwrap) — `new` guarantees a non-empty frame.
        *self.frame.last().unwrap()
    }

    /// Serializes the ledger as a self-describing checkpoint: magic tag,
    /// frame length, the frame words, and a closing checksum — all
    /// little-endian `u64`s, so the byte image is identical across hosts.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.frame.len() + 3) * 8);
        out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.frame.len() as u64).to_le_bytes());
        for &w in &self.frame {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&checksum(&self.frame).to_le_bytes());
        out
    }

    /// Restores a ledger from a [`SampleLedger::to_bytes`] image, verifying
    /// the magic tag, declared length, and checksum. A ledger restored from
    /// the last checkpoint and then refined further conserves the invariant
    /// `frame == Σ confirmed frames since new()` — the property the
    /// checkpoint round-trip proptests pin down.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let word = |i: usize| -> Result<u64, CheckpointError> {
            let at = i * 8;
            let end = at + 8;
            if end > bytes.len() {
                return Err(CheckpointError::Truncated);
            }
            // xtask: allow(unwrap) — the slice is exactly 8 bytes by construction.
            Ok(u64::from_le_bytes(bytes[at..end].try_into().unwrap()))
        };
        if word(0)? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let len = usize::try_from(word(1)?).map_err(|_| CheckpointError::Truncated)?;
        if bytes.len() != (len + 3) * 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut frame = Vec::with_capacity(len);
        for i in 0..len {
            frame.push(word(2 + i)?);
        }
        if word(2 + len)? != checksum(&frame) {
            return Err(CheckpointError::Corrupt);
        }
        Ok(SampleLedger { frame })
    }
}

/// Magic tag opening a serialized [`SampleLedger`] checkpoint.
const CHECKPOINT_MAGIC: u64 = 0x4b44_4252_4c47_5231; // "KDBRLGR1"

/// Order-sensitive checksum over the frame words (a rotate-xor fold), so a
/// corrupted or reordered image is rejected rather than silently restored.
fn checksum(frame: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &w in frame {
        h = h.rotate_left(7) ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    h
}

/// Why a checkpoint image failed to restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image is shorter than its header declares (or not word-aligned).
    Truncated,
    /// The image does not begin with the ledger checkpoint magic tag.
    BadMagic,
    /// The checksum does not match the frame words.
    Corrupt,
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint image truncated"),
            CheckpointError::BadMagic => write!(f, "not a ledger checkpoint (bad magic)"),
            CheckpointError::Corrupt => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

/// One recovery: shrinks `comm` until the survivor set is stable, then
/// rebuilds the global sampling state from the survivors' ledgers. Returns
/// the survivor communicator and the rebuilt state (identical at every
/// survivor).
///
/// Records a [`SpanId::Recovery`] span and counts the excluded members into
/// [`CounterId::RanksLost`] on this rank's telemetry writer.
///
/// Errors other than `RankFailed` (timeout, poison) abort recovery — they
/// indicate an algorithm bug, not a crash fault — and `RankFailed` with this
/// rank's own identity is returned so a rank that dies mid-recovery reports
/// itself dead.
pub fn shrink_and_rebuild(
    comm: &Communicator,
    ledger: &SampleLedger,
    w: &EventWriter,
) -> Result<(Communicator, Vec<u64>), CommError> {
    let sp = w.begin(SpanId::Recovery);
    let mut prev_size = comm.size();
    let mut small = comm.shrink()?;
    loop {
        let lost = prev_size - small.size();
        if lost > 0 {
            w.count(CounterId::RanksLost, lost as u64);
        }
        match small.allreduce_sum_u64(ledger.frame()) {
            Ok(rebuilt) => {
                w.end(sp);
                return Ok((small, rebuilt));
            }
            // Another member died while recovery was in flight: shrink the
            // already-shrunk communicator again. Terminates — every
            // iteration excludes at least the newly dead member.
            Err(CommError::RankFailed { rank }) if rank != small.world_rank() => {
                prev_size = small.size();
                small = small.shrink()?;
            }
            Err(e) => {
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_mpisim::{FaultPlan, Universe};
    use kadabra_telemetry::Telemetry;

    #[test]
    fn ledger_accumulates_elementwise() {
        let mut l = SampleLedger::new(3);
        l.confirm(&[1, 0, 2, 1]);
        l.confirm(&[0, 5, 1, 2]);
        assert_eq!(l.frame(), &[1, 5, 3, 3]);
        assert_eq!(l.tau(), 3);
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let mut l = SampleLedger::new(4);
        l.confirm(&[3, 1, 4, 1, 5]);
        l.confirm(&[9, 2, 6, 5, 3]);
        let bytes = l.to_bytes();
        let restored = SampleLedger::from_bytes(&bytes).unwrap();
        assert_eq!(restored.frame(), l.frame());
        assert_eq!(restored.tau(), 8);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let l = SampleLedger::new(2);
        let good = l.to_bytes();
        assert!(matches!(SampleLedger::from_bytes(&good[..7]), Err(CheckpointError::Truncated)));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        assert!(matches!(SampleLedger::from_bytes(&bad_magic), Err(CheckpointError::BadMagic)));
        let mut flipped = good.clone();
        flipped[16] ^= 0x40; // first frame word
        assert!(matches!(SampleLedger::from_bytes(&flipped), Err(CheckpointError::Corrupt)));
        let mut short = good;
        short.truncate(good_len_minus_word(&l));
        assert!(matches!(SampleLedger::from_bytes(&short), Err(CheckpointError::Truncated)));
    }

    fn good_len_minus_word(l: &SampleLedger) -> usize {
        (l.frame().len() + 2) * 8
    }

    #[test]
    fn rebuild_sums_survivor_ledgers_and_counts_losses() {
        // Rank 1 of 3 dies at its first collective; survivors recover and
        // the rebuilt state is exactly the element-wise survivor-ledger sum.
        let tel = Telemetry::stats_only();
        let plan = FaultPlan::ideal(5).with_crash_at_collective(1, 0);
        let out = Universe::run_with_plan(3, plan, |comm| {
            let w = tel.writer(comm.rank() as u32, 0);
            let mut ledger = SampleLedger::new(2);
            ledger.confirm(&[comm.rank() as u64 + 1, 0, 10]);
            match comm.allreduce_sum_u64(&[0, 0, 0]) {
                Err(CommError::RankFailed { rank }) if rank == comm.world_rank() => None,
                Err(CommError::RankFailed { .. }) => {
                    let (small, rebuilt) = shrink_and_rebuild(&comm, &ledger, &w).unwrap();
                    Some((small.members().to_vec(), rebuilt))
                }
                other => panic!("expected a rank failure, got {other:?}"),
            }
        });
        assert!(out[1].is_none());
        for o in [&out[0], &out[2]] {
            let (members, rebuilt) = o.as_ref().unwrap();
            assert_eq!(members, &[0, 2]);
            // Ledgers of ranks 0 and 2: [1,0,10] + [3,0,10].
            assert_eq!(rebuilt, &[4, 0, 20]);
        }
        let summary = tel.summary();
        // Both survivors observed the same single-member loss.
        assert_eq!(summary.counter(CounterId::RanksLost), 2);
    }
}
