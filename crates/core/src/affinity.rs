//! Best-effort worker placement: core pinning and first-touch page sweeps.
//!
//! The paper's cluster runs one MPI rank per NUMA socket with 12 sampling
//! threads each (Section IV-E), relying on the OS to keep threads near the
//! memory they sample from. This module implements the explicit version for
//! the shared-memory drivers: pin each sampling worker to a core derived
//! from its `(rank, thread)` coordinates, then sweep the CSR pages from the
//! pinned thread so a first-touch NUMA policy places (or at least warms)
//! them on the worker's node.
//!
//! Everything here is *best-effort*: pinning uses a raw `sched_setaffinity`
//! syscall on x86-64 Linux (no `libc` dependency exists in this workspace)
//! and compiles to a no-op `false` elsewhere. Correctness never depends on
//! placement — the knobs ([`crate::config::KernelOptions`]) only move work
//! closer to memory.

/// Highest CPU index the affinity mask covers (16 × 64 bits).
const MAX_CPUS: usize = 1024;

/// Pins the calling thread to `cpu`. Returns `true` on success, `false` on
/// any failure (out-of-range cpu, unsupported platform, kernel rejection) —
/// callers treat failure as "run unpinned".
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= MAX_CPUS {
        return false;
    }
    let mut mask = [0u64; MAX_CPUS / 64];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // sched_setaffinity(pid = 0 → calling thread, len, mask).
    let nr_sched_setaffinity: i64 = 203;
    let ret: i64;
    // SAFETY: the syscall reads `mask` (valid for `size_of_val(&mask)`
    // bytes, which is the length passed) and writes no user memory; clobbers
    // are limited to rcx/r11 per the x86-64 syscall ABI, declared below.
    #[allow(unsafe_code)]
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr_sched_setaffinity => ret,
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Unsupported platform: report failure so callers run unpinned.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(cpu: usize) -> bool {
    let _ = cpu;
    false
}

/// Pins a sampling worker to the core its `(rank, thread)` coordinates map
/// to: ranks own contiguous blocks of `threads_per_rank` cores (the paper's
/// one-rank-per-socket layout), wrapped over the cores actually present.
pub fn pin_worker(rank: usize, thread: usize, threads_per_rank: usize) -> bool {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    pin_current_thread((rank * threads_per_rank.max(1) + thread) % cpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_cpu_is_rejected() {
        assert!(!pin_current_thread(MAX_CPUS));
        assert!(!pin_current_thread(usize::MAX));
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn pinning_to_cpu0_succeeds_on_linux() {
        // CPU 0 always exists; the syscall must accept the mask. Restore a
        // wide mask afterwards is unnecessary: the test thread is transient.
        assert!(pin_current_thread(0));
    }

    #[test]
    fn worker_mapping_wraps_over_present_cores() {
        // Must not panic or pin out of range regardless of coordinates.
        let _ = pin_worker(7, 11, 12);
        let _ = pin_worker(0, 0, 0);
        assert!(pin_worker(0, 0, 1) || cfg!(not(all(target_os = "linux", target_arch = "x86_64"))));
    }
}
