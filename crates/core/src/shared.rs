//! Shared-memory parallel KADABRA using the epoch-based framework — the
//! state-of-the-art baseline of the paper (Ref. [24], van der Grinten et
//! al., Euro-Par 2019), i.e. Algorithm 2 restricted to a single process.
//!
//! `T − 1` worker threads sample wait-free into their per-epoch state
//! frames; thread 0 interleaves sampling with epoch transitions,
//! aggregation and the stopping-condition check, overlapping all
//! coordination with its own sampling.

use crate::bounds::stopping_condition;
use crate::config::KadabraConfig;
use crate::phases::{calibration_samples_for_thread, diameter_phase, scores_from_counts};
use crate::result::{BetweennessResult, PhaseTimings, SamplingStats};
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::{bounds, calibration::Calibration};
use kadabra_epoch::EpochFramework;
use kadabra_graph::Graph;
use kadabra_telemetry::{CounterId, SpanId, Telemetry, ThreadRecorder};
use std::time::Duration;

/// Derives the Section III-A per-phase breakdown from a rank's thread-0
/// recorder. Together with [`sampling_stats_from`] this is the **single
/// timing code path** shared by every driver: the drivers record telemetry
/// spans, and the legacy result types are projections of those spans.
pub fn phase_timings_from(rec: &ThreadRecorder) -> PhaseTimings {
    let d = |s: SpanId| Duration::from_nanos(rec.span_ns(s));
    PhaseTimings {
        diameter: d(SpanId::Diameter),
        calibration: d(SpanId::Calibration),
        adaptive_sampling: d(SpanId::AdaptiveSampling),
    }
}

/// Derives Table II-style sampling statistics from a rank's thread-0
/// recorder. `samples` (τ) and `comm_bytes` are driver-level quantities the
/// caller fills in afterwards.
pub fn sampling_stats_from(rec: &ThreadRecorder) -> SamplingStats {
    let d = |s: SpanId| Duration::from_nanos(rec.span_ns(s));
    SamplingStats {
        epochs: rec.counter(CounterId::Epochs),
        samples: 0,
        barrier_wait: d(SpanId::IbarrierWait) + d(SpanId::BcastStop),
        reduce_time: d(SpanId::IreduceWait) + d(SpanId::Reduce) + d(SpanId::FrameAggregate),
        transition_wait: d(SpanId::TransitionWait),
        check_time: d(SpanId::Check),
        comm_bytes: 0,
    }
}

/// Runs epoch-based shared-memory KADABRA with `threads` sampling threads.
pub fn kadabra_shared(g: &Graph, cfg: &KadabraConfig, threads: usize) -> BetweennessResult {
    kadabra_shared_traced(g, cfg, threads, &Telemetry::stats_only())
}

/// [`kadabra_shared`] recording into an explicit [`Telemetry`] registry
/// (spans, counters and — in tracing mode — the Chrome-trace event stream).
pub fn kadabra_shared_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    threads: usize,
    tel: &Telemetry,
) -> BetweennessResult {
    cfg.validate();
    assert!(threads >= 1, "need at least one thread");
    let n = g.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");
    let w = tel.writer(0, 0);

    // Cache-aware relabeling: all sampling threads share the degree-relabeled
    // CSR; the final scores are mapped back to the caller's ids
    // (DESIGN.md §11).
    let (rg, perm) = g.relabel_by_degree();
    let g = &rg;

    // Phase 1: diameter (sequential).
    let sp = w.begin(SpanId::Diameter);
    let (vd, _) = diameter_phase(g, cfg);
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Phase 2: calibration — pleasingly parallel sampling, sequential δ fit.
    let sp_calib = w.begin(SpanId::Calibration);
    let mut partials: Vec<(Vec<u64>, u64)> = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    if cfg.kernel.pin_threads {
                        let _ = crate::affinity::pin_worker(0, t, threads);
                    }
                    if cfg.kernel.first_touch {
                        let _ = g.touch_pages();
                    }
                    let mut sampler = ThreadSampler::with_kernel(n, cfg.seed, 0, t, cfg.kernel);
                    let mut counts = vec![0u64; n];
                    let taken = calibration_samples_for_thread(
                        g,
                        &mut sampler,
                        &mut counts,
                        cfg,
                        omega,
                        threads,
                    );
                    (counts, taken)
                })
            })
            .collect();
        for h in handles {
            // xtask: allow(unwrap) — a sampler-thread panic is a bug; abort
            // the computation with its message.
            partials.push(h.join().expect("calibration worker"));
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("calibration scope");
    let mut calib_counts = vec![0u64; n];
    let mut tau0 = 0;
    for (counts, taken) in partials {
        for (a, c) in calib_counts.iter_mut().zip(counts) {
            *a += c;
        }
        tau0 += taken;
    }
    let calibration = Calibration::from_counts(&calib_counts, tau0, cfg);
    w.end(sp_calib);

    // Phase 3: epoch-based adaptive sampling.
    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let fw = EpochFramework::new(n, threads);
    let n0 = cfg.n0(threads);
    let mut acc = vec![0u64; n];
    let mut tau: u64 = 0;

    crossbeam::scope(|s| {
        for t in 1..threads {
            let fw = &fw;
            let tw = tel.writer(0, t as u32);
            s.spawn(move |_| {
                if cfg.kernel.pin_threads {
                    let _ = crate::affinity::pin_worker(0, t, threads);
                }
                let mut sampler =
                    ThreadSampler::with_kernel(n, cfg.seed, 0, ADS_STREAM_OFFSET + t, cfg.kernel);
                let mut h = fw.handle(t);
                let mut drawn = 0u64;
                // Small batches amortize pair drawing while still polling
                // the epoch command often enough to stay within the
                // framework's one-epoch lag bound.
                const WORKER_CHUNK: u64 = 8;
                while !fw.should_terminate() {
                    sampler.sample_batch(g, WORKER_CHUNK, |interior| h.record_sample(interior));
                    drawn += WORKER_CHUNK;
                    fw.check_transition(&mut h);
                }
                // One flush at exit keeps the hot loop free of stores.
                tw.count(CounterId::Samples, drawn);
                let (rounds, lane_rounds) = sampler.kernel_occupancy();
                tw.count(CounterId::KernelRounds, rounds);
                tw.count(CounterId::KernelLaneRounds, lane_rounds);
            });
        }

        // Thread 0: sampling + coordination (Algorithm 2, lines 10-31).
        if cfg.kernel.pin_threads {
            let _ = crate::affinity::pin_worker(0, 0, threads);
        }
        let mut sampler = ThreadSampler::with_kernel(n, cfg.seed, 0, ADS_STREAM_OFFSET, cfg.kernel);
        let mut h = fw.handle(0);
        let mut epoch = 0u32;
        loop {
            w.set_epoch(epoch);
            let sp = w.begin(SpanId::SampleBatch);
            sampler.sample_batch(g, n0, |interior| h.record_sample(interior));
            w.end(sp);
            fw.force_transition(&mut h, epoch);
            let sp = w.begin(SpanId::TransitionWait);
            let mut overlapped = 0u64;
            while !fw.transition_done(epoch) {
                // Overlapped: h already advanced, so these samples land in
                // the next epoch's frame.
                let interior = sampler.sample(g);
                h.record_sample(interior);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::Samples, n0 + overlapped);

            let sp = w.begin(SpanId::FrameAggregate);
            tau += fw.aggregate_epoch(epoch, &mut acc);
            w.end(sp);
            w.count(CounterId::BytesReduced, (fw.frame_bytes() * threads) as u64);
            w.count(CounterId::Epochs, 1);

            let sp = w.begin(SpanId::Check);
            let stop = stopping_condition(
                &acc,
                tau,
                cfg.epsilon,
                omega,
                &calibration.delta_l,
                &calibration.delta_u,
            );
            w.end(sp);
            if stop {
                fw.signal_termination();
                break;
            }
            epoch += 1;
        }
        let (rounds, lane_rounds) = sampler.kernel_occupancy();
        w.count(CounterId::KernelRounds, rounds);
        w.count(CounterId::KernelLaneRounds, lane_rounds);
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("adaptive sampling scope");
    w.end(sp_ads);

    let rec = w.recorder();
    let mut stats = sampling_stats_from(rec);
    stats.samples = tau;
    stats.comm_bytes = rec.counter(CounterId::BytesReduced);

    BetweennessResult {
        // Map the relabeled-id scores back to the caller's original ids.
        scores: perm.unrelabel(&scores_from_counts(&acc, tau)),
        samples: tau,
        omega,
        vertex_diameter: vd,
        timings: phase_timings_from(rec),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};

    #[test]
    fn single_thread_matches_guarantee() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.05, 0.1);
        let r = kadabra_shared(&g, &cfg, 1);
        let exact = brandes(&g);
        for (a, e) in r.scores.iter().zip(&exact) {
            assert!((a - e).abs() <= cfg.epsilon, "{a} vs {e}");
        }
    }

    #[test]
    fn multi_thread_accuracy() {
        let g = gnm(GnmConfig { n: 60, m: 150, seed: 5 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.04, delta: 0.1, seed: 11, ..Default::default() };
        let r = kadabra_shared(&lcc, &cfg, 4);
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn terminates_with_various_thread_counts() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        for threads in [1, 2, 3, 5] {
            let r = kadabra_shared(&g, &KadabraConfig::new(0.1, 0.1), threads);
            assert!(r.samples > 0, "threads={threads}");
            assert!(r.stats.epochs >= 1);
        }
    }

    #[test]
    fn aggregated_tau_counts_only_aggregated_epochs() {
        // τ must equal the sum actually folded into the scores: scores must
        // sum to τ·(avg interior length)/τ — sanity-check score normalization
        // via a vertex sum identity instead of internals: sum of c̃ equals
        // τ·E[interior length], so every score is ≤ 1.
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let r = kadabra_shared(&g, &KadabraConfig::new(0.08, 0.1), 3);
        for s in &r.scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn comm_bytes_scale_with_epochs_and_threads() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let r = kadabra_shared(&g, &KadabraConfig::new(0.1, 0.1), 2);
        let frame = 36 * 4 + 8;
        assert_eq!(r.stats.comm_bytes, r.stats.epochs * 2 * frame);
    }

    /// The in-process analogue of the paper's cross-process epoch bound:
    /// while workers run this module's sampling loop, every thread's
    /// published epoch (via the new observability hooks) must stay within
    /// `[commanded − 1, commanded]` — the two-frames-per-thread guarantee
    /// the Euro-Par'19 framework is built on.
    #[test]
    fn thread_epochs_stay_within_one_of_commanded() {
        use kadabra_epoch::EpochFramework;
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let n = g.num_nodes();
        let threads = 3;
        let fw = EpochFramework::new(n, threads);
        crossbeam::scope(|s| {
            for t in 1..threads {
                let fw = &fw;
                let g = &g;
                s.spawn(move |_| {
                    let mut sampler = ThreadSampler::new(n, 7, 0, ADS_STREAM_OFFSET + t);
                    let mut h = fw.handle(t);
                    while !fw.should_terminate() {
                        h.record_sample(sampler.sample(g));
                        fw.check_transition(&mut h);
                    }
                });
            }
            let mut sampler = ThreadSampler::new(n, 7, 0, ADS_STREAM_OFFSET);
            let mut h = fw.handle(0);
            let mut acc = vec![0u64; n];
            for epoch in 0..20u32 {
                for _ in 0..50 {
                    h.record_sample(sampler.sample(&g));
                }
                fw.force_transition(&mut h, epoch);
                while !fw.transition_done(epoch) {
                    std::hint::spin_loop();
                }
                // Audit the hook bound at the strongest observable point.
                let commanded = fw.commanded_epoch();
                assert_eq!(commanded, epoch + 1);
                for t in 0..threads {
                    let te = fw.thread_epoch(t);
                    assert!(
                        te + 1 >= commanded && te <= commanded,
                        "thread {t} epoch {te} outside [{}, {commanded}]",
                        commanded - 1
                    );
                }
                fw.aggregate_epoch(epoch, &mut acc);
            }
            fw.signal_termination();
        })
        .unwrap();
    }
}
