//! Sequential KADABRA — the original algorithm of Borassi & Natale
//! (Ref. [7] of the paper), single-threaded. This is the semantic reference
//! implementation every parallel mode is tested against.

use crate::bounds::stopping_condition;
use crate::config::KadabraConfig;
use crate::phases::{calibration_samples_for_thread, diameter_phase, scores_from_counts};
use crate::result::BetweennessResult;
use crate::sampler::ThreadSampler;
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration};
use kadabra_graph::Graph;
use kadabra_telemetry::{CounterId, SpanId, Telemetry};

/// Runs sequential KADABRA on `g`.
///
/// `g` is typically the largest connected component of the network under
/// study (the paper's experimental setup); disconnected inputs are legal —
/// pairs in different components contribute samples with empty interiors.
pub fn kadabra_sequential(g: &Graph, cfg: &KadabraConfig) -> BetweennessResult {
    kadabra_sequential_traced(g, cfg, &Telemetry::stats_only())
}

/// [`kadabra_sequential`] recording into an explicit [`Telemetry`] registry.
pub fn kadabra_sequential_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    tel: &Telemetry,
) -> BetweennessResult {
    cfg.validate();
    let n = g.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");
    let w = tel.writer(0, 0);

    // Cache-aware relabeling: the whole run samples on the degree-relabeled
    // CSR (hot vertices packed at the low end of the id space) and the final
    // scores are mapped back to the caller's ids (DESIGN.md §11).
    let (rg, perm) = g.relabel_by_degree();
    let g = &rg;

    let sp = w.begin(SpanId::Diameter);
    let (vd, _) = diameter_phase(g, cfg);
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    if cfg.kernel.pin_threads {
        let _ = crate::affinity::pin_worker(0, 0, 1);
    }
    if cfg.kernel.first_touch {
        let _ = g.touch_pages();
    }

    let sp = w.begin(SpanId::Calibration);
    let mut sampler = ThreadSampler::with_kernel(n, cfg.seed, 0, 0, cfg.kernel);
    let mut calib_counts = vec![0u64; n];
    let tau0 = calibration_samples_for_thread(g, &mut sampler, &mut calib_counts, cfg, omega, 1);
    let calibration = Calibration::from_counts(&calib_counts, tau0, cfg);
    w.end(sp);

    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let mut sampler = ThreadSampler::with_kernel(n, cfg.seed, 0, 1, cfg.kernel);
    let mut counts = vec![0u64; n];
    let mut tau: u64 = 0;
    let n0 = cfg.n0(1);
    let mut epoch = 0u32;
    loop {
        w.set_epoch(epoch);
        let sp = w.begin(SpanId::SampleBatch);
        sampler.sample_batch(g, n0, |interior| {
            for &v in interior {
                counts[v as usize] += 1;
            }
        });
        w.end(sp);
        tau += n0;
        w.count(CounterId::Samples, n0);
        w.count(CounterId::Epochs, 1);
        let sp = w.begin(SpanId::Check);
        let stop = stopping_condition(
            &counts,
            tau,
            cfg.epsilon,
            omega,
            &calibration.delta_l,
            &calibration.delta_u,
        );
        w.end(sp);
        if stop {
            break;
        }
        epoch += 1;
    }
    let (rounds, lane_rounds) = sampler.kernel_occupancy();
    w.count(CounterId::KernelRounds, rounds);
    w.count(CounterId::KernelLaneRounds, lane_rounds);
    w.end(sp_ads);

    let rec = w.recorder();
    let mut stats = sampling_stats_from(rec);
    stats.samples = tau;

    BetweennessResult {
        // Map the relabeled-id scores back to the caller's original ids.
        scores: perm.unrelabel(&scores_from_counts(&counts, tau)),
        samples: tau,
        omega,
        vertex_diameter: vd,
        timings: phase_timings_from(rec),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};

    #[test]
    fn terminates_and_respects_omega() {
        let g = gnm(GnmConfig { n: 40, m: 100, seed: 1 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig::new(0.05, 0.1);
        let r = kadabra_sequential(&lcc, &cfg);
        assert!(r.samples > 0);
        // τ may overshoot ω by at most one epoch worth of samples.
        assert!(r.samples <= r.omega + cfg.n0(1));
        assert_eq!(r.scores.len(), lcc.num_nodes());
    }

    #[test]
    fn scores_within_epsilon_of_exact() {
        let g = gnm(GnmConfig { n: 50, m: 140, seed: 2 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.03, delta: 0.1, seed: 77, ..Default::default() };
        let r = kadabra_sequential(&lcc, &cfg);
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} > ε");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig { epsilon: 0.1, delta: 0.1, seed: 3, ..Default::default() };
        let a = kadabra_sequential(&g, &cfg);
        let b = kadabra_sequential(&g, &cfg);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.stats.epochs, b.stats.epochs);
    }

    #[test]
    fn tighter_epsilon_needs_more_samples() {
        let g = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.0, seed: 0 });
        let loose = kadabra_sequential(&g, &KadabraConfig::new(0.2, 0.1));
        let tight = kadabra_sequential(&g, &KadabraConfig::new(0.02, 0.1));
        assert!(tight.samples > loose.samples);
        assert!(tight.omega > loose.omega);
    }

    #[test]
    fn path_graph_scores_sensible() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cfg = KadabraConfig::new(0.05, 0.1);
        let r = kadabra_sequential(&g, &cfg);
        // Middle vertex has the highest betweenness on a path.
        let top = r.top_k(1)[0].0;
        assert_eq!(top, 2);
    }

    #[test]
    fn stats_are_populated() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let r = kadabra_sequential(&g, &KadabraConfig::new(0.1, 0.1));
        assert!(r.stats.epochs >= 1);
        assert_eq!(r.stats.samples, r.samples);
        assert!(r.timings.total().as_nanos() > 0);
    }
}
