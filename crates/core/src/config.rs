//! Algorithm configuration.

/// Parameters of a KADABRA run. The defaults mirror the paper's evaluation
/// (Section V: δ = 0.1 as in the original KADABRA paper) except for ε, which
/// defaults to 0.01 because the experiment graphs in this reproduction are
/// smaller than the paper's (DESIGN.md §3 — harnesses scale ε per
/// experiment; `KADABRA_EPS` overrides it globally).
#[derive(Debug, Clone, Copy)]
pub struct KadabraConfig {
    /// Absolute approximation error ε: with probability ≥ 1 − δ, every
    /// returned score is within ±ε of the true betweenness.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Master RNG seed; every thread/rank derives a deterministic stream.
    pub seed: u64,
    /// Universal constant `c` of the ω bound (KADABRA uses 0.5).
    pub c: f64,
    /// Base of the epoch-length rule (Section IV-D): thread 0 takes
    /// `max(1, n0_base / (P·T)^n0_exponent)` samples between stopping-
    /// condition checks.
    pub n0_base: f64,
    /// Exponent of the epoch-length rule (Section IV-D; tuned to 1.33 in
    /// Ref. [24]). The paper prints the rule as `1000(PT)^{1.33}`, but its
    /// own Section IV-D says epochs must get *shorter* as P grows, so the
    /// exponent is applied as a decay (see DESIGN.md §5).
    pub n0_exponent: f64,
    /// Number of non-adaptive calibration samples (phase 2); `None` derives
    /// `clamp(ω/25, 200, 100_000)`.
    pub calibration_samples: Option<u64>,
    /// BFS budget for the iFUB diameter phase; 0 = run to certainty. iFUB
    /// can degenerate to Θ(|V|) BFS runs on low-diameter graphs, and KADABRA
    /// only needs an upper bound, so the default budget is small. When
    /// the budget is exhausted the (valid) upper bound `2·ecc` is used,
    /// which only affects running time, not correctness.
    pub diameter_bfs_budget: u32,
    /// Fraction of the failure budget spread uniformly over all vertices
    /// during calibration (keeps δ_L(v), δ_U(v) > 0 everywhere).
    pub calibration_floor: f64,
    /// Sampling-kernel execution options (batched traversal width, thread
    /// pinning, first-touch placement). Every driver threads this through to
    /// its [`crate::ThreadSampler`]s and worker spawn points.
    pub kernel: KernelOptions,
}

/// How the per-thread sampling kernel executes and where its threads and
/// pages live. The paper's one-rank-per-NUMA-socket design (Section IV-E)
/// assumes the kernel is near hardware limits; these knobs control the two
/// levers this reproduction implements for that: multi-source batching
/// (DESIGN.md §16) and NUMA-aware placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    /// Lanes per batched-kernel invocation (1..=64). Width 1 keeps batches
    /// on the scalar kernel. Path selection is bit-identical at every width,
    /// so this only trades scratch memory against shared row decodes.
    pub batch_width: usize,
    /// Pin each sampling worker to a core derived from its (rank, thread)
    /// coordinates (best-effort; a no-op where unsupported).
    pub pin_threads: bool,
    /// Sweep the CSR pages from each worker after pinning, so a first-touch
    /// NUMA policy places (or at least warms) them near the thread pool that
    /// samples from them.
    pub first_touch: bool,
}

impl Default for KernelOptions {
    fn default() -> Self {
        KernelOptions { batch_width: 8, pin_threads: false, first_touch: false }
    }
}

impl KernelOptions {
    /// The scalar configuration: no batching, no placement.
    pub fn scalar() -> Self {
        KernelOptions { batch_width: 1, pin_threads: false, first_touch: false }
    }

    /// Batched at `width` lanes, no placement.
    pub fn batched(width: usize) -> Self {
        KernelOptions { batch_width: width, ..Default::default() }
    }
}

impl Default for KadabraConfig {
    fn default() -> Self {
        KadabraConfig {
            epsilon: 0.01,
            delta: 0.1,
            seed: 42,
            c: 0.5,
            n0_base: 1000.0,
            n0_exponent: 1.33,
            calibration_samples: None,
            diameter_bfs_budget: 16,
            calibration_floor: 0.25,
            kernel: KernelOptions::default(),
        }
    }
}

impl KadabraConfig {
    /// Convenience constructor for the two knobs everyone sets.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        KadabraConfig { epsilon, delta, ..Default::default() }
    }

    /// Validates parameter ranges; called by every entry point.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must lie in (0, 1), got {}",
            self.epsilon
        );
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must lie in (0, 1), got {}",
            self.delta
        );
        assert!(self.c > 0.0, "c must be positive");
        assert!(self.n0_base >= 1.0, "n0_base must be at least 1");
        assert!(
            (0.0..1.0).contains(&self.calibration_floor),
            "calibration_floor must lie in [0, 1)"
        );
        assert!(
            (1..=64).contains(&self.kernel.batch_width),
            "kernel.batch_width must lie in 1..=64, got {}",
            self.kernel.batch_width
        );
    }

    /// Samples thread 0 takes between stopping-condition checks for a run
    /// with `total_threads = P·T` sampling threads (Section IV-D).
    pub fn n0(&self, total_threads: usize) -> u64 {
        let n0 = self.n0_base / (total_threads.max(1) as f64).powf(self.n0_exponent);
        (n0.round() as u64).max(1)
    }
}

/// Shape of the simulated cluster for [`crate::kadabra_epoch_mpi`]: how many
/// MPI ranks exist, how they group into compute nodes, and how many sampling
/// threads run per rank. In the paper's setup (Section IV-E) each compute
/// node runs one rank per NUMA socket with 12 threads each.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    /// Total MPI ranks (P).
    pub ranks: usize,
    /// Ranks hosted per compute node (2 in the paper: one per socket).
    pub ranks_per_node: usize,
    /// Sampling threads per rank (T).
    pub threads_per_rank: usize,
}

impl ClusterShape {
    /// A flat, single-threaded shape (Algorithm 1's regime).
    pub fn flat(ranks: usize) -> Self {
        ClusterShape { ranks, ranks_per_node: 1, threads_per_rank: 1 }
    }

    /// Total sampling threads `P·T`.
    pub fn total_threads(&self) -> usize {
        self.ranks * self.threads_per_rank
    }

    /// Number of compute nodes (rounding up for a ragged last node).
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// Validates the shape.
    pub fn validate(&self) {
        assert!(self.ranks >= 1, "need at least one rank");
        assert!(self.ranks_per_node >= 1, "need at least one rank per node");
        assert!(self.threads_per_rank >= 1, "need at least one thread per rank");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        KadabraConfig::default().validate();
    }

    #[test]
    fn n0_decays_with_thread_count() {
        let cfg = KadabraConfig::default();
        assert_eq!(cfg.n0(1), 1000);
        let n0_24 = cfg.n0(24);
        assert!(n0_24 < 1000 && n0_24 > 1, "n0(24) = {n0_24}");
        // Very large thread counts floor at 1.
        assert_eq!(cfg.n0(100_000), 1);
        // Monotone non-increasing.
        let mut prev = u64::MAX;
        for t in [1, 2, 4, 8, 16, 32, 64, 128] {
            let v = cfg.n0(t);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn kernel_options_defaults_and_presets() {
        let d = KernelOptions::default();
        assert_eq!(d.batch_width, 8);
        assert!(!d.pin_threads && !d.first_touch);
        assert_eq!(KernelOptions::scalar().batch_width, 1);
        assert_eq!(KernelOptions::batched(64).batch_width, 64);
        let cfg = KadabraConfig { kernel: KernelOptions::batched(64), ..Default::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "batch_width")]
    fn rejects_zero_batch_width() {
        KadabraConfig { kernel: KernelOptions::batched(0), ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "batch_width")]
    fn rejects_oversized_batch_width() {
        KadabraConfig { kernel: KernelOptions::batched(65), ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        KadabraConfig { epsilon: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        KadabraConfig { delta: 1.5, ..Default::default() }.validate();
    }

    #[test]
    fn cluster_shape_arithmetic() {
        let shape = ClusterShape { ranks: 8, ranks_per_node: 2, threads_per_rank: 12 };
        shape.validate();
        assert_eq!(shape.total_threads(), 96);
        assert_eq!(shape.nodes(), 4);
        assert_eq!(ClusterShape::flat(3).total_threads(), 3);
        assert_eq!(ClusterShape { ranks: 5, ranks_per_node: 2, threads_per_rank: 1 }.nodes(), 3);
    }
}
