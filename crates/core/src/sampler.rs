//! Per-thread sampling engine.
//!
//! Each sampling thread owns a [`ThreadSampler`]: a deterministic RNG stream
//! derived from `(seed, rank, thread)`, reusable BFS scratch, and the pair +
//! path sampling loop. One call to [`ThreadSampler::sample`] = one KADABRA
//! sample = one bidirectional BFS (the `SAMPLE()` of Algorithms 1 and 2).

use kadabra_graph::bibfs::sample_shortest_path;
use kadabra_graph::{Graph, NodeId, TraversalScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — mixes the master seed with stream coordinates so
/// that each (rank, thread) gets a decorrelated RNG stream.
fn mix_seed(seed: u64, rank: u64, thread: u64) -> u64 {
    let mut z = seed
        .wrapping_add(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(thread.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream-index offset separating adaptive-sampling RNG streams from
/// calibration streams of the same `(rank, thread)` pair.
pub const ADS_STREAM_OFFSET: usize = 1 << 20;

/// A sampling thread's private state.
pub struct ThreadSampler {
    rng: StdRng,
    scratch: TraversalScratch,
    n: usize,
    /// Interior vertices of the most recent sample.
    path_buf: Vec<NodeId>,
    /// Total samples produced by this sampler.
    pub samples_taken: u64,
}

impl ThreadSampler {
    /// Creates the sampler for `(rank, thread)` on an `n`-vertex graph.
    pub fn new(n: usize, seed: u64, rank: usize, thread: usize) -> Self {
        assert!(n >= 2, "sampling requires at least two vertices");
        ThreadSampler {
            rng: StdRng::seed_from_u64(mix_seed(seed, rank as u64, thread as u64)),
            scratch: TraversalScratch::new(n),
            n,
            path_buf: Vec::new(),
            samples_taken: 0,
        }
    }

    /// Takes one sample: draws a uniform ordered pair `(s, t)`, `s ≠ t`,
    /// samples a uniform shortest s-t path, and returns its interior
    /// vertices (empty for adjacent pairs **and** for disconnected pairs —
    /// KADABRA counts a sample of a disconnected pair as a path with no
    /// interior, keeping `b̃` an unbiased estimator on disconnected graphs).
    pub fn sample(&mut self, g: &Graph) -> &[NodeId] {
        debug_assert_eq!(g.num_nodes(), self.n);
        let s = self.rng.gen_range(0..self.n as NodeId);
        let mut t = self.rng.gen_range(0..self.n as NodeId - 1);
        if t >= s {
            t += 1; // uniform over t != s without rejection
        }
        self.path_buf.clear();
        if let Some(p) = sample_shortest_path(g, s, t, &mut self.scratch, &mut self.rng) {
            self.path_buf.extend_from_slice(&p.interior);
        }
        self.samples_taken += 1;
        &self.path_buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, GnmConfig};

    #[test]
    fn deterministic_streams() {
        let g = gnm(GnmConfig { n: 30, m: 90, seed: 1 });
        let mut a = ThreadSampler::new(30, 7, 0, 0);
        let mut b = ThreadSampler::new(30, 7, 0, 0);
        for _ in 0..50 {
            assert_eq!(a.sample(&g), b.sample(&g));
        }
    }

    #[test]
    fn different_threads_get_different_streams() {
        let g = gnm(GnmConfig { n: 30, m: 90, seed: 1 });
        let mut a = ThreadSampler::new(30, 7, 0, 0);
        let mut b = ThreadSampler::new(30, 7, 0, 1);
        let mut c = ThreadSampler::new(30, 7, 1, 0);
        let sa: Vec<Vec<NodeId>> = (0..20).map(|_| a.sample(&g).to_vec()).collect();
        let sb: Vec<Vec<NodeId>> = (0..20).map(|_| b.sample(&g).to_vec()).collect();
        let sc: Vec<Vec<NodeId>> = (0..20).map(|_| c.sample(&g).to_vec()).collect();
        assert_ne!(sa, sb);
        assert_ne!(sa, sc);
        assert_ne!(sb, sc);
    }

    #[test]
    fn counts_samples() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut s = ThreadSampler::new(4, 1, 0, 0);
        for _ in 0..10 {
            s.sample(&g);
        }
        assert_eq!(s.samples_taken, 10);
    }

    #[test]
    fn disconnected_pairs_yield_empty_interior() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = ThreadSampler::new(4, 3, 0, 0);
        for _ in 0..50 {
            let interior = s.sample(&g);
            // Any sample on this graph has distance ≤ 1 or is disconnected:
            // the interior is always empty.
            assert!(interior.is_empty());
        }
    }

    #[test]
    fn estimates_match_exact_on_path_graph() {
        // P3: only pairs (0,2)/(2,0) have an interior vertex (vertex 1);
        // expected fraction of samples hitting it = 2/6 = b(1).
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut s = ThreadSampler::new(3, 5, 0, 0);
        let trials = 30_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            if !s.sample(&g).is_empty() {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn rejects_singleton() {
        ThreadSampler::new(1, 0, 0, 0);
    }
}
