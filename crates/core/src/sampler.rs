//! Per-thread sampling engine.
//!
//! Each sampling thread owns a [`ThreadSampler`]: a deterministic RNG stream
//! derived from `(seed, rank, thread)`, reusable BFS scratch, and the pair +
//! path sampling loop. One call to [`ThreadSampler::sample`] = one KADABRA
//! sample = one bidirectional BFS (the `SAMPLE()` of Algorithms 1 and 2).
//! [`ThreadSampler::sample_batch`] amortizes the per-sample bookkeeping over
//! a whole batch (DESIGN.md §11): pairs are pre-drawn in one sweep from the
//! xoshiro stream and every sample writes its interior into the same reused
//! scratch buffer, so at steady state a sample allocates nothing.

use crate::config::KernelOptions;
use kadabra_graph::bibfs::{sample_shortest_path_into, SearchStats};
use kadabra_graph::{BatchedBiBfs, GraphView, NodeId, TraversalScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — mixes the master seed with stream coordinates so
/// that each (rank, thread) gets a decorrelated RNG stream. Public so
/// auxiliary deterministic streams (e.g. the dynamic-update redraw streams)
/// can derive decorrelated seeds from the same coordinates.
pub fn mix_seed(seed: u64, rank: u64, thread: u64) -> u64 {
    let mut z = seed
        .wrapping_add(rank.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(thread.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream-index offset separating adaptive-sampling RNG streams from
/// calibration streams of the same `(rank, thread)` pair.
pub const ADS_STREAM_OFFSET: usize = 1 << 20;

/// A sampling thread's private state.
pub struct ThreadSampler {
    rng: StdRng,
    scratch: TraversalScratch,
    n: usize,
    /// Pre-drawn endpoint pairs for the current batch.
    pairs: Vec<(NodeId, NodeId)>,
    /// Lanes per batched-kernel invocation; ≤ 1 keeps batches on the scalar
    /// kernel. Either way the sampled paths are bit-identical (DESIGN.md
    /// §16), so this knob trades only memory against row-scan sharing.
    batch_width: usize,
    /// Batched kernel scratch, allocated lazily on the first routed batch so
    /// scalar-only samplers never pay the `O(n·W)` arena.
    batch: Option<BatchedBiBfs>,
    /// Cumulative search statistics over every sample taken.
    pub stats: SearchStats,
    /// Total samples produced by this sampler.
    pub samples_taken: u64,
}

impl ThreadSampler {
    /// Creates the sampler for `(rank, thread)` on an `n`-vertex graph, with
    /// the default kernel options ([`KernelOptions::default`]: batched at
    /// width 8).
    pub fn new(n: usize, seed: u64, rank: usize, thread: usize) -> Self {
        Self::with_kernel(n, seed, rank, thread, KernelOptions::default())
    }

    /// Creates the sampler with explicit kernel options (the drivers pass
    /// `cfg.kernel` through here). Only `batch_width` matters to the
    /// sampler itself; placement options are applied by the caller.
    pub fn with_kernel(
        n: usize,
        seed: u64,
        rank: usize,
        thread: usize,
        kernel: KernelOptions,
    ) -> Self {
        assert!(n >= 2, "sampling requires at least two vertices");
        assert!(kernel.batch_width >= 1 && kernel.batch_width <= 64, "batch width in 1..=64");
        ThreadSampler {
            rng: StdRng::seed_from_u64(mix_seed(seed, rank as u64, thread as u64)),
            scratch: TraversalScratch::new(n),
            n,
            pairs: Vec::new(),
            batch_width: kernel.batch_width,
            batch: None,
            stats: SearchStats::default(),
            samples_taken: 0,
        }
    }

    /// Cumulative batched-kernel occupancy: `(rounds, lane_rounds)` — the
    /// telemetry counters `kernel_rounds` / `kernel_lane_rounds`. Both zero
    /// until a batch has routed through the batched kernel.
    pub fn kernel_occupancy(&self) -> (u64, u64) {
        self.batch.as_ref().map_or((0, 0), |k| (k.rounds, k.lane_rounds))
    }

    /// Cumulative physical adjacency entries decoded by the batched kernel
    /// (each CSR row read counted once regardless of how many lanes share
    /// it); `stats.edges_scanned / kernel_physical_edges()` is the
    /// row-share factor batching achieves. Zero until a batch has routed
    /// through the batched kernel.
    pub fn kernel_physical_edges(&self) -> u64 {
        self.batch.as_ref().map_or(0, |k| k.physical_edges)
    }

    /// Draws a uniform ordered pair `(s, t)` with `s ≠ t`.
    #[inline]
    fn draw_pair(&mut self) -> (NodeId, NodeId) {
        let s = self.rng.gen_range(0..self.n as NodeId);
        let mut t = self.rng.gen_range(0..self.n as NodeId - 1);
        if t >= s {
            t += 1; // uniform over t != s without rejection
        }
        (s, t)
    }

    /// Takes one sample: draws a uniform ordered pair `(s, t)`, `s ≠ t`,
    /// samples a uniform shortest s-t path, and returns its interior
    /// vertices (empty for adjacent pairs **and** for disconnected pairs —
    /// KADABRA counts a sample of a disconnected pair as a path with no
    /// interior, keeping `b̃` an unbiased estimator on disconnected graphs).
    pub fn sample<G: GraphView>(&mut self, g: &G) -> &[NodeId] {
        assert_eq!(
            g.num_nodes(),
            self.n,
            "sampler scratch sized for {} vertices, graph has {}",
            self.n,
            g.num_nodes()
        );
        let (s, t) = self.draw_pair();
        let _ =
            sample_shortest_path_into(g, s, t, &mut self.scratch, &mut self.rng, &mut self.stats);
        self.samples_taken += 1;
        &self.scratch.path
    }

    /// Takes `k` samples, invoking `consume` with each sample's interior
    /// vertices (same semantics as [`ThreadSampler::sample`]).
    ///
    /// The `k` endpoint pairs are pre-drawn from the RNG stream in one tight
    /// sweep before any BFS runs — this batches the stream arithmetic and
    /// keeps the BFS loop free of per-sample RNG state churn. The pair/path
    /// distribution is identical to `k` calls of `sample` (every draw is
    /// independent), only the order in which the stream is consumed differs,
    /// which the `(ε, δ)` guarantee is insensitive to (DESIGN.md §11).
    ///
    /// With `batch_width > 1` the pre-drawn pairs route through the batched
    /// multi-source kernel in chunks of `batch_width` lanes; selection is
    /// bit-identical to the scalar loop for the same stream (DESIGN.md §16),
    /// so routing is purely a throughput decision.
    pub fn sample_batch<G: GraphView, F: FnMut(&[NodeId])>(
        &mut self,
        g: &G,
        k: u64,
        mut consume: F,
    ) {
        assert_eq!(
            g.num_nodes(),
            self.n,
            "sampler scratch sized for {} vertices, graph has {}",
            self.n,
            g.num_nodes()
        );
        self.pairs.clear();
        self.pairs.reserve(k as usize);
        for _ in 0..k {
            let p = self.draw_pair();
            self.pairs.push(p);
        }
        // Move the pair buffer out so the sweep can borrow `self` mutably;
        // moved back below, so no allocation happens either way.
        let pairs = std::mem::take(&mut self.pairs);
        if self.batch_width > 1 {
            if self.batch.is_none() {
                self.batch = Some(BatchedBiBfs::new(self.n, self.batch_width));
            }
            if let Some(kernel) = self.batch.as_mut() {
                for chunk in pairs.chunks(self.batch_width) {
                    kernel.sample_batch_into(
                        g,
                        chunk,
                        &mut self.rng,
                        &mut self.stats,
                        |_, _, p| consume(p),
                    );
                }
            }
        } else {
            for &(s, t) in &pairs {
                let _ = sample_shortest_path_into(
                    g,
                    s,
                    t,
                    &mut self.scratch,
                    &mut self.rng,
                    &mut self.stats,
                );
                consume(&self.scratch.path);
            }
        }
        self.pairs = pairs;
        self.samples_taken += k;
    }

    /// Like [`ThreadSampler::sample_batch`], but hands the consumer the full
    /// sample record — endpoints, shortest distance (`u32::MAX` for a
    /// disconnected pair), and the interior — so callers that *retain*
    /// samples (the dynamic-update path store) can later re-validate them.
    /// Consumes the RNG stream identically to `sample_batch`.
    pub fn sample_batch_records<G: GraphView, F: FnMut(NodeId, NodeId, u32, &[NodeId])>(
        &mut self,
        g: &G,
        k: u64,
        mut consume: F,
    ) {
        assert_eq!(
            g.num_nodes(),
            self.n,
            "sampler scratch sized for {} vertices, graph has {}",
            self.n,
            g.num_nodes()
        );
        self.pairs.clear();
        self.pairs.reserve(k as usize);
        for _ in 0..k {
            let p = self.draw_pair();
            self.pairs.push(p);
        }
        let pairs = std::mem::take(&mut self.pairs);
        if self.batch_width > 1 {
            if self.batch.is_none() {
                self.batch = Some(BatchedBiBfs::new(self.n, self.batch_width));
            }
            if let Some(kernel) = self.batch.as_mut() {
                for chunk in pairs.chunks(self.batch_width) {
                    kernel.sample_batch_into(
                        g,
                        chunk,
                        &mut self.rng,
                        &mut self.stats,
                        |lane, info, path| {
                            let (s, t) = chunk[lane];
                            consume(s, t, info.map_or(u32::MAX, |i| i.distance), path);
                        },
                    );
                }
            }
        } else {
            for &(s, t) in &pairs {
                let info = sample_shortest_path_into(
                    g,
                    s,
                    t,
                    &mut self.scratch,
                    &mut self.rng,
                    &mut self.stats,
                );
                let dist = info.map_or(u32::MAX, |i| i.distance);
                consume(s, t, dist, &self.scratch.path);
            }
        }
        self.pairs = pairs;
        self.samples_taken += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, GnmConfig};

    #[test]
    fn deterministic_streams() {
        let g = gnm(GnmConfig { n: 30, m: 90, seed: 1 });
        let mut a = ThreadSampler::new(30, 7, 0, 0);
        let mut b = ThreadSampler::new(30, 7, 0, 0);
        for _ in 0..50 {
            assert_eq!(a.sample(&g), b.sample(&g));
        }
    }

    #[test]
    fn batch_is_deterministic_and_counts() {
        let g = gnm(GnmConfig { n: 40, m: 140, seed: 2 });
        let mut a = ThreadSampler::new(40, 9, 0, 0);
        let mut b = ThreadSampler::new(40, 9, 0, 0);
        let mut seen_a: Vec<Vec<NodeId>> = Vec::new();
        let mut seen_b: Vec<Vec<NodeId>> = Vec::new();
        a.sample_batch(&g, 64, |p| seen_a.push(p.to_vec()));
        b.sample_batch(&g, 64, |p| seen_b.push(p.to_vec()));
        assert_eq!(seen_a, seen_b);
        assert_eq!(seen_a.len(), 64);
        assert_eq!(a.samples_taken, 64);
        // At least one sample on this dense instance has an interior vertex.
        assert!(seen_a.iter().any(|p| !p.is_empty()));
    }

    #[test]
    fn different_threads_get_different_streams() {
        let g = gnm(GnmConfig { n: 30, m: 90, seed: 1 });
        let mut a = ThreadSampler::new(30, 7, 0, 0);
        let mut b = ThreadSampler::new(30, 7, 0, 1);
        let mut c = ThreadSampler::new(30, 7, 1, 0);
        let sa: Vec<Vec<NodeId>> = (0..20).map(|_| a.sample(&g).to_vec()).collect();
        let sb: Vec<Vec<NodeId>> = (0..20).map(|_| b.sample(&g).to_vec()).collect();
        let sc: Vec<Vec<NodeId>> = (0..20).map(|_| c.sample(&g).to_vec()).collect();
        assert_ne!(sa, sb);
        assert_ne!(sa, sc);
        assert_ne!(sb, sc);
    }

    #[test]
    fn counts_samples() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut s = ThreadSampler::new(4, 1, 0, 0);
        for _ in 0..10 {
            s.sample(&g);
        }
        assert_eq!(s.samples_taken, 10);
        assert!(s.stats.edges_scanned > 0);
    }

    #[test]
    fn disconnected_pairs_yield_empty_interior() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let mut s = ThreadSampler::new(4, 3, 0, 0);
        for _ in 0..50 {
            let interior = s.sample(&g);
            // Any sample on this graph has distance ≤ 1 or is disconnected:
            // the interior is always empty.
            assert!(interior.is_empty());
        }
        s.sample_batch(&g, 50, |interior| assert!(interior.is_empty()));
    }

    #[test]
    fn estimates_match_exact_on_path_graph() {
        // P3: only pairs (0,2)/(2,0) have an interior vertex (vertex 1);
        // expected fraction of samples hitting it = 2/6 = b(1).
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut s = ThreadSampler::new(3, 5, 0, 0);
        let trials = 30_000;
        let mut hits = 0u64;
        for _ in 0..trials {
            if !s.sample(&g).is_empty() {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn batch_estimates_match_exact_on_path_graph() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut s = ThreadSampler::new(3, 6, 0, 0);
        let trials = 30_000u64;
        let mut hits = 0u64;
        s.sample_batch(&g, trials, |p| {
            if !p.is_empty() {
                hits += 1;
            }
        });
        let frac = hits as f64 / trials as f64;
        assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn rejects_singleton() {
        ThreadSampler::new(1, 0, 0, 0);
    }
}
