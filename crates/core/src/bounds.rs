//! KADABRA's statistical machinery: the static sample cap ω and the
//! per-vertex deviation bounds `f` and `g` of the adaptive stopping
//! condition.
//!
//! The stopping rule (Section III-A of the paper): sampling may stop at τ
//! samples if for **every** vertex `v`
//!
//! ```text
//! f(b̃(v), δ_L(v), ω, τ) < ε   and   g(b̃(v), δ_U(v), ω, τ) < ε
//! ```
//!
//! where `f`/`g` bound the downward/upward deviation of the estimate `b̃(v)`
//! from the true betweenness (KADABRA Theorem 5, a martingale/Bernstein-type
//! bound parameterized by the a-priori cap ω):
//!
//! ```text
//! f = ln(1/δ_L)/τ · ( −u + sqrt(u² + 2 b̃ ω / ln(1/δ_L)) ),  u = ω/τ − 1/3
//! g = ln(1/δ_U)/τ · (  w + sqrt(w² + 2 b̃ ω / ln(1/δ_U)) ),  w = ω/τ + 1/3
//! ```
//!
//! The cap itself comes from the VC-dimension argument of the RK algorithm:
//! `ω = (c/ε²)(⌊log₂(VD − 2)⌋ + 1 + ln(2/δ))` with `c = 0.5` and VD the
//! vertex diameter (number of vertices of the longest shortest path). When
//! τ reaches ω the algorithm may stop unconditionally with the same
//! guarantee.

use crate::calibration::Calibration;

/// Static maximum number of samples ω for error `eps`, failure probability
/// `delta`, and vertex-diameter upper bound `vertex_diameter`.
pub fn omega(c: f64, eps: f64, delta: f64, vertex_diameter: u32) -> u64 {
    assert!(eps > 0.0 && eps < 1.0);
    assert!(delta > 0.0 && delta < 1.0);
    assert!(c > 0.0);
    // ⌊log₂(VD−2)⌋ degenerates for tiny diameters; clamp the argument to 2
    // (log term 1) exactly like practical KADABRA implementations.
    let vd = (vertex_diameter.max(4) - 2) as f64;
    let bound = (c / (eps * eps)) * (vd.log2().floor() + 1.0 + (2.0 / delta).ln());
    bound.ceil() as u64
}

/// Downward-deviation bound `f`: with probability ≥ 1 − δ_L the true
/// betweenness exceeds `b̃ − f`.
#[inline]
pub fn f_bound(b_tilde: f64, delta_l: f64, omega: u64, tau: u64) -> f64 {
    debug_assert!(tau > 0);
    debug_assert!((0.0..1.0).contains(&delta_l) && delta_l > 0.0);
    let log_term = (1.0 / delta_l).ln();
    let tau_f = tau as f64;
    let u = omega as f64 / tau_f - 1.0 / 3.0;
    log_term / tau_f * (-u + (u * u + 2.0 * b_tilde * omega as f64 / log_term).sqrt())
}

/// Upward-deviation bound `g`: with probability ≥ 1 − δ_U the true
/// betweenness is below `b̃ + g`.
#[inline]
pub fn g_bound(b_tilde: f64, delta_u: f64, omega: u64, tau: u64) -> f64 {
    debug_assert!(tau > 0);
    debug_assert!((0.0..1.0).contains(&delta_u) && delta_u > 0.0);
    let log_term = (1.0 / delta_u).ln();
    let tau_f = tau as f64;
    let w = omega as f64 / tau_f + 1.0 / 3.0;
    log_term / tau_f * (w + (w * w + 2.0 * b_tilde * omega as f64 / log_term).sqrt())
}

/// Evaluates the full stopping condition over aggregated counts: `true` iff
/// every vertex satisfies both bounds at error `eps` (or τ ≥ ω).
///
/// This is the `CHECKFORSTOP` of Algorithms 1 and 2; it runs on a consistent
/// aggregated state only (Section III-B: f and g are not monotone in τ and
/// c̃, so checking racy counts would be unsound).
pub fn stopping_condition(
    counts: &[u64],
    tau: u64,
    eps: f64,
    omega: u64,
    delta_l: &[f64],
    delta_u: &[f64],
) -> bool {
    debug_assert_eq!(counts.len(), delta_l.len());
    debug_assert_eq!(counts.len(), delta_u.len());
    if tau == 0 {
        return false;
    }
    if tau >= omega {
        return true;
    }
    let tau_f = tau as f64;
    counts.iter().enumerate().all(|(v, &c)| {
        let b = c as f64 / tau_f;
        f_bound(b, delta_l[v], omega, tau) < eps && g_bound(b, delta_u[v], omega, tau) < eps
    })
}

/// The accuracy a consistent `(counts, tau)` frame supports: the worst
/// per-vertex Bernstein bound under the calibrated δ budgets. 1.0 before any
/// sample lands.
pub fn achieved_epsilon(counts: &[u64], tau: u64, omega: u64, calibration: &Calibration) -> f64 {
    if tau == 0 {
        return 1.0;
    }
    let tau_f = tau as f64;
    let mut worst = 0.0f64;
    for (v, &c) in counts.iter().enumerate() {
        let b = c as f64 / tau_f;
        worst = worst.max(f_bound(b, calibration.delta_l[v], omega, tau)).max(g_bound(
            b,
            calibration.delta_u[v],
            omega,
            tau,
        ));
    }
    worst.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_matches_formula() {
        // eps=0.1, delta=0.1, VD=10: 50 * (floor(log2 8) + 1 + ln 20).
        let expect = (50.0f64 * (3.0 + 1.0 + 20.0f64.ln())).ceil() as u64;
        assert_eq!(omega(0.5, 0.1, 0.1, 10), expect);
    }

    #[test]
    fn omega_scales_inverse_quadratically_with_eps() {
        let w1 = omega(0.5, 0.01, 0.1, 100);
        let w2 = omega(0.5, 0.001, 0.1, 100);
        let ratio = w2 as f64 / w1 as f64;
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn omega_handles_tiny_diameters() {
        for vd in 0..6 {
            assert!(omega(0.5, 0.1, 0.1, vd) > 0);
        }
        assert_eq!(omega(0.5, 0.1, 0.1, 0), omega(0.5, 0.1, 0.1, 4));
    }

    #[test]
    fn omega_grows_with_diameter() {
        assert!(omega(0.5, 0.1, 0.1, 1000) > omega(0.5, 0.1, 0.1, 10));
    }

    #[test]
    fn f_is_zero_for_zero_estimate() {
        assert_eq!(f_bound(0.0, 0.1, 1000, 100), 0.0);
    }

    #[test]
    fn g_is_positive_for_zero_estimate() {
        assert!(g_bound(0.0, 0.1, 1000, 100) > 0.0);
    }

    #[test]
    fn bounds_shrink_with_tau() {
        let omega = 10_000;
        let mut prev_f = f64::INFINITY;
        let mut prev_g = f64::INFINITY;
        for tau in [100, 1_000, 5_000, 10_000] {
            let f = f_bound(0.2, 0.05, omega, tau);
            let g = g_bound(0.2, 0.05, omega, tau);
            assert!(f < prev_f, "f must shrink: {f} !< {prev_f}");
            assert!(g < prev_g, "g must shrink: {g} !< {prev_g}");
            prev_f = f;
            prev_g = g;
        }
    }

    #[test]
    fn bounds_grow_with_estimate() {
        let omega = 10_000;
        assert!(f_bound(0.5, 0.05, omega, 1000) > f_bound(0.1, 0.05, omega, 1000));
        assert!(g_bound(0.5, 0.05, omega, 1000) > g_bound(0.1, 0.05, omega, 1000));
    }

    #[test]
    fn bounds_grow_as_delta_shrinks() {
        let omega = 10_000;
        assert!(f_bound(0.2, 0.001, omega, 1000) > f_bound(0.2, 0.1, omega, 1000));
        assert!(g_bound(0.2, 0.001, omega, 1000) > g_bound(0.2, 0.1, omega, 1000));
    }

    #[test]
    fn g_dominates_f_symmetry() {
        // For equal parameters the upper bound g is strictly larger than f
        // (w > u and both terms positive).
        let omega = 5_000;
        for tau in [10, 100, 1000] {
            for b in [0.0, 0.1, 0.5] {
                assert!(g_bound(b, 0.05, omega, tau) >= f_bound(b, 0.05, omega, tau));
            }
        }
    }

    #[test]
    fn stopping_is_false_initially_and_true_at_omega() {
        let n = 10;
        let counts = vec![0u64; n];
        let dl = vec![0.001; n];
        let du = vec![0.001; n];
        assert!(!stopping_condition(&counts, 0, 0.01, 1000, &dl, &du));
        assert!(!stopping_condition(&counts, 1, 0.0001, 1_000_000, &dl, &du));
        assert!(stopping_condition(&counts, 1000, 0.0001, 1000, &dl, &du));
    }

    #[test]
    fn stopping_becomes_true_for_loose_eps() {
        let n = 4;
        let counts = vec![10u64, 0, 3, 1];
        let dl = vec![0.01; n];
        let du = vec![0.01; n];
        let omega = 20_000;
        // Loose epsilon: satisfied well before omega.
        assert!(stopping_condition(&counts, 5_000, 0.9, omega, &dl, &du));
        // Tight epsilon: not satisfied at small tau.
        assert!(!stopping_condition(&counts, 10, 0.001, omega, &dl, &du));
    }

    #[test]
    fn stopping_requires_all_vertices() {
        let omega = 50_000;
        let tau = 20_000u64;
        let dl = vec![0.01; 2];
        let du = vec![0.01; 2];
        // Vertex 1 has a huge estimate; with a mid-range eps vertex 0 passes
        // but vertex 1 does not.
        let counts = vec![0u64, tau];
        let eps = 0.02;
        assert!(f_bound(0.0, 0.01, omega, tau) < eps);
        assert!(g_bound(0.0, 0.01, omega, tau) < eps);
        assert!(f_bound(1.0, 0.01, omega, tau) > eps);
        assert!(!stopping_condition(&counts, tau, eps, omega, &dl, &du));
    }
}
