//! Sample revalidation plumbing for streaming graph updates (DESIGN.md
//! §14): the [`ValidityBitmap`] classifying each retained sample as
//! provably-valid or invalidated after an edge batch, and the re-sampling
//! driver that turns a classified bitmap into a ledger-conserving
//! retract-then-confirm transaction.
//!
//! The actual classification rule (endpoint-distance sums against each
//! touched edge) lives with the overlay graph in `kadabra-dynamic`; this
//! module owns the parts that must stay glued to the [`SampleLedger`]
//! invariant: an invalidated sample's old interior counts leave the
//! checkpoint frame and its redrawn replacement's counts enter it in the
//! same transaction, with τ unchanged — the 1:1 replacement that keeps the
//! maintained estimate an i.i.d. sample average on the *new* graph at the
//! same sample count.

use crate::recovery::SampleLedger;

/// One bit per retained sample: set ⇒ invalidated by the current update
/// batch (must be redrawn), clear ⇒ provably valid (shortest-path set
/// untouched, sample kept as-is).
pub struct ValidityBitmap {
    words: Vec<u64>,
    len: usize,
}

impl ValidityBitmap {
    /// An all-valid bitmap over `len` samples.
    pub fn all_valid(len: usize) -> Self {
        ValidityBitmap { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Resets to all-valid over a (possibly different) sample count,
    /// reusing the word buffer.
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Number of samples tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap tracks zero samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks sample `i` invalidated.
    pub fn invalidate(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Whether sample `i` is still provably valid.
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) == 0
    }

    /// Number of invalidated samples.
    pub fn invalid_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Scratch frames reused across [`resample_invalidated`] transactions so
/// the per-batch driver allocates nothing at steady state.
pub struct ResampleScratch {
    retract: Vec<u64>,
    confirm: Vec<u64>,
}

impl ResampleScratch {
    /// Scratch for an `n`-vertex graph (frames are `n + 1` wide).
    pub fn new(n: usize) -> Self {
        ResampleScratch { retract: vec![0u64; n + 1], confirm: vec![0u64; n + 1] }
    }
}

/// The re-sampling driver: for every invalidated sample in `bitmap`, calls
/// `swap(i, retract, confirm)` — the callback subtracts the sample's *old*
/// interior counts into the retraction frame and adds its redrawn
/// replacement's counts into the confirmation frame — and finally applies
/// both frames to the ledger as one retract-then-confirm transaction.
///
/// The driver owns the τ bookkeeping: each invalidated sample contributes
/// exactly one retraction and one confirmation to the τ slot, so τ (and the
/// ε-stopping state derived from it) is invariant under the transaction —
/// the callback only touches the per-vertex slots `frame[..n]` (the frames
/// it receives exclude the τ slot).
///
/// Returns the number of samples redrawn.
pub fn resample_invalidated<F>(
    bitmap: &ValidityBitmap,
    ledger: &mut SampleLedger,
    scratch: &mut ResampleScratch,
    mut swap: F,
) -> usize
where
    F: FnMut(usize, &mut [u64], &mut [u64]),
{
    let width = ledger.frame().len();
    debug_assert!(width >= 1);
    scratch.retract.clear();
    scratch.retract.resize(width, 0);
    scratch.confirm.clear();
    scratch.confirm.resize(width, 0);
    let tau_slot = width - 1;
    let mut redrawn = 0usize;
    for i in 0..bitmap.len() {
        if bitmap.is_valid(i) {
            continue;
        }
        let (r, c) = (&mut scratch.retract[..tau_slot], &mut scratch.confirm[..tau_slot]);
        swap(i, r, c);
        scratch.retract[tau_slot] += 1;
        scratch.confirm[tau_slot] += 1;
        redrawn += 1;
    }
    ledger.retract(&scratch.retract);
    ledger.confirm(&scratch.confirm);
    redrawn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_tracks_and_counts() {
        let mut b = ValidityBitmap::all_valid(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert_eq!(b.invalid_count(), 0);
        b.invalidate(0);
        b.invalidate(64);
        b.invalidate(129);
        assert_eq!(b.invalid_count(), 3);
        assert!(!b.is_valid(64));
        assert!(b.is_valid(1));
        b.reset(10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.invalid_count(), 0);
    }

    #[test]
    fn driver_conserves_tau_and_swaps_interior_mass() {
        // Ledger over 3 vertices with 4 confirmed samples: counts [2,1,1],
        // τ = 4. Invalidate samples 1 and 3; their old interiors were
        // {v0} and {v0, v2}, their redraws land on {v1} and {}.
        let mut ledger = SampleLedger::new(3);
        ledger.confirm(&[2, 1, 1, 4]);
        let mut bitmap = ValidityBitmap::all_valid(4);
        bitmap.invalidate(1);
        bitmap.invalidate(3);
        let mut scratch = ResampleScratch::new(3);
        let redrawn =
            resample_invalidated(&bitmap, &mut ledger, &mut scratch, |i, retract, confirm| {
                match i {
                    1 => retract[0] += 1,
                    3 => {
                        retract[0] += 1;
                        retract[2] += 1;
                    }
                    _ => unreachable!(),
                }
                if i == 1 {
                    confirm[1] += 1;
                }
            });
        assert_eq!(redrawn, 2);
        assert_eq!(ledger.frame(), &[0, 2, 0, 4]);
        assert_eq!(ledger.tau(), 4, "1:1 replacement must leave τ unchanged");
    }

    #[test]
    fn all_valid_bitmap_is_a_no_op_transaction() {
        let mut ledger = SampleLedger::new(2);
        ledger.confirm(&[5, 3, 9]);
        let bitmap = ValidityBitmap::all_valid(9);
        let mut scratch = ResampleScratch::new(2);
        let redrawn = resample_invalidated(&bitmap, &mut ledger, &mut scratch, |_, _, _| {
            panic!("no swap expected")
        });
        assert_eq!(redrawn, 0);
        assert_eq!(ledger.frame(), &[5, 3, 9]);
    }
}
