//! Epoch-based shared-memory parallelization of the directed and weighted
//! variants — demonstrating the paper's footnote-1 claim end to end: the
//! epoch framework and the adaptive machinery are reused *unchanged*; only
//! the sampler differs.
//!
//! The trait split ([`ParallelPathSource`] vs [`crate::variants::PathSource`])
//! exists because parallel sampling needs per-thread scratch: the source is
//! shared read-only (`Sync`), each thread owns a `ThreadState`.

use crate::bounds::{self, stopping_condition};
use crate::calibration::{calibration_sample_count, Calibration};
use crate::config::KadabraConfig;
use crate::phases::scores_from_counts;
use crate::result::{BetweennessResult, PhaseTimings, SamplingStats};
use kadabra_epoch::EpochFramework;
use kadabra_graph::digraph::{sample_directed_shortest_path, DiGraph};
use kadabra_graph::scratch::TraversalScratch;
use kadabra_graph::weighted::{sample_weighted_shortest_path, WeightedGraph};
use kadabra_graph::NodeId;
use kadabra_telemetry::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A shareable path source for multi-threaded sampling.
pub trait ParallelPathSource: Sync {
    /// Per-thread scratch (BFS state, buffers).
    type ThreadState: Send;
    /// Number of vertices.
    fn num_nodes(&self) -> usize;
    /// Vertex-diameter upper bound for ω (see [`crate::variants`]).
    fn vertex_diameter_upper(&self, cfg: &KadabraConfig) -> u32;
    /// Creates one thread's scratch.
    fn thread_state(&self) -> Self::ThreadState;
    /// Draws a uniform shortest path between distinct endpoints into `out`
    /// (no-op if unreachable).
    fn sample_path(
        &self,
        state: &mut Self::ThreadState,
        s: NodeId,
        t: NodeId,
        rng: &mut StdRng,
        out: &mut Vec<NodeId>,
    );
}

impl ParallelPathSource for DiGraph {
    type ThreadState = TraversalScratch;

    fn num_nodes(&self) -> usize {
        DiGraph::num_nodes(self)
    }

    fn vertex_diameter_upper(&self, cfg: &KadabraConfig) -> u32 {
        crate::variants::PathSource::vertex_diameter_upper(
            &crate::variants::DirectedSource::new(self),
            cfg,
        )
    }

    fn thread_state(&self) -> TraversalScratch {
        TraversalScratch::new(DiGraph::num_nodes(self))
    }

    fn sample_path(
        &self,
        state: &mut TraversalScratch,
        s: NodeId,
        t: NodeId,
        rng: &mut StdRng,
        out: &mut Vec<NodeId>,
    ) {
        if let Some(p) = sample_directed_shortest_path(self, s, t, state, rng) {
            out.extend_from_slice(&p.interior);
        }
    }
}

impl ParallelPathSource for WeightedGraph {
    type ThreadState = ();

    fn num_nodes(&self) -> usize {
        WeightedGraph::num_nodes(self)
    }

    fn vertex_diameter_upper(&self, _cfg: &KadabraConfig) -> u32 {
        kadabra_graph::weighted::estimate_vertex_diameter(self, 3, 0)
    }

    fn thread_state(&self) {}

    fn sample_path(
        &self,
        _state: &mut (),
        s: NodeId,
        t: NodeId,
        rng: &mut StdRng,
        out: &mut Vec<NodeId>,
    ) {
        if let Some(p) = sample_weighted_shortest_path(self, s, t, rng) {
            out.extend_from_slice(&p.interior);
        }
    }
}

/// Runs the epoch-based shared-memory algorithm over any
/// [`ParallelPathSource`] with `threads` sampling threads. Structure
/// identical to [`crate::kadabra_shared`]; only `SAMPLE()` differs.
pub fn kadabra_shared_generic<S: ParallelPathSource>(
    source: &S,
    cfg: &KadabraConfig,
    threads: usize,
) -> BetweennessResult {
    cfg.validate();
    assert!(threads >= 1);
    let n = source.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");

    let diam_start = Stopwatch::start();
    let vd = source.vertex_diameter_upper(cfg);
    let diameter_time = diam_start.elapsed();
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let draw_pair = |rng: &mut StdRng| -> (NodeId, NodeId) {
        let s = rng.gen_range(0..n as NodeId);
        let mut t = rng.gen_range(0..n as NodeId - 1);
        if t >= s {
            t += 1;
        }
        (s, t)
    };

    // Calibration: parallel sampling, merged counts.
    let calib_start = Stopwatch::start();
    let tau0 = calibration_sample_count(cfg, omega);
    let share = tau0.div_ceil(threads as u64);
    let mut calib_counts = vec![0u64; n];
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 8 ^ 0xCA11);
                    let mut state = source.thread_state();
                    let mut path = Vec::new();
                    let mut counts = vec![0u64; n];
                    for _ in 0..share {
                        let (s, tt) = draw_pair(&mut rng);
                        path.clear();
                        source.sample_path(&mut state, s, tt, &mut rng, &mut path);
                        for &v in &path {
                            counts[v as usize] += 1;
                        }
                    }
                    counts
                })
            })
            .collect();
        for h in handles {
            // xtask: allow(unwrap) — a sampler-thread panic is a bug; abort
            // the computation with its message.
            for (a, c) in calib_counts.iter_mut().zip(h.join().expect("calib worker")) {
                *a += c;
            }
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("calibration scope");
    let calibration = Calibration::from_counts(&calib_counts, share * threads as u64, cfg);
    let calibration_time = calib_start.elapsed();

    // Epoch-based adaptive sampling.
    let ads_start = Stopwatch::start();
    let fw = EpochFramework::new(n, threads);
    let n0 = cfg.n0(threads);
    let mut acc = vec![0u64; n];
    let mut tau = 0u64;
    let mut stats = SamplingStats::default();

    crossbeam::scope(|scope| {
        for t in 1..threads {
            let fw = &fw;
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 8 ^ 0xAD5);
                let mut state = source.thread_state();
                let mut path = Vec::new();
                let mut h = fw.handle(t);
                while !fw.should_terminate() {
                    let (s, tt) = draw_pair(&mut rng);
                    path.clear();
                    source.sample_path(&mut state, s, tt, &mut rng, &mut path);
                    h.record_sample(&path);
                    fw.check_transition(&mut h);
                }
            });
        }

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xAD5);
        let mut state = source.thread_state();
        let mut path = Vec::new();
        let mut h = fw.handle(0);
        let mut epoch = 0u32;
        loop {
            for _ in 0..n0 {
                let (s, tt) = draw_pair(&mut rng);
                path.clear();
                source.sample_path(&mut state, s, tt, &mut rng, &mut path);
                h.record_sample(&path);
            }
            fw.force_transition(&mut h, epoch);
            let wait_start = Stopwatch::start();
            while !fw.transition_done(epoch) {
                let (s, tt) = draw_pair(&mut rng);
                path.clear();
                source.sample_path(&mut state, s, tt, &mut rng, &mut path);
                h.record_sample(&path);
            }
            stats.transition_wait += wait_start.elapsed();
            tau += fw.aggregate_epoch(epoch, &mut acc);
            stats.comm_bytes += (fw.frame_bytes() * threads) as u64;
            stats.epochs += 1;
            let check_start = Stopwatch::start();
            let stop = stopping_condition(
                &acc,
                tau,
                cfg.epsilon,
                omega,
                &calibration.delta_l,
                &calibration.delta_u,
            );
            stats.check_time += check_start.elapsed();
            if stop {
                fw.signal_termination();
                break;
            }
            epoch += 1;
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("adaptive sampling scope");
    stats.samples = tau;

    BetweennessResult {
        scores: scores_from_counts(&acc, tau),
        samples: tau,
        omega,
        vertex_diameter: vd,
        timings: PhaseTimings {
            diameter: diameter_time,
            calibration: calibration_time,
            adaptive_sampling: ads_start.elapsed(),
        },
        stats,
    }
}

/// Epoch-based shared-memory KADABRA on a directed graph.
pub fn kadabra_shared_directed(
    g: &DiGraph,
    cfg: &KadabraConfig,
    threads: usize,
) -> BetweennessResult {
    kadabra_shared_generic(g, cfg, threads)
}

/// Epoch-based shared-memory KADABRA on a weighted graph.
pub fn kadabra_shared_weighted(
    g: &WeightedGraph,
    cfg: &KadabraConfig,
    threads: usize,
) -> BetweennessResult {
    kadabra_shared_generic(g, cfg, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::{brandes_directed, brandes_weighted};

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn parallel_directed_within_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 35usize;
        let mut arcs = Vec::new();
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v && rng.gen_bool(0.12) {
                    arcs.push((u, v));
                }
            }
        }
        let g = DiGraph::from_arcs(n, &arcs);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 4, ..Default::default() };
        let exact = brandes_directed(&g);
        for threads in [1, 3] {
            let r = kadabra_shared_directed(&g, &cfg, threads);
            let err = max_err(&r.scores, &exact);
            assert!(err <= cfg.epsilon, "threads={threads}: {err}");
        }
    }

    #[test]
    fn parallel_weighted_within_epsilon() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 35usize;
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.gen_bool(0.18) {
                    edges.push((u, v, rng.gen_range(1..5)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, &edges);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 6, ..Default::default() };
        let exact = brandes_weighted(&g);
        for threads in [1, 4] {
            let r = kadabra_shared_weighted(&g, &cfg, threads);
            let err = max_err(&r.scores, &exact);
            assert!(err <= cfg.epsilon, "threads={threads}: {err}");
        }
    }

    #[test]
    fn parallel_terminates_and_accounts() {
        let g = DiGraph::from_arcs(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let cfg = KadabraConfig { epsilon: 0.1, delta: 0.1, seed: 7, ..Default::default() };
        let r = kadabra_shared_directed(&g, &cfg, 2);
        assert!(r.samples > 0);
        assert!(r.stats.epochs >= 1);
        assert_eq!(r.stats.comm_bytes, r.stats.epochs * 2 * (6 * 4 + 8));
    }
}
