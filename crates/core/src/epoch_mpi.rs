//! **Algorithm 2** of the paper: the epoch-based MPI parallelization — the
//! full system combining the wait-free epoch framework (within a rank) with
//! non-blocking MPI collectives (across ranks), plus the NUMA-aware
//! hierarchical aggregation of Section IV-E and the `Ibarrier` + blocking
//! `Reduce` strategy of Section IV-F.
//!
//! Topology (paper Section IV-E): each compute node hosts one rank per NUMA
//! socket; a *node-local* communicator aggregates frames inside the node
//! (shared-memory RMA in the paper), and a *leader* communicator (the first
//! rank of each node) performs the global reduction. Epoch ends are never
//! synchronized across ranks, yet stay within ±1 epoch because the global
//! collective acts as a non-blocking barrier.
//!
//! Like the flat driver, the adaptive loop is **crash-fault tolerant**
//! (DESIGN.md §10): when a collective fails with
//! [`kadabra_mpisim::CommError::RankFailed`], thread 0 of every survivor
//! shrinks the world, rebuilds the global state from the survivors'
//! [`SampleLedger`]s, **re-splits the Section IV-E hierarchy** over the
//! shrunk world (node identity keyed by original world rank, so surviving
//! ranks stay on their NUMA node), re-derives `n0` for the smaller world,
//! and continues. The smallest surviving world rank becomes world rank 0 of
//! the shrunk communicator — and, because split keys are world ranks, it is
//! always its node's leader and the leaders' root, so the stopping-condition
//! bookkeeping fails over to it consistently.

use crate::config::{ClusterShape, KadabraConfig};
use crate::phases::{
    calibration_samples_for_thread, diameter_phase, fold_and_check, scores_from_counts,
};
use crate::recovery::{shrink_and_rebuild, SampleLedger};
use crate::result::BetweennessResult;
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration};
use kadabra_epoch::EpochFramework;
use kadabra_graph::Graph;
use kadabra_mpisim::{CommError, Communicator, Universe};
use kadabra_telemetry::{CounterId, SpanId, Telemetry};

/// Per-rank outcome, used by the driver to assemble global statistics.
struct RankOutcome {
    result: Option<BetweennessResult>,
    is_leader: bool,
    local_bytes: u64,
    leader_bytes: u64,
    world_bytes: u64,
}

impl RankOutcome {
    /// The outcome of a rank whose scheduled crash fired: no result, no
    /// byte accounting (its communicators' traffic is reported by the
    /// survivors that shared the engines).
    fn dead() -> Self {
        RankOutcome {
            result: None,
            is_leader: false,
            local_bytes: 0,
            leader_bytes: 0,
            world_bytes: 0,
        }
    }
}

/// Runs Algorithm 2 on a simulated cluster of the given shape. Returns the
/// root's result with cluster-wide communication statistics attached.
pub fn kadabra_epoch_mpi(g: &Graph, cfg: &KadabraConfig, shape: ClusterShape) -> BetweennessResult {
    kadabra_epoch_mpi_traced(g, cfg, shape, &Telemetry::stats_only())
}

/// [`kadabra_epoch_mpi`] recording into an explicit [`Telemetry`] registry:
/// per-`(rank, thread)` spans and counters, plus collective/p2p markers from
/// the mpisim tracer hooks (and the full event stream in tracing mode).
pub fn kadabra_epoch_mpi_traced(
    g: &Graph,
    cfg: &KadabraConfig,
    shape: ClusterShape,
    tel: &Telemetry,
) -> BetweennessResult {
    cfg.validate();
    shape.validate();
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");

    let outcomes = Universe::run(shape.ranks, |comm| rank_main(g, cfg, shape, comm, tel));

    // Total communication: node-local engines are shared per node (count
    // each once, via its final leader), the leader and world engines are
    // global — every member of a shared engine reports the same cumulative
    // figure, so the maximum across outcomes is that engine's total even
    // when some ranks died.
    let local_total: u64 = outcomes.iter().filter(|o| o.is_leader).map(|o| o.local_bytes).sum();
    let leader_total = outcomes.iter().map(|o| o.leader_bytes).fold(0, u64::max);
    let world_total = outcomes.iter().map(|o| o.world_bytes).fold(0, u64::max);

    let mut result = outcomes
        .into_iter()
        .find_map(|o| o.result)
        // xtask: allow(unwrap) — exactly one rank (the final root) returns
        // Some; without crash faults that is rank 0.
        .expect("the surviving root produces the result");
    result.stats.comm_bytes = local_total + leader_total + world_total;
    result
}

/// Builds the Section IV-E communicator hierarchy for one rank: the
/// node-local communicator (all ranks of this rank's compute node) and the
/// leader communicator (the first rank of each node; other ranks receive a
/// same-shaped communicator they never use, because `MPI_Comm_split` is
/// collective). Returns `(local, is_leader, leaders)`.
///
/// Node identity and split keys use the **world rank** (the rank in the
/// original `MPI_COMM_WORLD`), so the hierarchy stays NUMA-consistent when
/// rebuilt over a shrunk communicator after crash recovery.
pub(crate) fn hierarchical_comms(
    world: &Communicator,
    shape: ClusterShape,
) -> Result<(Communicator, bool, Communicator), CommError> {
    let rank = world.world_rank();
    let node_id = (rank / shape.ranks_per_node) as u32;
    let local = world.split(node_id, rank as i64)?;
    let is_leader = local.rank() == 0;
    let leaders = world.split(u32::from(!is_leader), rank as i64)?;
    Ok((local, is_leader, leaders))
}

/// Per-rank body of Algorithm 2.
fn rank_main(
    g: &Graph,
    cfg: &KadabraConfig,
    shape: ClusterShape,
    world: Communicator,
    tel: &Telemetry,
) -> RankOutcome {
    let n = g.num_nodes();
    let my_world = world.world_rank();
    let threads = shape.threads_per_rank;
    let w = tel.writer(my_world as u32, 0);
    // Attach before splitting so the derived communicators inherit it.
    world.set_tracer(w.clone());

    // Section IV-E communicators: node-local + leaders. A setup-phase
    // communicator failure is recoverable only as this rank's own death —
    // crash schedules are constrained to the adaptive phase.
    let (local, is_leader, leaders) = match hierarchical_comms(&world, shape) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return RankOutcome::dead(),
        Err(e) => {
            panic!("rank failure during setup phases (schedule crashes in the adaptive phase): {e}")
        }
    };

    // Phase 1: sequential diameter at rank 0, broadcast.
    let sp = w.begin(SpanId::Diameter);
    let vd_bcast = if world.rank() == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        world.bcast_u64(0, Some(vd as u64))
    } else {
        world.bcast_u64(0, None)
    };
    let vd = match vd_bcast {
        Ok(v) => v as u32,
        Err(e) if e.failed_rank() == Some(my_world) => return RankOutcome::dead(),
        Err(e) => {
            panic!("rank failure during setup phases (schedule crashes in the adaptive phase): {e}")
        }
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Phase 2: calibration — all P·T threads sample in parallel, blocking
    // aggregation (Section IV-F: "Parallelizing the computation of the
    // initial fixed number of samples is straightforward").
    let sp_calib = w.begin(SpanId::Calibration);
    let total_threads = shape.total_threads();
    let mut calib = vec![0u64; n + 1];
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move |_| {
                    if cfg.kernel.pin_threads {
                        let _ = crate::affinity::pin_worker(my_world, t, threads);
                    }
                    if cfg.kernel.first_touch {
                        let _ = g.touch_pages();
                    }
                    let mut sampler =
                        ThreadSampler::with_kernel(n, cfg.seed, my_world, t, cfg.kernel);
                    let mut counts = vec![0u64; n];
                    let taken = calibration_samples_for_thread(
                        g,
                        &mut sampler,
                        &mut counts,
                        cfg,
                        omega,
                        total_threads,
                    );
                    (counts, taken)
                })
            })
            .collect();
        for h in handles {
            // xtask: allow(unwrap) — a sampler-thread panic is a bug; abort
            // the computation with its message.
            let (counts, taken) = h.join().expect("calibration worker");
            for (a, c) in calib.iter_mut().zip(counts) {
                *a += c;
            }
            calib[n] += taken;
        }
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("calibration scope");
    let total = match world.allreduce_sum_u64(&calib) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return RankOutcome::dead(),
        Err(e) => {
            panic!("rank failure during setup phases (schedule crashes in the adaptive phase): {e}")
        }
    };
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp_calib);

    // Phase 3: Algorithm 2, with shrink-and-continue recovery driven by
    // thread 0 (the only thread that communicates).
    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let fw = EpochFramework::new(n, threads);
    let mut world = world;
    let mut local = local;
    let mut leaders = leaders;
    let mut is_leader = is_leader;
    let mut n0 = cfg.n0(total_threads);
    let mut s_global = vec![0u64; n + 1]; // aggregated frame at the root
    let mut ledger = SampleLedger::new(n);
    // Superseded communicators' traffic, accumulated across recoveries
    // (the world engine carries its byte counter through shrink itself).
    let mut local_bytes_acc = 0u64;
    let mut leader_bytes_acc = 0u64;
    let mut dead = false;

    crossbeam::scope(|s| {
        // Worker threads t = 1..T (Algorithm 2, lines 5-9).
        for t in 1..threads {
            let fw = &fw;
            let tw = tel.writer(my_world as u32, t as u32);
            s.spawn(move |_| {
                if cfg.kernel.pin_threads {
                    let _ = crate::affinity::pin_worker(my_world, t, threads);
                }
                let mut sampler = ThreadSampler::with_kernel(
                    n,
                    cfg.seed,
                    my_world,
                    ADS_STREAM_OFFSET + t,
                    cfg.kernel,
                );
                let mut h = fw.handle(t);
                let mut drawn = 0u64;
                // Small batches amortize pair drawing while still polling
                // the epoch command often enough to stay within the
                // framework's one-epoch lag bound.
                const WORKER_CHUNK: u64 = 8;
                while !fw.should_terminate() {
                    sampler.sample_batch(g, WORKER_CHUNK, |interior| h.record_sample(interior));
                    drawn += WORKER_CHUNK;
                    fw.check_transition(&mut h);
                }
                // One flush at exit keeps the hot loop free of stores.
                tw.count(CounterId::Samples, drawn);
                let (rounds, lane_rounds) = sampler.kernel_occupancy();
                tw.count(CounterId::KernelRounds, rounds);
                tw.count(CounterId::KernelLaneRounds, lane_rounds);
            });
        }

        // Thread 0 (Algorithm 2, lines 10-31).
        if cfg.kernel.pin_threads {
            let _ = crate::affinity::pin_worker(my_world, 0, threads);
        }
        let mut sampler =
            ThreadSampler::with_kernel(n, cfg.seed, my_world, ADS_STREAM_OFFSET, cfg.kernel);
        let mut h = fw.handle(0);
        let mut epoch = 0u32;
        loop {
            w.set_epoch(epoch);
            // One epoch round; every communicator failure is typed.
            let round = (|| -> Result<bool, CommError> {
                // Lines 12-13: n0 samples into the current epoch, one batch.
                let sp = w.begin(SpanId::SampleBatch);
                sampler.sample_batch(g, n0, |interior| h.record_sample(interior));
                w.end(sp);
                let mut overlapped = 0u64;
                // Lines 14-15: command and await the epoch transition,
                // overlapping with sampling into the next epoch's frame.
                fw.force_transition(&mut h, epoch);
                let sp = w.begin(SpanId::TransitionWait);
                while !fw.transition_done(epoch) {
                    let interior = sampler.sample(g);
                    h.record_sample(interior);
                    overlapped += 1;
                }
                w.end(sp);

                // Lines 16-18: aggregate the epoch's frames locally.
                let sp = w.begin(SpanId::FrameAggregate);
                let mut epoch_frame = vec![0u64; n + 1];
                let tau_epoch = fw.aggregate_epoch(epoch, &mut epoch_frame[..n]);
                epoch_frame[n] = tau_epoch;
                w.end(sp);
                w.count(CounterId::BytesReduced, epoch_frame.len() as u64 * 8);

                // Section IV-E: node-local aggregation (the paper uses MPI
                // RMA over shared memory; semantically a node-local reduce),
                // overlapped with sampling.
                let sp = w.begin(SpanId::IreduceWait);
                let mut req = local.ireduce_sum_u64(0, &epoch_frame)?;
                while !req.test()? {
                    let interior = sampler.sample(g);
                    h.record_sample(interior);
                    overlapped += 1;
                }
                w.end(sp);
                // The node reduce completed: this rank's epoch frame is now
                // part of a globally-consistent prefix — checkpoint it. A
                // round that fails earlier never confirms, so its in-flight
                // frame is discarded at every rank, never double-counted.
                ledger.confirm(&epoch_frame);
                // xtask: allow(unwrap) — test() returned true, so the
                // request completed and its result is present.
                let node_frame = req.into_result().unwrap();

                // Section IV-F: leaders run Ibarrier (overlapped), then a
                // blocking Reduce — the strategy that outperformed
                // MPI_Ireduce.
                let mut d = 0u64;
                if is_leader {
                    let sp = w.begin(SpanId::IbarrierWait);
                    let mut bar = leaders.ibarrier()?;
                    while !bar.test()? {
                        let interior = sampler.sample(g);
                        h.record_sample(interior);
                        overlapped += 1;
                    }
                    w.end(sp);

                    let sp = w.begin(SpanId::Reduce);
                    // xtask: allow(unwrap) — this rank is its node's local
                    // root, so the local reduce delivered Some to it.
                    let frame = node_frame.expect("leader holds node frame");
                    let reduced = leaders.reduce_sum_u64(0, &frame)?;
                    w.end(sp);
                    w.count(CounterId::BytesReduced, frame.len() as u64 * 8);

                    // Lines 22-24: the root folds and checks.
                    if world.rank() == 0 {
                        // xtask: allow(unwrap) — the root is the leader
                        // root, so the reduction delivered Some to it.
                        let reduced = reduced.expect("leader root receives reduction");
                        let sp = w.begin(SpanId::Check);
                        let stop = fold_and_check(
                            &mut s_global,
                            &reduced,
                            cfg.epsilon,
                            omega,
                            &calibration,
                        );
                        w.end(sp);
                        d = u64::from(stop);
                    }
                }

                // Lines 25-27: broadcast the termination flag world-wide,
                // overlapped with sampling.
                let sp = w.begin(SpanId::BcastStop);
                let mut breq = world.ibcast_u64(0, (world.rank() == 0).then_some(d))?;
                while !breq.test()? {
                    let interior = sampler.sample(g);
                    h.record_sample(interior);
                    overlapped += 1;
                }
                w.end(sp);
                w.count(CounterId::Samples, n0 + overlapped);
                w.count(CounterId::Epochs, 1);
                // xtask: allow(unwrap) — test() returned true above.
                Ok(breq.into_result().unwrap() != 0)
            })();

            match round {
                // Lines 28-30.
                Ok(stop) => {
                    if stop {
                        fw.signal_termination();
                        break;
                    }
                    epoch += 1;
                }
                Err(CommError::RankFailed { rank }) if rank == my_world => {
                    dead = true; // own scheduled crash: leave the run
                    fw.signal_termination();
                    break;
                }
                Err(CommError::RankFailed { .. }) => {
                    // A peer died (or entered recovery): shrink the world,
                    // rebuild the global state from survivor ledgers, and
                    // re-split the hierarchy. Loop because further members
                    // can die while recovery itself is in flight.
                    loop {
                        let recovered = (|| -> Result<(), CommError> {
                            let (new_world, rebuilt) = shrink_and_rebuild(&world, &ledger, &w)?;
                            local_bytes_acc += local.bytes_transferred();
                            leader_bytes_acc += leaders.bytes_transferred();
                            world = new_world;
                            s_global = rebuilt;
                            let (l, il, ld) = hierarchical_comms(&world, shape)?;
                            local = l;
                            is_leader = il;
                            leaders = ld;
                            n0 = cfg.n0(threads * world.size());
                            Ok(())
                        })();
                        match recovered {
                            Ok(()) => {
                                epoch += 1;
                                break;
                            }
                            Err(CommError::RankFailed { rank }) if rank != my_world => continue,
                            Err(e) if e.failed_rank() == Some(my_world) => {
                                dead = true; // died mid-recovery
                                fw.signal_termination();
                                break;
                            }
                            Err(e) => {
                                panic!("unrecoverable communicator failure during recovery: {e}")
                            }
                        }
                    }
                    if dead {
                        break;
                    }
                }
                Err(e) => panic!("unrecoverable communicator failure: {e}"),
            }
        }
        let (rounds, lane_rounds) = sampler.kernel_occupancy();
        w.count(CounterId::KernelRounds, rounds);
        w.count(CounterId::KernelLaneRounds, lane_rounds);
    })
    // xtask: allow(unwrap) — children are joined above; see worker waiver.
    .expect("adaptive sampling scope");
    w.end(sp_ads);
    if dead {
        return RankOutcome::dead();
    }

    let result = if world.rank() == 0 {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        Some(BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        })
    } else {
        None
    };
    RankOutcome {
        result,
        is_leader,
        local_bytes: local_bytes_acc + local.bytes_transferred(),
        leader_bytes: leader_bytes_acc + leaders.bytes_transferred(),
        world_bytes: world.bytes_transferred(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::brandes;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};
    use kadabra_mpisim::FaultPlan;

    #[test]
    fn minimal_cluster_terminates() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let shape = ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 1 };
        let r = kadabra_epoch_mpi(&g, &KadabraConfig::new(0.1, 0.1), shape);
        assert!(r.samples > 0);
        assert!(r.stats.epochs >= 1);
    }

    #[test]
    fn hierarchical_cluster_accuracy() {
        let g = gnm(GnmConfig { n: 50, m: 130, seed: 12 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.04, delta: 0.1, seed: 31, ..Default::default() };
        // 4 ranks over 2 nodes, 2 threads each: exercises every communicator.
        let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
        let r = kadabra_epoch_mpi(&lcc, &cfg, shape);
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn various_shapes_terminate() {
        let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
        let cfg = KadabraConfig::new(0.1, 0.1);
        for shape in [
            ClusterShape { ranks: 2, ranks_per_node: 1, threads_per_rank: 1 },
            ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 },
            ClusterShape { ranks: 3, ranks_per_node: 2, threads_per_rank: 1 },
        ] {
            let r = kadabra_epoch_mpi(&g, &cfg, shape);
            assert!(r.samples > 0, "{shape:?}");
            assert!(r.stats.comm_bytes > 0, "{shape:?}");
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
        let shape = ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 };
        let r = kadabra_epoch_mpi(&g, &KadabraConfig::new(0.08, 0.1), shape);
        for s in &r.scores {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn crash_mid_adaptive_shrinks_resplits_and_stays_within_epsilon() {
        // Rank 3 (a non-leader on node 1) dies at its 5th collective join —
        // its first node-local reduce of the adaptive phase. Its node leader
        // fails the local reduce and starts recovery; the other node's ranks
        // observe the recovery through the leaders/world collectives; all
        // survivors shrink, re-split (node 1 keeps rank 2, now alone and
        // leader), and finish within ε.
        let g = gnm(GnmConfig { n: 50, m: 130, seed: 12 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 31, ..Default::default() };
        let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
        let plan = FaultPlan::ideal(7).with_crash_at_collective(3, 4);
        let tel = Telemetry::stats_only();
        let outcomes =
            Universe::run_with_plan(4, plan, |comm| rank_main(&lcc, &cfg, shape, comm, &tel));
        assert!(outcomes[3].result.is_none());
        let r =
            outcomes.into_iter().find_map(|o| o.result).expect("surviving root returns the result");
        let exact = brandes(&lcc);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} after crash recovery");
        assert_eq!(
            tel.summary().counter(CounterId::RanksLost),
            3,
            "three survivors each saw one loss"
        );
    }

    #[test]
    fn root_crash_fails_over_to_the_next_leader() {
        // World rank 0 — the leaders' root — dies mid-adaptive-phase; rank 1
        // becomes its node's leader and the new world root, resumes from the
        // rebuilt ledger state, and returns the final result.
        let g = gnm(GnmConfig { n: 40, m: 100, seed: 4 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig { epsilon: 0.06, delta: 0.1, seed: 9, ..Default::default() };
        let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 1 };
        let plan = FaultPlan::ideal(3).with_crash_at_collective(0, 10);
        let tel = Telemetry::stats_only();
        let outcomes =
            Universe::run_with_plan(4, plan, |comm| rank_main(&lcc, &cfg, shape, comm, &tel));
        assert!(outcomes[0].result.is_none(), "the dead root cannot return a result");
        let survivors: Vec<_> = outcomes.into_iter().filter_map(|o| o.result).collect();
        assert_eq!(survivors.len(), 1, "exactly one surviving root");
        let exact = brandes(&lcc);
        let worst = survivors[0]
            .scores
            .iter()
            .zip(&exact)
            .map(|(a, e)| (a - e).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} after root fail-over");
    }
}
