//! **KADABRA adaptive-sampling betweenness approximation** — sequential,
//! shared-memory parallel (epoch-based, Euro-Par'19) and MPI-parallel
//! (IPDPS'20), the primary contribution of the reproduced paper.
//!
//! The algorithm (Section III-A of the paper) estimates the normalized
//! betweenness `b(v)` of every vertex by sampling random vertex pairs and
//! uniform random shortest paths between them; `b̃(v) = c̃(v)/τ` where `c̃(v)`
//! counts sampled paths with `v` in their interior. It improves on fixed-size
//! sampling (RK) by *adaptive stopping*: sampling ends as soon as the
//! per-vertex confidence bounds `f` and `g` simultaneously drop below ε for
//! all vertices (with a statically precomputed hard cap of ω samples).
//!
//! Execution modes, in increasing order of paper fidelity:
//!
//! | Function | Paper analogue |
//! |---|---|
//! | [`kadabra_sequential`] | KADABRA as in Borassi & Natale (Ref. [7]) |
//! | [`kadabra_naive_parallel`] | the "simple" parallelization dismissed in Section III-B |
//! | [`kadabra_shared`] | the epoch-based shared-memory state of the art (Ref. [24]) |
//! | [`kadabra_mpi_flat`] | **Algorithm 1**: pure-MPI adaptive sampling |
//! | [`kadabra_epoch_mpi`] | **Algorithm 2**: epoch framework + hierarchical MPI |
//!
//! All modes share the same three phases (Section III-A): diameter
//! computation → calibration of the per-vertex failure probabilities
//! δ_L/δ_U → adaptive sampling; see [`phases`].

pub mod affinity;
pub mod bounds;
pub mod calibration;
pub mod chaos;
pub mod config;
pub mod elastic;
pub mod epoch_mpi;
pub mod mpi;
pub mod naive;
pub mod phases;
pub mod recovery;
pub mod result;
pub mod revalidate;
pub mod sampler;
pub mod sequential;
pub mod shared;
mod sync;
pub mod topk;
pub mod variants;
pub mod variants_parallel;

pub use bounds::{achieved_epsilon, f_bound, g_bound, omega};
pub use calibration::Calibration;
pub use chaos::{kadabra_epoch_mpi_observed, kadabra_mpi_flat_observed, ChaosOptions, ChaosReport};
pub use config::{ClusterShape, KadabraConfig, KernelOptions};
pub use elastic::{kadabra_mpi_flat_elastic, planned_admissions, ElasticOptions, ElasticReport};
pub use epoch_mpi::{kadabra_epoch_mpi, kadabra_epoch_mpi_traced};
pub use mpi::{kadabra_mpi_flat, kadabra_mpi_flat_traced};
pub use naive::kadabra_naive_parallel;
pub use phases::{prepare, Prepared};
pub use recovery::{shrink_and_rebuild, CheckpointError, SampleLedger};
pub use result::{BetweennessResult, PhaseTimings, SamplingStats};
pub use revalidate::{resample_invalidated, ResampleScratch, ValidityBitmap};
pub use sampler::ThreadSampler;
pub use sequential::{kadabra_sequential, kadabra_sequential_traced};
pub use shared::{kadabra_shared, kadabra_shared_traced, phase_timings_from, sampling_stats_from};
pub use topk::{
    confidence_intervals, confident_top_k, kadabra_topk, AdaptiveTopKResult, ConfidenceInterval,
    TopKResult,
};
pub use variants::{kadabra_directed, kadabra_weighted, PathSource};
pub use variants_parallel::{kadabra_shared_directed, kadabra_shared_weighted, ParallelPathSource};
