//! Elastic scale-out variant of observed Algorithm 1: communicator grow,
//! ledger rebalancing, and cross-rank work stealing under a deterministic
//! [`FaultPlan`].
//!
//! # Grow and rebalance (DESIGN.md §15)
//!
//! The chaos drivers ([`crate::chaos`]) let capacity fall: a crash shrinks
//! the communicator and survivors rebuild global state from their
//! [`SampleLedger`]s. This module turns the dial the other way. A plan's
//! [`kadabra_mpisim::JoinPoint`]s schedule membership *growth*: at the start of the listed
//! global round, every member calls [`Communicator::grow`], standby ranks
//! parked by [`Universe::run_elastic`] are admitted, and the grown world
//! runs a two-step rebalance in lockstep with the newcomers' bootstrap:
//!
//! 1. **round handoff** — the root broadcasts the current round, so
//!    newcomers enter the adaptive loop exactly where the survivors are;
//! 2. **ledger rebuild** — one all-reduce of every member's cumulative
//!    ledger frame (newcomers contribute zeros) reconstructs `[Σc̃, τ]`;
//!    the root asserts the rebuilt state equals its pre-grow global state,
//!    so the ε-guarantee's sample accounting survives the membership change.
//!
//! Everyone then re-derives `n0` upward for the new world size and
//! newcomers take over their deterministic slice of the remaining budget —
//! their sampler streams are keyed by world rank, fixed at launch, so the
//! post-grow schedule is a pure function of `(plan, seed)`. The
//! [`CrossEpochProbe`] audits the epoch-gap invariant *across* the join:
//! standbys start excluded ([`CrossEpochProbe::with_standbys`]) and are
//! [`CrossEpochProbe::admit`]ed in-round.
//!
//! # Work stealing
//!
//! With [`ElasticOptions::steal`], ranks the plan marks as stragglers
//! (`rank_factor > 1`) keep only `n0 / factor` of their per-round quota;
//! the deficit is pre-partitioned across the non-straggler ranks, claimed
//! through the deterministic [`Communicator::steal_claim`] /
//! [`Communicator::steal_grant`] handshake, and drawn by the helpers from
//! the *straggler's* dedicated steal streams — so the estimate stays a pure
//! function of `(plan, seed)` while round latency stops tracking the
//! slowest rank's straggler factor (the quota a straggler must produce
//! before joining the round's reduction shrinks by its own factor).

use crate::config::KadabraConfig;
use crate::phases::{
    calibration_samples_for_thread, diameter_phase, fold_and_check, scores_from_counts,
};
use crate::recovery::{shrink_and_rebuild, SampleLedger};
use crate::result::BetweennessResult;
use crate::sampler::{ThreadSampler, ADS_STREAM_OFFSET};
use crate::shared::{phase_timings_from, sampling_stats_from};
use crate::{bounds, calibration::Calibration};
use kadabra_epoch::CrossEpochProbe;
use kadabra_graph::Graph;
use kadabra_mpisim::{CommError, Communicator, ElasticRank, FaultPlan, StandbyRank, Universe};
use kadabra_telemetry::{CounterId, EventWriter, SpanId, Summary, Telemetry};
use std::sync::Arc;

/// Event capacity per `(rank, thread)` recorder when an elastic run traces.
const ELASTIC_TRACE_CAPACITY: usize = 1 << 14;

/// Base of the steal-stream thread coordinate space: disjoint from
/// calibration threads (small), adaptive streams ([`ADS_STREAM_OFFSET`] +
/// small), so stolen samples never collide with any rank's own streams.
const STEAL_STREAM_BASE: usize = 1 << 21;

/// Steal-stream stride per round (bounds helpers per round at 1024).
const STEAL_ROUND_STRIDE: usize = 1024;

/// Configuration of an elastic run.
#[derive(Debug, Clone)]
pub struct ElasticOptions {
    /// The deterministic fault plan (join schedule, stragglers, delays).
    pub plan: FaultPlan,
    /// Audit the cross-process epoch-distance invariant every round,
    /// including across membership changes.
    pub probe: bool,
    /// Run the per-round conservation check plus the cross-grow
    /// `[Σc̃, τ]` conservation audit.
    pub conservation: bool,
    /// Buffer a deterministic event trace. Toggling this must not change
    /// the computation (asserted by `tests/determinism_matrix.rs`).
    pub telemetry: bool,
    /// Redistribute straggler quota through the steal protocol.
    pub steal: bool,
}

impl ElasticOptions {
    /// Everything on, under `plan` — what the elastic acceptance suite uses.
    pub fn all(plan: FaultPlan) -> Self {
        ElasticOptions { plan, probe: true, conservation: true, telemetry: false, steal: true }
    }

    /// Enables the deterministic event trace.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Disables work stealing (stragglers keep their full quota).
    pub fn without_steal(mut self) -> Self {
        self.steal = false;
        self
    }
}

fn telemetry_for(opts: &ElasticOptions) -> Telemetry {
    if opts.telemetry {
        Telemetry::deterministic(ELASTIC_TRACE_CAPACITY)
    } else {
        Telemetry::deterministic(0)
    }
}

/// Outcome of an elastic run: the algorithm's result plus what the probes
/// and the elastic machinery saw.
#[derive(Debug)]
pub struct ElasticReport {
    /// The root's betweenness result, exactly as the plain driver returns
    /// it.
    pub result: BetweennessResult,
    /// Largest cross-process round gap observed (0 when probing was off).
    pub max_epoch_gap: u32,
    /// Completion events the epoch probe audited.
    pub probe_observations: u64,
    /// Audits that violated the gap-≤-1 invariant (must be 0).
    pub probe_violations: u64,
    /// Rounds the conservation check covered.
    pub conservation_rounds: u64,
    /// Standby ranks admitted by grows, as seen by the root.
    pub ranks_joined: u64,
    /// Samples helpers drew on stragglers' behalf, summed over all ranks.
    pub samples_stolen: u64,
    /// The plan's one-line reproduction handle (print this on failure).
    pub plan_summary: String,
    /// Telemetry phase breakdown (logical clock only — bit-reproducible).
    pub phases: Summary,
}

impl ElasticReport {
    /// Panics unless every enabled probe came back clean.
    pub fn assert_invariants(&self) {
        assert_eq!(
            self.probe_violations, 0,
            "epoch-distance invariant violated (max gap {}) [{}]",
            self.max_epoch_gap, self.plan_summary
        );
        assert!(
            self.max_epoch_gap <= 1,
            "cross-process epoch gap {} > 1 [{}]",
            self.max_epoch_gap,
            self.plan_summary
        );
    }
}

/// What one elastic rank hands back to the driver entry point.
struct ElasticOutcome {
    result: Option<BetweennessResult>,
    rounds: u64,
    ranks_joined: u64,
    samples_stolen: u64,
}

impl ElasticOutcome {
    /// The outcome of a crashed rank, or of a standby the world never grew
    /// to admit.
    fn dead() -> Self {
        ElasticOutcome { result: None, rounds: 0, ranks_joined: 0, samples_stolen: 0 }
    }
}

/// Runs **Algorithm 1** elastically: `founding` ranks start the run,
/// `standby` more park until the plan's [`kadabra_mpisim::JoinPoint`]s grow them in.
/// Bit-reproducible: identical `(g, cfg, founding, standby, opts)` give
/// identical scores — including runs that grow mid-adaptive-phase and runs
/// whose stragglers are relieved by work stealing.
pub fn kadabra_mpi_flat_elastic(
    g: &Graph,
    cfg: &KadabraConfig,
    founding: usize,
    standby: usize,
    opts: &ElasticOptions,
) -> ElasticReport {
    cfg.validate();
    assert!(founding >= 1);
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let probe =
        opts.probe.then(|| Arc::new(CrossEpochProbe::with_standbys(founding + standby, founding)));
    let tel = telemetry_for(opts);
    let outcomes = Universe::run_elastic(founding, standby, opts.plan.clone(), |role| match role {
        ElasticRank::Founding(comm) => {
            elastic_founder_main(g, cfg, comm, opts, probe.as_deref(), &tel)
        }
        ElasticRank::Standby(s) => {
            elastic_newcomer_main(g, cfg, s, opts, probe.as_deref(), &tel, founding)
        }
    });
    let samples_stolen = outcomes.iter().map(|o| o.samples_stolen).sum();
    let root = outcomes
        .into_iter()
        .find(|o| o.result.is_some())
        // xtask: allow(unwrap) — exactly one rank (the root) returns Some.
        .expect("the root produces the result");
    let (max_epoch_gap, probe_observations, probe_violations) = match &probe {
        Some(p) => (p.max_gap(), p.observations(), p.violations()),
        None => (0, 0, 0),
    };
    ElasticReport {
        // xtask: allow(unwrap) — selected for holding Some above.
        result: root.result.expect("root outcome holds the result"),
        max_epoch_gap,
        probe_observations,
        probe_violations,
        conservation_rounds: root.rounds,
        ranks_joined: root.ranks_joined,
        samples_stolen,
        plan_summary: opts.plan.summary(),
        phases: tel.summary(),
    }
}

/// Loop context shared by founders and newcomers.
struct LoopCtx<'a> {
    g: &'a Graph,
    cfg: &'a KadabraConfig,
    opts: &'a ElasticOptions,
    probe: Option<&'a CrossEpochProbe>,
    omega: u64,
    calibration: &'a Calibration,
}

/// Per-rank body of a founding member: the flat observed setup (diameter
/// broadcast + calibration all-reduce over the founding world), then the
/// elastic adaptive loop from round 0.
fn elastic_founder_main(
    g: &Graph,
    cfg: &KadabraConfig,
    comm: Communicator,
    opts: &ElasticOptions,
    probe: Option<&CrossEpochProbe>,
    tel: &Telemetry,
) -> ElasticOutcome {
    let n = g.num_nodes();
    let my_world = comm.world_rank();
    let founding = comm.size();
    let w = tel.writer(my_world as u32, 0);
    comm.set_tracer(w.clone());

    let sp = w.begin(SpanId::Diameter);
    let vd_bcast = if comm.rank() == 0 {
        let (vd, _) = diameter_phase(g, cfg);
        comm.bcast_u64(0, Some(vd as u64))
    } else {
        comm.bcast_u64(0, None)
    };
    let vd = match vd_bcast {
        Ok(v) => v as u32,
        Err(e) if e.failed_rank() == Some(my_world) => return ElasticOutcome::dead(),
        Err(e) => elastic_setup_panic(e),
    };
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let sp = w.begin(SpanId::Calibration);
    let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, 0);
    let mut counts = vec![0u64; n + 1];
    let taken =
        calibration_samples_for_thread(g, &mut sampler, &mut counts[..n], cfg, omega, founding);
    counts[n] = taken;
    let total = match comm.allreduce_sum_u64(&counts) {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return ElasticOutcome::dead(),
        Err(e) => elastic_setup_panic(e),
    };
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp);

    let ctx = LoopCtx { g, cfg, opts, probe, omega, calibration: &calibration };
    elastic_adaptive_loop(&ctx, comm, &w, 0, 0, vd, vec![0u64; n + 1], SampleLedger::new(n))
}

/// Per-rank body of a standby: park until admitted, then bootstrap — the
/// deterministic local recomputations (diameter, calibration replay) plus
/// the two lockstep rebalance collectives the survivors run inside their
/// grow block — and enter the shared loop at the handed-off round.
fn elastic_newcomer_main(
    g: &Graph,
    cfg: &KadabraConfig,
    standby: StandbyRank,
    opts: &ElasticOptions,
    probe: Option<&CrossEpochProbe>,
    tel: &Telemetry,
    founding: usize,
) -> ElasticOutcome {
    let my_world = standby.world_rank();
    // Never admitted (the plan scheduled no join, or the run stopped
    // first): indistinguishable from a dead rank, by design.
    let Ok(comm) = standby.wait_admission() else { return ElasticOutcome::dead() };
    let n = g.num_nodes();
    let w = tel.writer(my_world as u32, 0);
    comm.set_tracer(w.clone());

    // Diameter: deterministic, so the newcomer recomputes locally what the
    // founders broadcast at launch — no collective needed.
    let sp = w.begin(SpanId::Diameter);
    let (vd, _) = diameter_phase(g, cfg);
    w.end(sp);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    // Calibration: replay every founding rank's calibration stream. The
    // streams are keyed by (seed, rank, thread 0), so the replay
    // reconstructs the founding all-reduce total exactly.
    let sp = w.begin(SpanId::Calibration);
    let mut total = vec![0u64; n + 1];
    for r in 0..founding {
        let mut sampler = ThreadSampler::new(n, cfg.seed, r, 0);
        let mut counts = vec![0u64; n];
        let taken =
            calibration_samples_for_thread(g, &mut sampler, &mut counts, cfg, omega, founding);
        for (a, c) in total.iter_mut().zip(counts) {
            *a += c;
        }
        total[n] += taken;
    }
    let calibration = Calibration::from_counts(&total[..n], total[n], cfg);
    w.end(sp);

    // Lockstep with the survivors' grow block: round handoff, then the
    // ledger-rebuild all-reduce (a fresh ledger contributes zeros).
    let ledger = SampleLedger::new(n);
    let sp = w.begin(SpanId::Rebalance);
    let handoff = (|| -> Result<(u32, Vec<u64>), CommError> {
        let round = comm.bcast_u64(0, None)? as u32;
        let rebuilt = comm.allreduce_sum_u64(ledger.frame())?;
        Ok((round, rebuilt))
    })();
    w.end(sp);
    let (round, s_global) = match handoff {
        Ok(t) => t,
        Err(e) if e.failed_rank() == Some(my_world) => return ElasticOutcome::dead(),
        Err(e) => elastic_setup_panic(e),
    };

    let ctx = LoopCtx { g, cfg, opts, probe, omega, calibration: &calibration };
    // join_eligible_from = round + 1: the grow that admitted this rank is
    // already behind it; only *later* join points concern it.
    elastic_adaptive_loop(&ctx, comm, &w, round, round + 1, vd, s_global, ledger)
}

/// Panic for setup/bootstrap-phase communicator failures that are not this
/// rank's own crash (elastic corpora schedule joins past the setup
/// collectives and are crash-free).
fn elastic_setup_panic(e: CommError) -> ! {
    panic!("rank failure during elastic setup/bootstrap phases: {e}")
}

/// The deterministic per-round steal schedule, computed identically by
/// every member from shared `(plan, n0, members)` state.
struct StealRound {
    /// Straggler communicator ranks, ascending.
    stragglers: Vec<usize>,
    /// Helper communicator ranks, ascending.
    helpers: Vec<usize>,
    /// `chunks[si][hi]`: samples helper `hi` takes from straggler `si`.
    chunks: Vec<Vec<u64>>,
}

fn steal_schedule(plan: &FaultPlan, comm: &Communicator, n0: u64) -> Option<StealRound> {
    let members = comm.members();
    let stragglers: Vec<usize> =
        (0..comm.size()).filter(|&r| plan.rank_factor(members[r]) > 1).collect();
    let helpers: Vec<usize> =
        (0..comm.size()).filter(|&r| plan.rank_factor(members[r]) <= 1).collect();
    if stragglers.is_empty() || helpers.is_empty() {
        return None;
    }
    let chunks = stragglers
        .iter()
        .map(|&s| {
            let deficit = n0 - straggler_keep(plan.rank_factor(members[s]), n0);
            let base = deficit / helpers.len() as u64;
            let rem = usize::try_from(deficit % helpers.len() as u64).unwrap_or(0);
            (0..helpers.len()).map(|i| base + u64::from(i < rem)).collect()
        })
        .collect();
    Some(StealRound { stragglers, helpers, chunks })
}

/// How much of its own round quota a straggler with latency `factor` keeps:
/// inversely proportional, at least one sample (its reduction contribution
/// must stay non-degenerate).
fn straggler_keep(factor: u64, n0: u64) -> u64 {
    (n0 / factor.max(1)).max(1).min(n0)
}

/// The elastic adaptive loop, shared by founders (entering at round 0) and
/// newcomers (entering at the handed-off round with the admitting join
/// behind them). Mirrors `chaos::flat_rank_main`'s loop; the elastic
/// deviations (grow block, steal schedule) are commented.
#[allow(clippy::too_many_arguments)]
fn elastic_adaptive_loop(
    ctx: &LoopCtx<'_>,
    mut comm: Communicator,
    w: &EventWriter,
    entry_round: u32,
    join_eligible_from: u32,
    vd: u32,
    mut s_global: Vec<u64>,
    mut ledger: SampleLedger,
) -> ElasticOutcome {
    let g = ctx.g;
    let cfg = ctx.cfg;
    let plan = &ctx.opts.plan;
    let n = g.num_nodes();
    let my_world = comm.world_rank();

    let sp_ads = w.begin(SpanId::AdaptiveSampling);
    let mut n0 = cfg.n0(comm.size());
    let mut sampler = ThreadSampler::new(n, cfg.seed, my_world, ADS_STREAM_OFFSET);
    let mut s_loc = vec![0u64; n + 1];
    let mut rounds = 0u64;
    let mut ranks_joined = 0u64;
    let mut samples_stolen = 0u64;
    let mut dead = false;

    let sample_into = |frame: &mut Vec<u64>, sampler: &mut ThreadSampler| {
        for &v in sampler.sample(g) {
            frame[v as usize] += 1;
        }
        frame[n] += 1;
    };

    let mut round = entry_round;
    loop {
        w.set_epoch(round);
        if let Some(p) = ctx.probe {
            p.begin_round(my_world, round);
        }

        // --- Elastic grow at the round boundary -------------------------
        // Joins fire at the *start* of the scheduled round, before its
        // sample batch; every member reads the same plan, so the grow is a
        // collective everyone enters. Newcomers skip the join that admitted
        // them (join_eligible_from) but participate in later ones.
        if round >= join_eligible_from {
            let k = plan.join_at_round(u64::from(round));
            if k > 0 {
                let grow_result = (|| -> Result<(), CommError> {
                    let sp = w.begin(SpanId::Rebalance);
                    let old_members = comm.members().to_vec();
                    let grown = comm.grow(k)?;
                    // Rebalance, in lockstep with the newcomers' bootstrap:
                    // round handoff + ledger rebuild.
                    grown.bcast_u64(0, (grown.rank() == 0).then_some(u64::from(round)))?;
                    let rebuilt = grown.allreduce_sum_u64(ledger.frame())?;
                    if grown.rank() == 0 && ctx.opts.conservation {
                        // The cross-grow conservation audit: admitting ranks
                        // must neither lose nor mint samples.
                        assert_eq!(
                            [rebuilt[..n].iter().sum::<u64>(), rebuilt[n]],
                            [s_global[..n].iter().sum::<u64>(), s_global[n]],
                            "[Σc̃, τ] not conserved across grow at round {round} [{}]",
                            plan.summary()
                        );
                    }
                    if let Some(p) = ctx.probe {
                        for m in grown.members() {
                            if !old_members.contains(m) {
                                p.admit(*m, round);
                            }
                        }
                    }
                    ranks_joined += (grown.size() - old_members.len()) as u64;
                    s_global = rebuilt;
                    n0 = cfg.n0(grown.size());
                    comm = grown;
                    w.end(sp);
                    Ok(())
                })();
                match grow_result {
                    Ok(()) => {}
                    Err(e) if e.failed_rank() == Some(my_world) => {
                        dead = true;
                        break;
                    }
                    Err(e) => panic!("rank failure during elastic grow: {e}"),
                }
            }
        }

        // --- Deterministic steal schedule -------------------------------
        let steal = ctx.opts.steal.then(|| steal_schedule(plan, &comm, n0)).flatten();
        let my_quota = match &steal {
            Some(st) if st.stragglers.contains(&comm.rank()) => {
                straggler_keep(plan.rank_factor(my_world), n0)
            }
            _ => n0,
        };

        let round_result = (|| -> Result<bool, CommError> {
            let sp = w.begin(SpanId::SampleBatch);
            for _ in 0..my_quota {
                sample_into(&mut s_loc, &mut sampler);
            }
            // Steal handshake: stragglers grant their pre-partitioned
            // deficit in helper order; helpers claim in straggler order and
            // draw the stolen samples from the straggler's dedicated steal
            // streams into their own frame. Claim sends are buffered, so no
            // interleaving of the two loops can deadlock.
            if let Some(st) = &steal {
                if let Some(si) = st.stragglers.iter().position(|&s| s == comm.rank()) {
                    for (hi, &h) in st.helpers.iter().enumerate() {
                        let c = st.chunks[si][hi];
                        if c == 0 {
                            continue;
                        }
                        let granted = comm.steal_grant(h)?;
                        assert_eq!(
                            granted,
                            (u64::from(round), hi as u64, c),
                            "steal schedule divergence at straggler {si} [{}]",
                            plan.summary()
                        );
                    }
                } else if let Some(hi) = st.helpers.iter().position(|&h| h == comm.rank()) {
                    for (si, &s) in st.stragglers.iter().enumerate() {
                        let c = st.chunks[si][hi];
                        if c == 0 {
                            continue;
                        }
                        comm.steal_claim(s, u64::from(round), hi as u64, c)?;
                        let s_world = comm.members()[s];
                        let stream = STEAL_STREAM_BASE + round as usize * STEAL_ROUND_STRIDE + hi;
                        let mut stolen = ThreadSampler::new(n, cfg.seed, s_world, stream);
                        for _ in 0..c {
                            sample_into(&mut s_loc, &mut stolen);
                        }
                        w.count(CounterId::SamplesStolen, c);
                        samples_stolen += c;
                    }
                }
            }
            w.end(sp);

            let snapshot = std::mem::replace(&mut s_loc, vec![0u64; n + 1]);
            let mut overlapped = 0u64;
            let sp = w.begin(SpanId::IreduceWait);
            let mut req = comm.ireduce_sum_u64(0, &snapshot)?;
            while !req.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::BytesReduced, snapshot.len() as u64 * 8);
            ledger.confirm(&snapshot);

            let mut d = 0u64;
            let mut folded = [0u64; 2]; // root: [Σc̃, τ] absorbed this round
            if comm.rank() == 0 {
                // xtask: allow(unwrap) — the request completed (test() was
                // true) and this rank is the reduction root, so both layers
                // are Some.
                let reduced = req.into_result().unwrap().expect("root receives reduction");
                folded = [reduced[..n].iter().sum(), reduced[n]];
                let sp = w.begin(SpanId::Check);
                let stop = fold_and_check(
                    &mut s_global,
                    &reduced,
                    cfg.epsilon,
                    ctx.omega,
                    ctx.calibration,
                );
                w.end(sp);
                d = u64::from(stop);
            }

            if ctx.opts.conservation {
                let sent = [
                    snapshot[..n].iter().sum::<u64>(),
                    snapshot[n],
                    ledger.frame()[..n].iter().sum::<u64>(),
                    ledger.frame()[n],
                ];
                let totals = comm.allreduce_sum_u64(&sent)?;
                if comm.rank() == 0 {
                    assert_eq!(
                        [totals[0], totals[1]],
                        folded,
                        "sample conservation violated at round {round} [{}]",
                        plan.summary()
                    );
                    assert_eq!(
                        [totals[2], totals[3]],
                        [s_global[..n].iter().sum::<u64>(), s_global[n]],
                        "ledger conservation violated at round {round} [{}]",
                        plan.summary()
                    );
                }
                rounds += 1;
            }

            let sp = w.begin(SpanId::BcastStop);
            let mut breq = comm.ibcast_u64(0, (comm.rank() == 0).then_some(d))?;
            while !breq.test()? {
                sample_into(&mut s_loc, &mut sampler);
                overlapped += 1;
            }
            w.end(sp);
            w.count(CounterId::Samples, my_quota + overlapped);
            w.count(CounterId::Epochs, 1);
            // xtask: allow(unwrap) — test() returned true above.
            Ok(breq.into_result().unwrap() != 0)
        })();

        match round_result {
            Ok(stop) => {
                if let Some(p) = ctx.probe {
                    p.complete_round(my_world, round);
                }
                if stop {
                    break;
                }
                round += 1;
            }
            Err(CommError::RankFailed { rank }) if rank == my_world => {
                dead = true;
                break;
            }
            Err(CommError::RankFailed { .. }) => {
                // Crash recovery, exactly as in the chaos driver: shrink,
                // rebuild the ledgers, rescale n0 downward.
                let prev_members = comm.members().to_vec();
                match shrink_and_rebuild(&comm, &ledger, w) {
                    Ok((small, rebuilt)) => {
                        if let Some(p) = ctx.probe {
                            for m in prev_members.iter().filter(|m| !small.members().contains(m)) {
                                p.retire(*m);
                            }
                        }
                        comm = small;
                        s_global = rebuilt;
                        n0 = cfg.n0(comm.size());
                        round += 1; // the failed round's frames are discarded
                    }
                    Err(e) if e.failed_rank() == Some(my_world) => {
                        dead = true;
                        break;
                    }
                    Err(e) => panic!("unrecoverable communicator failure during recovery: {e}"),
                }
            }
            Err(e) => panic!("unrecoverable communicator failure: {e}"),
        }
    }
    w.end(sp_ads);
    if dead {
        return ElasticOutcome::dead();
    }

    let result = (comm.rank() == 0).then(|| {
        let tau = s_global[n];
        let rec = w.recorder();
        let mut stats = sampling_stats_from(rec);
        stats.samples = tau;
        stats.comm_bytes = comm.bytes_transferred();
        BetweennessResult {
            scores: scores_from_counts(&s_global[..n], tau),
            samples: tau,
            omega: ctx.omega,
            vertex_diameter: vd,
            timings: phase_timings_from(rec),
            stats,
        }
    });
    ElasticOutcome { result, rounds, ranks_joined, samples_stolen }
}

/// The join schedule of a plan projected onto a standby pool: the number of
/// standbys a run with `standby` parked ranks will actually admit.
pub fn planned_admissions(plan: &FaultPlan, standby: usize) -> usize {
    plan.total_joiners().min(standby)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::generators::{grid, GridConfig};

    fn small_graph() -> Graph {
        grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 })
    }

    #[test]
    fn elastic_without_joins_matches_structure_of_chaos_run() {
        // A plan with no join points never grows: the elastic driver must
        // behave like the plain observed one (standbys report dead).
        let g = small_graph();
        let cfg = KadabraConfig::new(0.1, 0.1);
        let opts = ElasticOptions::all(FaultPlan::ideal(2));
        let r = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &opts);
        r.assert_invariants();
        assert_eq!(r.ranks_joined, 0);
        assert_eq!(r.samples_stolen, 0);
        assert!(r.result.samples > 0);
    }

    #[test]
    fn grow_mid_run_is_bit_reproducible_and_conserves() {
        // The acceptance scenario: grow 2 ranks mid-adaptive-phase; the run
        // must stay bit-reproducible from (plan, seed) with the probe and
        // the cross-grow conservation audit clean.
        let g = small_graph();
        let cfg = KadabraConfig::new(0.05, 0.1);
        let opts = ElasticOptions::all(FaultPlan::ideal(13).with_join(1, 2));
        let a = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &opts);
        a.assert_invariants();
        assert_eq!(a.ranks_joined, 2, "[{}]", a.plan_summary);
        assert!(a.conservation_rounds > 0);
        assert!(a.probe_observations > 0);
        let b = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
    }

    #[test]
    fn seeded_join_corpus_admits_and_stays_clean() {
        // from_seed_with_grows schedules exactly one join within the pool
        // size; several seeds must all run clean and reproducibly.
        let g = small_graph();
        let cfg = KadabraConfig::new(0.08, 0.1);
        for seed in 0..4 {
            let plan = FaultPlan::from_seed_with_grows(seed, 2);
            let expect = planned_admissions(&plan, 2) as u64;
            let opts = ElasticOptions::all(plan);
            let r = kadabra_mpi_flat_elastic(&g, &cfg, 3, 2, &opts);
            r.assert_invariants();
            // The join may be scheduled past the stopping round on an easy
            // instance; when the run reaches it, it must admit in full.
            assert!(
                r.ranks_joined == expect || r.ranks_joined == 0,
                "partial admission: {} of {expect} [{}]",
                r.ranks_joined,
                r.plan_summary
            );
        }
    }

    #[test]
    fn straggler_steal_redistributes_quota_reproducibly() {
        let g = small_graph();
        let cfg = KadabraConfig::new(0.05, 0.1);
        let plan = FaultPlan::ideal(29).with_straggler(1, 8);
        let opts = ElasticOptions::all(plan.clone());
        let a = kadabra_mpi_flat_elastic(&g, &cfg, 3, 0, &opts);
        a.assert_invariants();
        assert!(a.samples_stolen > 0, "straggler deficit never stolen [{}]", a.plan_summary);
        let b = kadabra_mpi_flat_elastic(&g, &cfg, 3, 0, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
        assert_eq!(a.result.samples, b.result.samples);
        // Stealing redistributes *who* draws, not *how much* arrives: the
        // conservation audit inside the run already asserted every round;
        // with stealing disabled the run still converges cleanly.
        let c = kadabra_mpi_flat_elastic(&g, &cfg, 3, 0, &opts.clone().without_steal());
        c.assert_invariants();
        assert_eq!(c.samples_stolen, 0);
    }

    #[test]
    fn grow_and_steal_compose() {
        // A straggler plan *and* a mid-run join: newcomers are immediately
        // enrolled as helpers in the steal schedule of later rounds.
        let g = small_graph();
        let cfg = KadabraConfig::new(0.05, 0.1);
        let plan = FaultPlan::ideal(31).with_straggler(0, 6).with_join(1, 1);
        let opts = ElasticOptions::all(plan);
        let a = kadabra_mpi_flat_elastic(&g, &cfg, 2, 1, &opts);
        a.assert_invariants();
        assert_eq!(a.ranks_joined, 1, "[{}]", a.plan_summary);
        assert!(a.samples_stolen > 0, "[{}]", a.plan_summary);
        let b = kadabra_mpi_flat_elastic(&g, &cfg, 2, 1, &opts);
        assert_eq!(a.result.scores, b.result.scores, "[{}]", a.plan_summary);
    }

    #[test]
    fn n0_rescales_upward_on_grow() {
        // The ledger-rebalance contract: after adding ranks, the per-rank
        // round quota is cfg.n0(new_size) — smaller per rank, same or more
        // in total. Asserted indirectly: cfg.n0 is monotone non-increasing
        // in P, so the grown world's quota must not exceed the founders'.
        let cfg = KadabraConfig::new(0.05, 0.1);
        assert!(cfg.n0(4) <= cfg.n0(2));
        assert!(cfg.n0(6) <= cfg.n0(4));
    }
}
