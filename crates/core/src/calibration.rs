//! Phase 2 of KADABRA: calibration of the per-vertex failure probabilities
//! δ_L(v), δ_U(v).
//!
//! The paper (footnote 2) notes that the choice of δ_L/δ_U affects only the
//! running time, never correctness — any positive assignment with
//! `Σ_v (δ_L(v) + δ_U(v)) ≤ δ` is sound. KADABRA therefore takes a small
//! number of *non-adaptive* calibration samples first and shapes the budget
//! so that all vertices are expected to satisfy their bounds at roughly the
//! same τ.
//!
//! The shape follows from the dominant term of `f`: requiring
//! `f(b̃, δ_L, ω, τ*) ≈ sqrt(2 b̃ ω ln(1/δ_L))/τ* ≤ ε` at a common stopping
//! time τ* yields `ln(1/δ_L(v)) ∝ 1/b̃(v)`, i.e. `δ_L(v) = exp(−C/b̃(v))`.
//! We binary-search the constant `C` (equivalently, the target τ*) so that
//! the total spent budget matches `(1 − floor)·δ`, then spread the remaining
//! `floor·δ` uniformly so that every vertex — including ones never touched
//! during calibration — retains a strictly positive budget.

use crate::config::KadabraConfig;

/// Calibrated per-vertex failure probabilities.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Lower-deviation budget per vertex.
    pub delta_l: Vec<f64>,
    /// Upper-deviation budget per vertex.
    pub delta_u: Vec<f64>,
    /// Number of calibration samples the estimates came from.
    pub samples: u64,
}

impl Calibration {
    /// Computes δ_L/δ_U from aggregated calibration counts (`counts[v]` =
    /// paths through `v` among `tau` samples).
    ///
    /// Deterministic in its inputs: with the counts all ranks obtain from
    /// the same all-reduce, every rank computes identical budgets.
    pub fn from_counts(counts: &[u64], tau: u64, cfg: &KadabraConfig) -> Calibration {
        assert!(tau > 0, "calibration requires at least one sample");
        let n = counts.len();
        let floor_budget = cfg.delta * cfg.calibration_floor;
        let shaped_budget = cfg.delta - floor_budget;
        let per_vertex_floor = floor_budget / (2.0 * n as f64);

        let b: Vec<f64> = counts.iter().map(|&c| c as f64 / tau as f64).collect();

        // Binary search C in exp(-C / b̃(v)): sum is monotone decreasing in C.
        // Vertices with b̃ = 0 contribute nothing to the shaped budget (their
        // floor suffices — their g-bound only needs a modest τ).
        let spent = |c_param: f64| -> f64 {
            b.iter().map(|&bv| if bv > 0.0 { 2.0 * (-c_param / bv).exp() } else { 0.0 }).sum()
        };
        let mut delta_l = vec![per_vertex_floor; n];
        let mut delta_u = vec![per_vertex_floor; n];
        let max_b = b.iter().cloned().fold(0.0f64, f64::max);
        if max_b > 0.0 && shaped_budget > 0.0 {
            // Bracket: C = 0 spends 2·#{b>0} ≥ shaped (for any non-trivial n);
            // C large spends ~0.
            let mut lo = 0.0f64;
            let mut hi = max_b * (2.0 * n as f64 / shaped_budget).ln().max(1.0) * 4.0;
            while spent(hi) > shaped_budget {
                hi *= 2.0;
            }
            if spent(lo) <= shaped_budget {
                // Degenerate: even C = 0 fits (very few touched vertices).
                hi = 0.0;
            }
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                if spent(mid) > shaped_budget {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let c_param = hi;
            // Exact rescale onto the shaped budget to absorb the remaining
            // binary-search slack.
            let total = spent(c_param);
            let scale = if total > 0.0 { shaped_budget / total } else { 0.0 };
            for v in 0..n {
                if b[v] > 0.0 {
                    let w = ((-c_param / b[v]).exp() * scale).min(0.4);
                    delta_l[v] += w;
                    delta_u[v] += w;
                }
            }
        }
        Calibration { delta_l, delta_u, samples: tau }
    }

    /// Total failure budget actually allocated (must be ≤ δ).
    pub fn total_budget(&self) -> f64 {
        self.delta_l.iter().sum::<f64>() + self.delta_u.iter().sum::<f64>()
    }
}

/// Derives the number of calibration samples for a given ω
/// (`cfg.calibration_samples` overrides).
pub fn calibration_sample_count(cfg: &KadabraConfig, omega: u64) -> u64 {
    cfg.calibration_samples.unwrap_or_else(|| (omega / 25).clamp(200, 100_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KadabraConfig {
        KadabraConfig { epsilon: 0.05, delta: 0.1, ..Default::default() }
    }

    #[test]
    fn budget_is_respected() {
        let counts = vec![50, 10, 0, 3, 120, 0, 7, 1];
        let cal = Calibration::from_counts(&counts, 200, &cfg());
        assert!(cal.total_budget() <= cfg().delta * 1.000001, "budget {}", cal.total_budget());
        // The shaped part should actually be spent, not wasted.
        assert!(cal.total_budget() > cfg().delta * 0.5);
    }

    #[test]
    fn all_budgets_positive() {
        let counts = vec![0, 0, 100, 0];
        let cal = Calibration::from_counts(&counts, 100, &cfg());
        for v in 0..4 {
            assert!(cal.delta_l[v] > 0.0);
            assert!(cal.delta_u[v] > 0.0);
        }
    }

    #[test]
    fn high_centrality_gets_larger_budget() {
        let counts = vec![150, 15, 0];
        let cal = Calibration::from_counts(&counts, 200, &cfg());
        assert!(cal.delta_l[0] > cal.delta_l[1]);
        assert!(cal.delta_l[1] > cal.delta_l[2]);
    }

    #[test]
    fn untouched_graph_gets_uniform_floor() {
        let counts = vec![0u64; 6];
        let cal = Calibration::from_counts(&counts, 50, &cfg());
        let first = cal.delta_l[0];
        for v in 0..6 {
            assert_eq!(cal.delta_l[v], first);
            assert_eq!(cal.delta_u[v], first);
        }
        // Uniform floor = floor_fraction * delta / (2n).
        let expect = cfg().delta * cfg().calibration_floor / 12.0;
        assert!((first - expect).abs() < 1e-15);
    }

    #[test]
    fn deterministic() {
        let counts = vec![5, 0, 9, 2, 2, 88];
        let a = Calibration::from_counts(&counts, 120, &cfg());
        let b = Calibration::from_counts(&counts, 120, &cfg());
        assert_eq!(a.delta_l, b.delta_l);
        assert_eq!(a.delta_u, b.delta_u);
    }

    #[test]
    fn budgets_capped_below_half() {
        // A single dominant vertex cannot eat a degenerate (≥ 0.5) share.
        let counts = vec![1000u64, 0, 0];
        let cal = Calibration::from_counts(&counts, 1000, &cfg());
        assert!(cal.delta_l[0] < 0.5);
    }

    #[test]
    fn sample_count_derivation() {
        let c = KadabraConfig::default();
        assert_eq!(calibration_sample_count(&c, 25 * 300), 300);
        assert_eq!(calibration_sample_count(&c, 100), 200); // clamped up
        assert_eq!(calibration_sample_count(&c, 25 * 1_000_000), 100_000); // clamped down
        let c2 = KadabraConfig { calibration_samples: Some(77), ..Default::default() };
        assert_eq!(calibration_sample_count(&c2, 10_000_000), 77);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_tau_rejected() {
        Calibration::from_counts(&[0], 0, &cfg());
    }
}
