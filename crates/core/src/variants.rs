//! Directed and weighted KADABRA — the paper's footnote 1:
//! "The parallelization techniques considered in this paper also apply to
//! directed and/or weighted graphs if the required modifications to the
//! underlying sampling algorithm are done."
//!
//! The required modification is precisely the path sampler: KADABRA's
//! estimator and stopping machinery only consume *interior vertex lists of
//! uniformly drawn shortest paths*. This module factors the adaptive loop
//! over a [`PathSource`] trait and instantiates it for
//! [`kadabra_graph::digraph::DiGraph`] (bidirectional directed BFS sampler)
//! and [`kadabra_graph::weighted::WeightedGraph`] (Dijkstra sampler).
//!
//! These variants run the *sequential* algorithm; their parallelizations
//! would reuse the epoch/MPI machinery unchanged (the threads only call
//! `PathSource::sample_path`), exactly as the paper asserts.

use crate::bounds::{self, stopping_condition};
use crate::calibration::{calibration_sample_count, Calibration};
use crate::config::KadabraConfig;
use crate::phases::scores_from_counts;
use crate::result::{BetweennessResult, PhaseTimings, SamplingStats};
use kadabra_graph::digraph::{directed_bfs, sample_directed_shortest_path, DiGraph};
use kadabra_graph::scratch::{TraversalScratch, UNREACHED};
use kadabra_graph::weighted::{
    estimate_vertex_diameter, sample_weighted_shortest_path, WeightedGraph,
};
use kadabra_graph::NodeId;
use kadabra_telemetry::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anything KADABRA can sample shortest paths from.
pub trait PathSource {
    /// Number of vertices.
    fn num_nodes(&self) -> usize;
    /// Upper bound on the vertex diameter (vertices of the longest shortest
    /// path), the input to ω. Reported together with its computation time.
    fn vertex_diameter_upper(&self, cfg: &KadabraConfig) -> u32;
    /// Draws a uniform shortest path between the given distinct endpoints,
    /// pushing interior vertices into `out`. No-op if unreachable.
    fn sample_path<R: Rng + ?Sized>(
        &self,
        s: NodeId,
        t: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    );
}

/// Directed KADABRA: [`PathSource`] over a [`DiGraph`].
pub struct DirectedSource<'g> {
    graph: &'g DiGraph,
    scratch: std::cell::RefCell<TraversalScratch>,
}

impl<'g> DirectedSource<'g> {
    /// Wraps a digraph for sampling.
    pub fn new(graph: &'g DiGraph) -> Self {
        DirectedSource {
            graph,
            scratch: std::cell::RefCell::new(TraversalScratch::new(graph.num_nodes())),
        }
    }
}

impl PathSource for DirectedSource<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn vertex_diameter_upper(&self, _cfg: &KadabraConfig) -> u32 {
        // Directed eccentricity probing: BFS from a few high-out-degree
        // vertices; double the largest finite eccentricity (the probes may
        // miss the true diameter; doubling compensates in the same spirit as
        // the iFUB budget fallback — only running time is affected).
        let n = self.graph.num_nodes();
        let mut roots: Vec<NodeId> = (0..n as NodeId).collect();
        roots.sort_by_key(|&v| std::cmp::Reverse(self.graph.out_degree(v)));
        roots.truncate(4);
        let mut ecc = 1u32;
        for &r in &roots {
            let dist = directed_bfs(self.graph, r);
            for &d in &dist {
                if d != UNREACHED {
                    ecc = ecc.max(d);
                }
            }
        }
        2 * ecc + 2
    }

    fn sample_path<R: Rng + ?Sized>(
        &self,
        s: NodeId,
        t: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        let mut scratch = self.scratch.borrow_mut();
        if let Some(p) = sample_directed_shortest_path(self.graph, s, t, &mut scratch, rng) {
            out.extend_from_slice(&p.interior);
        }
    }
}

/// Weighted KADABRA: [`PathSource`] over a [`WeightedGraph`].
pub struct WeightedSource<'g> {
    graph: &'g WeightedGraph,
}

impl<'g> WeightedSource<'g> {
    /// Wraps a weighted graph for sampling.
    pub fn new(graph: &'g WeightedGraph) -> Self {
        WeightedSource { graph }
    }
}

impl PathSource for WeightedSource<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn vertex_diameter_upper(&self, _cfg: &KadabraConfig) -> u32 {
        estimate_vertex_diameter(self.graph, 3, 0)
    }

    fn sample_path<R: Rng + ?Sized>(
        &self,
        s: NodeId,
        t: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        if let Some(p) = sample_weighted_shortest_path(self.graph, s, t, rng) {
            out.extend_from_slice(&p.interior);
        }
    }
}

/// Runs sequential KADABRA over any [`PathSource`]. All three phases, same
/// guarantee: every score within ±ε of the true (directed/weighted)
/// betweenness with probability ≥ 1 − δ.
pub fn kadabra_generic<S: PathSource>(source: &S, cfg: &KadabraConfig) -> BetweennessResult {
    cfg.validate();
    let n = source.num_nodes();
    assert!(n >= 2, "KADABRA requires at least two vertices");

    let diam_start = Stopwatch::start();
    let vd = source.vertex_diameter_upper(cfg);
    let diameter_time = diam_start.elapsed();
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9);
    let mut path = Vec::new();
    let draw_pair = |rng: &mut StdRng| -> (NodeId, NodeId) {
        let s = rng.gen_range(0..n as NodeId);
        let mut t = rng.gen_range(0..n as NodeId - 1);
        if t >= s {
            t += 1;
        }
        (s, t)
    };

    // Calibration.
    let calib_start = Stopwatch::start();
    let tau0 = calibration_sample_count(cfg, omega);
    let mut counts = vec![0u64; n];
    for _ in 0..tau0 {
        let (s, t) = draw_pair(&mut rng);
        path.clear();
        source.sample_path(s, t, &mut rng, &mut path);
        for &v in &path {
            counts[v as usize] += 1;
        }
    }
    let calibration = Calibration::from_counts(&counts, tau0, cfg);
    let calibration_time = calib_start.elapsed();

    // Adaptive sampling (fresh counters; calibration samples are not reused,
    // matching the main implementation).
    let ads_start = Stopwatch::start();
    let n0 = cfg.n0(1);
    let mut counts = vec![0u64; n];
    let mut tau = 0u64;
    let mut stats = SamplingStats::default();
    loop {
        for _ in 0..n0 {
            let (s, t) = draw_pair(&mut rng);
            path.clear();
            source.sample_path(s, t, &mut rng, &mut path);
            for &v in &path {
                counts[v as usize] += 1;
            }
        }
        tau += n0;
        stats.epochs += 1;
        let check_start = Stopwatch::start();
        let stop = stopping_condition(
            &counts,
            tau,
            cfg.epsilon,
            omega,
            &calibration.delta_l,
            &calibration.delta_u,
        );
        stats.check_time += check_start.elapsed();
        if stop {
            break;
        }
    }
    stats.samples = tau;

    BetweennessResult {
        scores: scores_from_counts(&counts, tau),
        samples: tau,
        omega,
        vertex_diameter: vd,
        timings: PhaseTimings {
            diameter: diameter_time,
            calibration: calibration_time,
            adaptive_sampling: ads_start.elapsed(),
        },
        stats,
    }
}

/// Sequential KADABRA on a directed graph.
pub fn kadabra_directed(g: &DiGraph, cfg: &KadabraConfig) -> BetweennessResult {
    kadabra_generic(&DirectedSource::new(g), cfg)
}

/// Sequential KADABRA on a positively weighted undirected graph.
pub fn kadabra_weighted(g: &WeightedGraph, cfg: &KadabraConfig) -> BetweennessResult {
    kadabra_generic(&WeightedSource::new(g), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_baselines::{brandes_directed, brandes_weighted};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn directed_kadabra_within_epsilon() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40usize;
        let mut arcs = Vec::new();
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v && rng.gen_bool(0.1) {
                    arcs.push((u, v));
                }
            }
        }
        let g = DiGraph::from_arcs(n, &arcs);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 7, ..Default::default() };
        let r = kadabra_directed(&g, &cfg);
        let exact = brandes_directed(&g);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn weighted_kadabra_within_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40usize;
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.gen_bool(0.15) {
                    edges.push((u, v, rng.gen_range(1..5)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, &edges);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 8, ..Default::default() };
        let r = kadabra_weighted(&g, &cfg);
        let exact = brandes_weighted(&g);
        let worst = r.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst}");
    }

    #[test]
    fn directed_asymmetry_shows_up() {
        // 0 -> 1 -> 2 plus 2 -> 0: vertex 1 carries (0,2) traffic; vertex 0
        // carries (1,0)->... check the two differ from the undirected case.
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        let cfg = KadabraConfig { epsilon: 0.03, delta: 0.1, seed: 9, ..Default::default() };
        let r = kadabra_directed(&g, &cfg);
        let exact = brandes_directed(&g);
        for (s, e) in r.scores.iter().zip(&exact) {
            assert!((s - e).abs() <= cfg.epsilon);
        }
        // On the directed triangle every vertex relays exactly one pair.
        assert!(exact.iter().all(|&b| (b - 1.0 / 6.0).abs() < 1e-12));
    }

    #[test]
    fn weighted_weights_change_the_ranking() {
        // Unit weights: direct edge 0-2 wins; heavy direct edge: detour via 1
        // wins and vertex 1 becomes central.
        let light = WeightedGraph::from_edges(3, &[(0, 2, 1), (0, 1, 1), (1, 2, 1)]);
        let heavy = WeightedGraph::from_edges(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 1)]);
        let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 10, ..Default::default() };
        let r_light = kadabra_weighted(&light, &cfg);
        let r_heavy = kadabra_weighted(&heavy, &cfg);
        assert!(r_light.scores[1] < 0.1);
        assert!(r_heavy.scores[1] > 0.2);
    }

    #[test]
    fn deterministic() {
        let g = DiGraph::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cfg = KadabraConfig { epsilon: 0.1, delta: 0.1, seed: 11, ..Default::default() };
        let a = kadabra_directed(&g, &cfg);
        let b = kadabra_directed(&g, &cfg);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.samples, b.samples);
    }
}
