//! The shared phase pipeline (Section III-A): diameter → ω → calibration.
//!
//! Every execution mode runs the same three phases; this module hosts the
//! phase logic so the sequential, shared-memory, MPI and discrete-event
//! drivers orchestrate *when/where* each phase runs (and how its inputs are
//! communicated) without duplicating *what* it computes.

use crate::bounds;
use crate::calibration::{calibration_sample_count, Calibration};
use crate::config::KadabraConfig;
use crate::sampler::ThreadSampler;
use kadabra_graph::diameter::diameter;
use kadabra_graph::{Graph, NodeId};
use kadabra_telemetry::Stopwatch;
use std::time::Duration;

/// Output of the preparatory phases, consumed by the adaptive-sampling
/// phase of every execution mode.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Vertex-diameter upper bound (diameter + 1).
    pub vertex_diameter: u32,
    /// Static sample cap ω.
    pub omega: u64,
    /// Per-vertex failure budgets.
    pub calibration: Calibration,
    /// Wall time of the (sequential) diameter phase.
    pub diameter_time: Duration,
    /// Wall time of the calibration phase.
    pub calibration_time: Duration,
}

/// Phase 1: computes the vertex-diameter upper bound. Sequential by design —
/// in the paper this is the Amdahl term visible in Fig. 2b. The BFS is
/// rooted at a maximum-degree vertex (a good iFUB start on complex
/// networks).
pub fn diameter_phase(g: &Graph, cfg: &KadabraConfig) -> (u32, Duration) {
    let start = Stopwatch::start();
    let root = (0..g.num_nodes() as NodeId)
        .max_by_key(|&v| g.degree(v))
        // xtask: allow(unwrap) — callers assert num_nodes >= 2.
        .expect("non-empty graph");
    let d = diameter(g, root, cfg.diameter_bfs_budget);
    (d.vertex_diameter_upper(), start.elapsed())
}

/// Phase 2 worker: takes this thread's share of the non-adaptive calibration
/// samples, accumulating counts into `counts`. Each of the `total_threads`
/// workers takes `ceil(τ₀ / total_threads)` samples; returns the number
/// taken.
pub fn calibration_samples_for_thread(
    g: &Graph,
    sampler: &mut ThreadSampler,
    counts: &mut [u64],
    cfg: &KadabraConfig,
    omega: u64,
    total_threads: usize,
) -> u64 {
    let tau0 = calibration_sample_count(cfg, omega);
    let share = tau0.div_ceil(total_threads as u64);
    sampler.sample_batch(g, share, |interior| {
        for &v in interior {
            counts[v as usize] += 1;
        }
    });
    share
}

/// Full sequential preparation: diameter, ω, calibration on one thread.
/// Parallel modes replicate this structure with their own communication.
pub fn prepare(g: &Graph, cfg: &KadabraConfig) -> Prepared {
    cfg.validate();
    assert!(g.num_nodes() >= 2, "KADABRA requires at least two vertices");
    let (vd, diameter_time) = diameter_phase(g, cfg);
    let omega = bounds::omega(cfg.c, cfg.epsilon, cfg.delta, vd);

    let calib_start = Stopwatch::start();
    let mut sampler = ThreadSampler::new(g.num_nodes(), cfg.seed, 0, 0);
    let mut counts = vec![0u64; g.num_nodes()];
    let tau0 = calibration_samples_for_thread(g, &mut sampler, &mut counts, cfg, omega, 1);
    let calibration = Calibration::from_counts(&counts, tau0, cfg);
    let calibration_time = calib_start.elapsed();

    Prepared { vertex_diameter: vd, omega, calibration, diameter_time, calibration_time }
}

/// Converts aggregated counts into normalized betweenness scores.
pub fn scores_from_counts(counts: &[u64], tau: u64) -> Vec<f64> {
    assert!(tau > 0, "no samples to normalize by");
    counts.iter().map(|&c| c as f64 / tau as f64).collect()
}

/// Rank 0's per-round step shared by Algorithms 1 and 2: folds a reduced
/// `(n + 1)`-slot state frame (per-vertex counts plus τ in the last slot)
/// into the global frame and evaluates the stopping condition on the updated
/// totals. Returns the termination flag `d`.
pub(crate) fn fold_and_check(
    s_global: &mut [u64],
    reduced: &[u64],
    epsilon: f64,
    omega: u64,
    calibration: &Calibration,
) -> bool {
    debug_assert_eq!(s_global.len(), reduced.len());
    for (a, r) in s_global.iter_mut().zip(reduced) {
        *a += r;
    }
    let n = s_global.len() - 1;
    bounds::stopping_condition(
        &s_global[..n],
        s_global[n],
        epsilon,
        omega,
        &calibration.delta_l,
        &calibration.delta_u,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, GnmConfig};

    #[test]
    fn prepare_on_path_graph() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let cfg = KadabraConfig::new(0.1, 0.1);
        let p = prepare(&g, &cfg);
        assert_eq!(p.vertex_diameter, 6);
        assert_eq!(p.omega, bounds::omega(0.5, 0.1, 0.1, 6));
        assert!(p.calibration.samples >= 200);
        assert!(p.calibration.total_budget() <= cfg.delta * 1.000001);
    }

    #[test]
    fn prepare_is_deterministic() {
        let g = gnm(GnmConfig { n: 40, m: 120, seed: 2 });
        let (lcc, _) = largest_component(&g);
        let cfg = KadabraConfig::new(0.1, 0.1);
        let a = prepare(&lcc, &cfg);
        let b = prepare(&lcc, &cfg);
        assert_eq!(a.omega, b.omega);
        assert_eq!(a.calibration.delta_l, b.calibration.delta_l);
    }

    #[test]
    fn calibration_share_splits_evenly() {
        let g = gnm(GnmConfig { n: 20, m: 50, seed: 3 });
        let (lcc, _) = largest_component(&g);
        let n = lcc.num_nodes();
        let cfg = KadabraConfig { calibration_samples: Some(1000), ..Default::default() };
        let mut counts = vec![0u64; n];
        let mut s = ThreadSampler::new(n, 1, 0, 0);
        let taken = calibration_samples_for_thread(&lcc, &mut s, &mut counts, &cfg, 10_000, 4);
        assert_eq!(taken, 250);
    }

    #[test]
    fn scores_normalization() {
        assert_eq!(scores_from_counts(&[2, 0, 4], 8), vec![0.25, 0.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn prepare_rejects_trivial_graph() {
        prepare(&graph_from_edges(1, &[]), &KadabraConfig::default());
    }
}
