//! Result and statistics types shared by all execution modes.

use std::time::Duration;

/// Wall-clock time spent in each of KADABRA's three phases (Section III-A);
/// Fig. 2b of the paper breaks total time down along exactly these lines
/// (plus the sub-phases of adaptive sampling tracked in [`SamplingStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Phase 1: diameter computation (sequential).
    pub diameter: Duration,
    /// Phase 2: calibration (parallel sampling + sequential δ optimization).
    pub calibration: Duration,
    /// Phase 3: adaptive sampling until the stopping condition fires.
    pub adaptive_sampling: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.diameter + self.calibration + self.adaptive_sampling
    }
}

/// Statistics of the adaptive sampling phase — the quantities reported
/// per-instance in Table II of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct SamplingStats {
    /// Number of epochs (stopping-condition checks).
    pub epochs: u64,
    /// Total samples aggregated into the final estimate.
    pub samples: u64,
    /// Time spent waiting in the non-blocking barrier (Table II column "B").
    pub barrier_wait: Duration,
    /// Time spent in blocking reductions.
    pub reduce_time: Duration,
    /// Time spent waiting for epoch transitions.
    pub transition_wait: Duration,
    /// Time spent evaluating the stopping condition.
    pub check_time: Duration,
    /// Total bytes moved through communicators during adaptive sampling.
    pub comm_bytes: u64,
}

impl SamplingStats {
    /// Communication volume per epoch in MiB (Table II column "Com.").
    pub fn comm_mib_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.comm_bytes as f64 / (1024.0 * 1024.0) / self.epochs as f64
        }
    }
}

/// Outcome of a betweenness approximation run.
#[derive(Debug, Clone)]
pub struct BetweennessResult {
    /// Normalized approximate betweenness per vertex (`b̃(v) = c̃(v)/τ`).
    pub scores: Vec<f64>,
    /// Samples in the final estimate (τ).
    pub samples: u64,
    /// The static sample cap ω.
    pub omega: u64,
    /// Vertex-diameter upper bound used for ω.
    pub vertex_diameter: u32,
    /// Per-phase wall-clock times.
    pub timings: PhaseTimings,
    /// Adaptive-sampling statistics.
    pub stats: SamplingStats,
}

impl BetweennessResult {
    /// The `k` vertices with the highest approximate betweenness, sorted by
    /// descending score (ties by ascending vertex id).
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        // xtask: allow(determinism) — scores has one entry per vertex and
        // the CSR layout already caps vertex counts at u32 (GraphBuilder
        // rejects larger inputs), so the cast cannot truncate.
        let mut idx: Vec<u32> = (0..self.scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b as usize].total_cmp(&self.scores[a as usize]).then(a.cmp(&b))
        });
        idx.truncate(k);
        idx.into_iter().map(|v| (v, self.scores[v as usize])).collect()
    }

    /// Number of vertices whose score exceeds `threshold` — the paper's
    /// introduction motivates small ε with exactly this count (38 of 41M
    /// twitter vertices exceed 0.01).
    pub fn count_above(&self, threshold: f64) -> usize {
        self.scores.iter().filter(|&&s| s > threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(scores: Vec<f64>) -> BetweennessResult {
        BetweennessResult {
            scores,
            samples: 100,
            omega: 1000,
            vertex_diameter: 5,
            timings: PhaseTimings::default(),
            stats: SamplingStats::default(),
        }
    }

    #[test]
    fn top_k_sorts_descending_with_stable_ties() {
        let r = result_with(vec![0.1, 0.5, 0.5, 0.0, 0.3]);
        assert_eq!(r.top_k(3), vec![(1, 0.5), (2, 0.5), (4, 0.3)]);
        assert_eq!(r.top_k(0), vec![]);
        assert_eq!(r.top_k(10).len(), 5);
    }

    #[test]
    fn count_above_threshold() {
        let r = result_with(vec![0.1, 0.5, 0.01, 0.0]);
        assert_eq!(r.count_above(0.05), 2);
        assert_eq!(r.count_above(0.5), 0);
    }

    #[test]
    fn comm_volume_per_epoch() {
        let mut s = SamplingStats::default();
        assert_eq!(s.comm_mib_per_epoch(), 0.0);
        s.epochs = 4;
        s.comm_bytes = 8 * 1024 * 1024;
        assert!((s.comm_mib_per_epoch() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_total() {
        let t = PhaseTimings {
            diameter: Duration::from_millis(5),
            calibration: Duration::from_millis(10),
            adaptive_sampling: Duration::from_millis(85),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
    }
}
