//! Kernel-routing conformance for [`ThreadSampler`] (DESIGN.md §16): a
//! sampler configured with any [`KernelOptions::batch_width`] must produce
//! the **same sample transcript** — interiors, records, cumulative search
//! stats — as a scalar-width sampler with the same `(seed, rank, thread)`
//! stream. This is what lets every driver default to the batched kernel
//! without perturbing a single determinism or accuracy test.

use kadabra_core::{KernelOptions, ThreadSampler};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, grid, GnmConfig, GridConfig};
use kadabra_graph::{Graph, NodeId};

/// Collects `k` samples' interiors through `sample_batch`.
fn interiors(g: &Graph, kernel: KernelOptions, seed: u64, k: u64) -> Vec<Vec<NodeId>> {
    let mut sampler = ThreadSampler::with_kernel(g.num_nodes(), seed, 3, 7, kernel);
    let mut out = Vec::new();
    sampler.sample_batch(g, k, |interior| out.push(interior.to_vec()));
    out
}

#[test]
fn every_width_matches_the_scalar_transcript() {
    let g = grid(GridConfig { rows: 7, cols: 5, diagonal_prob: 0.2, seed: 3 });
    let scalar = interiors(&g, KernelOptions::scalar(), 99, 300);
    for width in [2usize, 4, 8, 64] {
        let batched = interiors(&g, KernelOptions::batched(width), 99, 300);
        assert_eq!(scalar, batched, "width {width} diverged");
    }
}

#[test]
fn batch_sizes_not_multiple_of_width_still_agree() {
    // Odd batch sizes force ragged final chunks in every routed batch.
    let g = gnm(GnmConfig { n: 60, m: 150, seed: 8 });
    for k in [1u64, 3, 7, 9, 13] {
        let mut scalar = ThreadSampler::with_kernel(60, 5, 0, 0, KernelOptions::scalar());
        let mut batched = ThreadSampler::with_kernel(60, 5, 0, 0, KernelOptions::batched(8));
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..5 {
            scalar.sample_batch(&g, k, |i| a.push(i.to_vec()));
            batched.sample_batch(&g, k, |i| b.push(i.to_vec()));
        }
        assert_eq!(a, b, "k={k} diverged");
        assert_eq!(scalar.samples_taken, batched.samples_taken);
        assert_eq!(scalar.stats.edges_scanned, batched.stats.edges_scanned);
        assert_eq!(scalar.stats.vertices_settled, batched.stats.vertices_settled);
    }
}

#[test]
fn records_agree_across_kernels_on_disconnected_graphs() {
    // Sparse G(n, m): many disconnected pairs (distance u32::MAX records).
    let g = gnm(GnmConfig { n: 50, m: 30, seed: 4 });
    let mut scalar = ThreadSampler::with_kernel(50, 21, 1, 2, KernelOptions::scalar());
    let mut batched = ThreadSampler::with_kernel(50, 21, 1, 2, KernelOptions::batched(64));
    let mut a = Vec::new();
    let mut b = Vec::new();
    scalar.sample_batch_records(&g, 500, |s, t, d, interior| {
        a.push((s, t, d, interior.to_vec()));
    });
    batched.sample_batch_records(&g, 500, |s, t, d, interior| {
        b.push((s, t, d, interior.to_vec()));
    });
    assert_eq!(a, b);
    assert!(a.iter().any(|r| r.2 == u32::MAX), "corpus should include disconnected pairs");
    assert!(a.iter().any(|r| r.2 != u32::MAX), "corpus should include connected pairs");
}

#[test]
fn single_sample_path_is_shared_between_kernels() {
    // `sample()` stays on the scalar kernel by design; interleaving it with
    // routed batches must keep the one shared RNG stream intact.
    let g = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
    let mut scalar = ThreadSampler::with_kernel(36, 77, 0, 1, KernelOptions::scalar());
    let mut batched = ThreadSampler::with_kernel(36, 77, 0, 1, KernelOptions::batched(8));
    for round in 0..20 {
        let a = scalar.sample(&g).to_vec();
        let b = batched.sample(&g).to_vec();
        assert_eq!(a, b, "round {round}: single-sample path diverged");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        scalar.sample_batch(&g, 11, |i| xs.push(i.to_vec()));
        batched.sample_batch(&g, 11, |i| ys.push(i.to_vec()));
        assert_eq!(xs, ys, "round {round}: batch after single sample diverged");
    }
}

#[test]
fn occupancy_counters_track_routed_batches_only() {
    let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
    let mut scalar = ThreadSampler::with_kernel(25, 1, 0, 0, KernelOptions::scalar());
    scalar.sample_batch(&g, 64, |_| {});
    assert_eq!(scalar.kernel_occupancy(), (0, 0), "scalar width must not touch the kernel");

    let mut batched = ThreadSampler::with_kernel(25, 1, 0, 0, KernelOptions::batched(8));
    assert_eq!(batched.kernel_occupancy(), (0, 0), "counters start at zero");
    batched.sample_batch(&g, 64, |_| {});
    let (rounds, lane_rounds) = batched.kernel_occupancy();
    assert!(rounds > 0, "routed batches must accumulate rounds");
    // Mean occupancy is bounded by the lane count per round.
    assert!(lane_rounds >= rounds && lane_rounds <= rounds * 8, "{lane_rounds} vs {rounds}");
}

#[test]
fn occupancy_is_full_when_lanes_share_a_long_path() {
    // A path graph: every lane of a full batch runs the same number of
    // rounds, so mean occupancy is exactly the width.
    let mut edges = Vec::new();
    for v in 0..15u32 {
        edges.push((v, v + 1));
    }
    let g = kadabra_graph::csr::graph_from_edges(16, &edges);
    let (lcc, _) = largest_component(&g);
    let mut s = ThreadSampler::with_kernel(16, 2, 0, 0, KernelOptions::batched(4));
    s.sample_batch(&lcc, 4, |_| {});
    let (rounds, lane_rounds) = s.kernel_occupancy();
    assert!(rounds > 0);
    assert!(lane_rounds <= rounds * 4);
}

#[test]
#[should_panic(expected = "sampler scratch sized for")]
fn scratch_graph_mismatch_panics_in_batches() {
    // Regression for the bench-row sizing bug class: a sampler built for one
    // graph must refuse to run batches on a graph of a different size.
    let g25 = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
    let mut sampler = ThreadSampler::new(36, 0, 0, 0);
    sampler.sample_batch(&g25, 1, |_| {});
}

#[test]
#[should_panic(expected = "sampler scratch sized for")]
fn scratch_graph_mismatch_panics_in_single_samples() {
    let g25 = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 0 });
    let mut sampler = ThreadSampler::new(36, 0, 0, 0);
    let _ = sampler.sample(&g25);
}
