//! Property-based tests of KADABRA's statistical machinery.

use kadabra_core::bounds::{f_bound, g_bound, omega, stopping_condition};
use kadabra_core::{Calibration, KadabraConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ω is monotone: shrinking ε or δ, or growing the diameter, never
    /// shrinks the sample cap.
    #[test]
    fn omega_monotonicity(
        eps in 0.001f64..0.5,
        delta in 0.01f64..0.5,
        vd in 4u32..10_000,
    ) {
        let base = omega(0.5, eps, delta, vd);
        prop_assert!(omega(0.5, eps / 2.0, delta, vd) >= base);
        prop_assert!(omega(0.5, eps, delta / 2.0, vd) >= base);
        prop_assert!(omega(0.5, eps, delta, vd * 2) >= base);
        prop_assert!(base > 0);
    }

    /// f and g are non-negative, finite, and shrink as τ grows toward ω.
    #[test]
    fn bounds_behave(
        b_tilde in 0.0f64..1.0,
        delta in 1e-9f64..0.5,
        omega_v in 100u64..1_000_000,
        tau_frac in 0.01f64..1.0,
    ) {
        let tau = ((omega_v as f64 * tau_frac) as u64).max(1);
        let f = f_bound(b_tilde, delta, omega_v, tau);
        let g = g_bound(b_tilde, delta, omega_v, tau);
        prop_assert!(f.is_finite() && f >= 0.0);
        prop_assert!(g.is_finite() && g > 0.0);
        prop_assert!(g >= f, "g={g} must dominate f={f}");
        // Doubling τ (capped at ω) can only tighten both bounds.
        let tau2 = (tau * 2).min(omega_v);
        if tau2 > tau {
            prop_assert!(f_bound(b_tilde, delta, omega_v, tau2) <= f + 1e-12);
            prop_assert!(g_bound(b_tilde, delta, omega_v, tau2) <= g + 1e-12);
        }
    }

    /// The stopping condition is monotone in ε: if sampling may stop at ε it
    /// may also stop at any looser ε' > ε.
    #[test]
    fn stopping_monotone_in_eps(
        counts in proptest::collection::vec(0u64..5_000, 2..40),
        tau_extra in 1u64..10_000,
        eps in 0.001f64..0.3,
    ) {
        let tau = counts.iter().max().copied().unwrap_or(0) + tau_extra;
        let n = counts.len();
        let dl = vec![0.01 / n as f64; n];
        let du = vec![0.01 / n as f64; n];
        let omega_v = tau * 20;
        if stopping_condition(&counts, tau, eps, omega_v, &dl, &du) {
            prop_assert!(stopping_condition(&counts, tau, eps * 1.5, omega_v, &dl, &du));
            prop_assert!(stopping_condition(&counts, tau, (eps * 3.0).min(0.99), omega_v, &dl, &du));
        }
    }

    /// τ ≥ ω always stops, regardless of the counts.
    #[test]
    fn stopping_at_cap(
        counts in proptest::collection::vec(0u64..100, 1..30),
        omega_v in 1u64..1000,
    ) {
        let n = counts.len();
        let dl = vec![1e-6; n];
        let du = vec![1e-6; n];
        prop_assert!(stopping_condition(&counts, omega_v, 1e-9, omega_v, &dl, &du));
    }

    /// Calibration never exceeds the failure budget and keeps every vertex
    /// strictly positive, for arbitrary count distributions.
    #[test]
    fn calibration_budget_and_positivity(
        counts in proptest::collection::vec(0u64..10_000, 1..200),
        tau_extra in 1u64..5_000,
        delta in 0.01f64..0.5,
        floor in 0.05f64..0.9,
    ) {
        let tau = counts.iter().max().copied().unwrap_or(0) + tau_extra;
        let cfg = KadabraConfig {
            epsilon: 0.05,
            delta,
            calibration_floor: floor,
            ..Default::default()
        };
        let cal = Calibration::from_counts(&counts, tau, &cfg);
        prop_assert!(cal.total_budget() <= delta * 1.0001, "budget {}", cal.total_budget());
        for v in 0..counts.len() {
            prop_assert!(cal.delta_l[v] > 0.0 && cal.delta_l[v] < 0.5);
            prop_assert!(cal.delta_u[v] > 0.0 && cal.delta_u[v] < 0.5);
        }
        // Monotone in the estimates: more counts => at least as much budget.
        let mut idx: Vec<usize> = (0..counts.len()).collect();
        idx.sort_by_key(|&i| counts[i]);
        for w in idx.windows(2) {
            prop_assert!(cal.delta_l[w[0]] <= cal.delta_l[w[1]] + 1e-15);
        }
    }

    /// n0 is monotone non-increasing in the thread count and never zero.
    #[test]
    fn n0_rule(threads_a in 1usize..512, threads_b in 1usize..512) {
        let cfg = KadabraConfig::default();
        let (lo, hi) = if threads_a <= threads_b { (threads_a, threads_b) } else { (threads_b, threads_a) };
        prop_assert!(cfg.n0(lo) >= cfg.n0(hi));
        prop_assert!(cfg.n0(hi) >= 1);
    }
}
