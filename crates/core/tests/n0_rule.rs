//! Property tests of the paper's Section IV-D batching rule
//! `n0 = max(1, 1000 / (P·T)^1.33)`: more parallelism must always mean
//! smaller (never larger) batches between stopping-condition checks, and
//! the value Algorithm 2 actually batches with must be the one this rule
//! produces for the cluster shape's total thread count.

use kadabra_core::{ClusterShape, KadabraConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// n0 is monotonically non-increasing in P (ranks) and in T (threads
    /// per rank), separately and jointly, for any valid rule parameters.
    #[test]
    fn n0_is_monotone_in_ranks_and_threads(
        p in 1usize..64,
        t in 1usize..64,
        base in 1.0f64..100_000.0,
        exponent in 0.1f64..3.0,
    ) {
        let cfg = KadabraConfig { n0_base: base, n0_exponent: exponent, ..Default::default() };
        let here = cfg.n0(p * t);
        prop_assert!(cfg.n0((p + 1) * t) <= here, "growing P raised n0");
        prop_assert!(cfg.n0(p * (t + 1)) <= here, "growing T raised n0");
        prop_assert!(cfg.n0((p + 1) * (t + 1)) <= here, "growing both raised n0");
        prop_assert!(here >= 1, "n0 must stay positive");
    }

    /// The default-parameter rule matches the paper's closed form
    /// `round(1000 / (P·T)^1.33)` (floored at 1) for every shape, and the
    /// value is a pure function of P·T — exactly what `kadabra_epoch_mpi`
    /// computes via `cfg.n0(shape.total_threads())`.
    #[test]
    fn default_rule_matches_paper_formula_for_cluster_shapes(
        ranks in 1usize..48,
        ranks_per_node in 1usize..4,
        threads_per_rank in 1usize..24,
    ) {
        let shape = ClusterShape { ranks, ranks_per_node, threads_per_rank };
        let cfg = KadabraConfig::default();
        let total = shape.total_threads();
        prop_assert_eq!(total, ranks * threads_per_rank);
        let expected = ((1000.0 / (total as f64).powf(1.33)).round() as u64).max(1);
        prop_assert_eq!(cfg.n0(total), expected);
        // Any factorization of the same P·T batches identically: the rule
        // cares about total parallelism, not its shape.
        let flat = ClusterShape::flat(total);
        prop_assert_eq!(cfg.n0(flat.total_threads()), expected);
    }

    /// Elastic membership changes re-derive n0 from the *current* world
    /// alone: admitting ranks never raises the batch, every intermediate
    /// world along a grow path batches no more than the one before it, and
    /// a grow followed by a shrink back to the original (P, T) returns the
    /// exact original value — the rule is a pure function of total
    /// parallelism, carrying no membership history.
    #[test]
    fn n0_rescales_monotonically_under_grow_and_round_trips(
        p in 1usize..48,
        t in 1usize..24,
        k in 1usize..16,
        base in 1.0f64..100_000.0,
        exponent in 0.1f64..3.0,
    ) {
        let cfg = KadabraConfig { n0_base: base, n0_exponent: exponent, ..Default::default() };
        let before = cfg.n0(p * t);
        let mut prev = before;
        for step in 1..=k {
            let next = cfg.n0((p + step) * t);
            prop_assert!(next <= prev, "n0 rose along the grow path at step {step}");
            prop_assert!(next >= 1, "n0 must stay positive in the grown world");
            prev = next;
        }
        // Shrinking back (a crash, or the server shedding its grown slots)
        // re-derives the founding value bit-for-bit.
        prop_assert_eq!(cfg.n0(p * t), before, "grow-then-shrink failed to round-trip");
    }
}

/// Anchor values straight from the paper's formula, so a regression in the
/// rule fails with concrete numbers rather than a shrunk proptest case.
#[test]
fn paper_anchor_values() {
    let cfg = KadabraConfig::default();
    assert_eq!(cfg.n0(1), 1000);
    assert_eq!(cfg.n0(2), (1000.0 / 2f64.powf(1.33)).round() as u64);
    assert_eq!(cfg.n0(8), (1000.0 / 8f64.powf(1.33)).round() as u64);
    // P=16 ranks × T=12 threads (a paper-scale shape) floors at 1.
    assert_eq!(cfg.n0(16 * 12), 1);
}
