//! Property tests of rank-crash recovery: for *random* crash schedules over
//! a (P, T, seed, crash-point) grid, shrink-and-continue must preserve the
//! `[Σc̃, τ]` conservation invariant (asserted inside the observed drivers
//! every round, against both the reduction chain and the recovery ledger)
//! and stay bit-reproducible from `(plan, seed)`.
//!
//! Cases are few but each spins a full simulated cluster twice; the value is
//! in the randomized crash coordinates, not the case count.

use kadabra_core::{
    kadabra_epoch_mpi_observed, kadabra_mpi_flat_observed, ChaosOptions, ClusterShape,
    KadabraConfig,
};
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{gnm, GnmConfig};
use kadabra_graph::Graph;
use kadabra_mpisim::FaultPlan;
use proptest::prelude::*;

fn small_graph() -> Graph {
    let (lcc, _) = largest_component(&gnm(GnmConfig { n: 40, m: 100, seed: 4 }));
    lcc
}

/// A random crash schedule layered on a delay plan. `AtCollective`
/// coordinates start past each driver's setup joins (crashes during setup
/// are outside the recovery contract); `AfterPolls` fuses rely on the
/// plan's injected delays to tick, and simply never fire if the run ends
/// first — both outcomes must satisfy the invariants.
fn crash_plan(
    seed: u64,
    victim: usize,
    at_collective: bool,
    coord: u64,
    setup_joins: u64,
) -> FaultPlan {
    let base = FaultPlan::ideal(seed).with_collective_delay(1, 6);
    if at_collective {
        base.with_crash_at_collective(victim, setup_joins + coord)
    } else {
        base.with_crash_after_polls(victim, 1 + coord * 3)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Algorithm 1 under a random crash schedule: the per-round conservation
    /// check (which cross-audits sent totals, the recovery ledger, and the
    /// folded global state) must stay clean, and the whole run — including
    /// any shrink — must replay bit-for-bit from `(plan, seed)`.
    #[test]
    fn flat_recovery_conserves_samples_for_random_crash_schedules(
        ranks in 2usize..=4,
        seed in 0u64..512,
        victim_raw in 0usize..8,
        at_collective in any::<bool>(),
        coord in 0u64..8,
    ) {
        let g = small_graph();
        let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: seed ^ 0xACE, ..Default::default() };
        // Flat setup is two blocking joins (diameter bcast, calibration
        // all-reduce); join 2 is the first adaptive reduction.
        let plan = crash_plan(seed, victim_raw % ranks, at_collective, coord, 2);
        let opts = ChaosOptions::all(plan);
        let a = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
        a.assert_invariants();
        prop_assert!(a.conservation_rounds > 0, "[{}]", a.plan_summary);
        let b = kadabra_mpi_flat_observed(&g, &cfg, ranks, &opts);
        prop_assert_eq!(&a.result.scores, &b.result.scores, "scores diverged [{}]", a.plan_summary);
        prop_assert_eq!(a.result.samples, b.result.samples);
        prop_assert_eq!(a.ranks_lost, b.ranks_lost, "recovery path diverged [{}]", a.plan_summary);
        prop_assert_eq!(a.recoveries, b.recoveries);
    }

    /// Algorithm 2 (hierarchical shapes, multi-threaded ranks) under a
    /// random crash schedule: same contract, plus the epoch-gap probe.
    #[test]
    fn epoch_recovery_conserves_samples_for_random_crash_schedules(
        ranks in 2usize..=4,
        ranks_per_node in 1usize..=2,
        threads in 1usize..=2,
        seed in 0u64..512,
        victim_raw in 0usize..8,
        at_collective in any::<bool>(),
        coord in 0u64..8,
    ) {
        let g = small_graph();
        let cfg = KadabraConfig { epsilon: 0.08, delta: 0.1, seed: seed ^ 0xBEE, ..Default::default() };
        let shape = ClusterShape { ranks, ranks_per_node, threads_per_rank: threads };
        // Epoch setup is four joins (two hierarchy splits, diameter bcast,
        // calibration all-reduce); join 4 is the first adaptive collective.
        let plan = crash_plan(seed, victim_raw % ranks, at_collective, coord, 4);
        let opts = ChaosOptions::all(plan);
        let a = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        a.assert_invariants();
        prop_assert!(a.conservation_rounds > 0, "[{}]", a.plan_summary);
        let b = kadabra_epoch_mpi_observed(&g, &cfg, shape, &opts);
        prop_assert_eq!(&a.result.scores, &b.result.scores, "scores diverged [{}]", a.plan_summary);
        prop_assert_eq!(a.result.samples, b.result.samples);
        prop_assert_eq!(a.ranks_lost, b.ranks_lost, "recovery path diverged [{}]", a.plan_summary);
        prop_assert_eq!(a.recoveries, b.recoveries);
    }
}
